#!/usr/bin/env python3
"""Scenario: external-scan forensics and trace archival.

Two operational tasks built on the library's monitoring stack:

1. **Scan forensics** -- identify external sources systematically
   sweeping the campus (the paper's >=100-targets / >=100-RSTs rule),
   quantify how much of passive discovery those sweeps contributed
   (Section 4.3's surprising result: scans are an ally), and

2. **Trace archival** -- record a day of border headers to the binary
   trace format with prefix-preserving anonymisation, then re-run the
   analysis from the archived file and verify it matches, mirroring the
   paper's anonymise-then-analyse workflow.

Run::

    python examples/scan_forensics.py [--scale 0.1] [--seed 0]
"""

import argparse
import os
import tempfile

from repro import (
    Anonymizer,
    ExternalScanDetector,
    PassiveServiceTable,
    TraceReader,
    TraceWriter,
    build_dataset,
)
from repro.core.report import TextTable
from repro.net.addr import format_ipv4
from repro.simkernel.clock import days


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = build_dataset("DTCP1-18d", seed=args.seed, scale=args.scale)

    # ---- pass 1: monitor + detector ----------------------------------
    table = PassiveServiceTable(
        is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
    )
    detector = ExternalScanDetector(is_campus=dataset.is_campus)
    dataset.replay(table, detector)
    scanners = detector.scanners()

    report = TextTable(
        title="External sources flagged as systematic scanners",
        headers=["Source", "Campus addresses probed"],
    )
    for source in sorted(scanners)[:10]:
        report.add_row(format_ipv4(source), f"{detector.target_count(source):,}")
    if len(scanners) > 10:
        report.add_note(f"... and {len(scanners) - 10} more")
    print(report.render())

    # ---- pass 2: what would passive know without them? ---------------
    without = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        exclude_sources=frozenset(scanners),
    )
    dataset.replay(without)
    with_scans = len(table.server_addresses())
    without_scans = len(without.server_addresses())
    print(
        f"\nPassive discovery with scans: {with_scans} servers; with the "
        f"{len(scanners)} flagged sources removed: {without_scans} "
        f"({100 * (with_scans - without_scans) / with_scans:.0f}% fewer). "
        "Hostile sweeps are doing free reconnaissance for the defenders."
    )

    # ---- archival: record day 1 anonymised, re-analyse ----------------
    anonymizer = Anonymizer(key=args.seed + 12345)
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "day1.rprt")
        live = PassiveServiceTable(
            is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
        )
        with TraceWriter.open(path) as writer:
            for record in dataset.packet_stream(end=days(1)):
                live.observe(record)
                writer.write(anonymizer.anonymize(record))
        size_mb = os.path.getsize(path) / 1e6
        archived = PassiveServiceTable(
            is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
        )
        with TraceReader.open(path) as reader:
            count = 0
            for record in reader:
                archived.observe(record)
                count += 1
        print(
            f"\nArchived day 1: {count:,} headers, {size_mb:.1f} MB on disk "
            "(anonymised, campus prefix preserved)."
        )
        match = len(archived.endpoints()) == len(live.endpoints())
        print(
            f"Re-analysis from the anonymised archive finds "
            f"{len(archived.endpoints())} service endpoints -- "
            f"{'identical to' if match else 'DIFFERENT from'} the live pass."
        )


if __name__ == "__main__":
    main()
