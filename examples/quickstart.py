#!/usr/bin/env python3
"""Quickstart: build a campus dataset and compare discovery methods.

Builds a scaled-down version of the paper's main dataset (DTCP1-18d),
runs passive monitoring over the border trace and collects the
scheduled active scans, then prints the Table-2-style overlap summary
at 12 hours and at 18 days.

Run::

    python examples/quickstart.py [--scale 0.1] [--seed 0]
"""

import argparse

from repro import PassiveServiceTable, build_dataset, summarize_overlap
from repro.active.results import union_open_endpoints
from repro.core.report import TextTable, format_count_pct
from repro.simkernel.clock import hours


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="population scale (1.0 = the paper's 16,130 addresses)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building DTCP1-18d at scale {args.scale} ...")
    dataset = build_dataset("DTCP1-18d", seed=args.seed, scale=args.scale)
    print(f"  {dataset.population.topology.total_addresses:,} addresses, "
          f"{len(dataset.scan_reports)} active scans taken")

    table = PassiveServiceTable(
        is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
    )
    records = dataset.replay(table)
    print(f"  replayed {records:,} border packet headers\n")

    for label, passive_cutoff, scan_count in (
        ("first 12 hours, one scan", hours(12), 1),
        ("full 18 days, all scans", dataset.duration, len(dataset.scan_reports)),
    ):
        passive = {
            address
            for (address, _, _), t in table.first_seen.items()
            if t < passive_cutoff
        }
        active = {
            address
            for address, _ in union_open_endpoints(
                dataset.scan_reports[:scan_count]
            )
        }
        summary = summarize_overlap(passive, active)
        report = TextTable(
            title=f"Server discovery: {label}",
            headers=["Measure", "Servers"],
        )
        for name, count, pct in summary.as_rows():
            report.add_row(name, format_count_pct(count, pct))
        print(report.render())
        print()

    print(
        "The paper's headline shape: one active scan finds ~98% of the\n"
        "12-hour union while passive needs days to catch up -- but passive\n"
        "hears the popular servers within minutes and eventually finds\n"
        "firewalled servers active probing can never see."
    )


if __name__ == "__main__":
    main()
