#!/usr/bin/env python3
"""Scenario: non-invasive service popularity monitoring.

The paper's second use case: an operator who may not probe (policy,
privacy, cross-organisational boundaries) but wants to know which
services matter -- who serves the most clients and connections, and how
quickly a fresh monitor converges on that picture.  Everything here
uses passive observation only.

Also demonstrates fixed-period sampling (Section 5.3): how much of the
popularity picture survives when the monitor keeps only the first ten
minutes of every hour.

Run::

    python examples/trend_monitoring.py [--scale 0.1] [--seed 0]
"""

import argparse

from repro import FixedPeriodSampler, PassiveServiceTable, build_dataset
from repro.core.completeness import weighted_discovery_curve
from repro.core.report import TextTable
from repro.core.timeline import DiscoveryTimeline
from repro.net.addr import format_ipv4
from repro.net.ports import service_name
from repro.simkernel.clock import hours, minutes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = build_dataset("DTCP1-18d", seed=args.seed, scale=args.scale)
    full = PassiveServiceTable(
        is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
    )
    sampled = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        sampler=FixedPeriodSampler(sample_minutes=10),
    )
    dataset.replay(full, sampled)

    # --- top services by completed connections and unique clients ----
    ranked = sorted(
        full.flow_counts.items(), key=lambda item: item[1], reverse=True
    )
    report = TextTable(
        title="Top services by completed connections (18 days, passive only)",
        headers=["Service", "Connections", "Unique clients", "First heard"],
    )
    for endpoint, flows in ranked[:8]:
        address, port, _ = endpoint
        report.add_row(
            f"{format_ipv4(address)}:{port} ({service_name(port)})",
            f"{flows:,}",
            f"{full.unique_clients(endpoint):,}",
            f"{full.first_seen[endpoint] / 60:.1f} min in",
        )
    print(report.render())

    # --- how fast the popularity picture converges --------------------
    weights = {}
    for (address, _, _), flows in full.flow_counts.items():
        weights[address] = weights.get(address, 0.0) + flows
    timeline = DiscoveryTimeline.from_events(full.address_discovery_events())
    curve = weighted_discovery_curve(
        timeline, weights, 0.0, hours(12), minutes(1)
    )
    milestones = TextTable(
        title="Share of eventual traffic covered by known servers",
        headers=["Observation time", "% of flow-weight covered"],
    )
    for label, t in (("5 minutes", 5), ("15 minutes", 15), ("1 hour", 60),
                     ("6 hours", 360), ("12 hours", 720)):
        value = max(v for tt, v in curve if tt <= t * 60.0)
        milestones.add_row(label, f"{value:.1f}%")
    print()
    print(milestones.render())

    # --- sampling trade-off -------------------------------------------
    full_servers = len(full.server_addresses())
    sampled_servers = len(sampled.server_addresses())
    print(
        f"\nSampling 10 min/hour (17% of the data) still finds "
        f"{sampled_servers} of {full_servers} servers "
        f"({100 * sampled_servers / full_servers:.0f}%) -- the paper's "
        "non-linear sampling result."
    )


if __name__ == "__main__":
    main()
