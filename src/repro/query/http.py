"""Stdlib-asyncio HTTP/1.1 front-end for the query service.

Two layers, split so the routing logic is unit-testable without
sockets:

* :func:`handle_request` -- a pure function from (state, method,
  target) to ``(status, content_type, body)``.  All endpoint logic
  lives here; it touches nothing but the :class:`QueryState` handed
  to it, so a test can drive every route synchronously.
* :class:`QueryService` -- a minimal GET-only HTTP/1.1 server on
  ``asyncio.start_server`` with keep-alive, wrapping every request in
  per-endpoint telemetry (``repro_query_requests_total`` /
  ``repro_query_request_seconds``).

The server is deliberately not a general web server: no TLS, no
bodies, no chunked encoding -- exactly what serving JSON snapshots on
a trusted network needs, with zero dependencies beyond the stdlib.

:class:`QueryClient` is the matching keep-alive client used by tests,
the hammer test, and the ``query_service`` benchmark.
"""

from __future__ import annotations

import asyncio
import json
import time
from urllib.parse import parse_qs, unquote, urlsplit

from repro.net.addr import parse_ipv4
from repro.telemetry.export import prometheus_text
from repro.telemetry.metrics import registry
from repro.telemetry.tracing import parse_traceparent, tracer

from repro.query.liveness import infer_liveness
from repro.query.state import QueryState

#: Suffixes accepted by ``since=`` (e.g. ``12h``, ``30m``, ``2d``).
_SINCE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

#: Latency buckets for request histograms: 10 us .. ~0.3 s.
_LATENCY_BUCKETS = tuple(1e-5 * 2**i for i in range(15))


class _BadRequest(Exception):
    """A client error turned into a 400 JSON response."""


def parse_since(text: str) -> float:
    """``since=`` value: raw seconds or a number with s/m/h/d suffix."""
    text = text.strip()
    unit = 1.0
    if text and text[-1].lower() in _SINCE_UNITS:
        unit = _SINCE_UNITS[text[-1].lower()]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise _BadRequest(f"bad since value: {text!r}")
    if seconds < 0:
        raise _BadRequest("since must be non-negative")
    return seconds


def _parse_address(text: str) -> int:
    try:
        return parse_ipv4(unquote(text))
    except (ValueError, AttributeError):
        raise _BadRequest(f"bad IPv4 address: {text!r}")


def _snapshot_info(snapshot) -> dict:
    return {
        "version": snapshot.version,
        "now": snapshot.now,
        "records": snapshot.records,
    }


def _json(status: int, payload) -> tuple[int, str, bytes]:
    body = json.dumps(payload, separators=(",", ":")).encode()
    return status, "application/json", body


def _error(status: int, message: str) -> tuple[int, str, bytes]:
    return _json(status, {"error": message})


def endpoint_label(path: str) -> str:
    """The telemetry label for a request path (bounded cardinality)."""
    head = path.split("/", 2)[1] if path.startswith("/") else ""
    known = {"host", "services", "liveness", "watermarks", "healthz",
             "metricsz", "tracez"}
    return head if head in known else "other"


def handle_request(
    state: QueryState, method: str, target: str
) -> tuple[int, str, bytes]:
    """Route one request; returns ``(status, content_type, body)``.

    Every response is computed against exactly one snapshot reference,
    taken once at the top -- a request never observes two versions.
    """
    if method != "GET":
        return _error(405, f"method {method} not allowed")
    parts = urlsplit(target)
    path = parts.path
    try:
        query = parse_qs(parts.query)
        snapshot = state.snapshot()
        if path == "/healthz":
            health = state.health()
            return _json(200 if health["ok"] else 503, health)
        if path == "/metricsz":
            return 200, "text/plain; charset=utf-8", prometheus_text(
                registry()
            ).encode()
        if path == "/tracez":
            # The serving process's flight-recorder ring: the most
            # recent trace events, newest last, without touching disk.
            trc = tracer()
            events = trc.flight.snapshot()
            if "limit" in query:
                try:
                    limit = int(query["limit"][-1])
                except ValueError:
                    raise _BadRequest(f"bad limit: {query['limit'][-1]!r}")
                if limit < 0:
                    raise _BadRequest("limit must be non-negative")
                events = events[len(events) - limit:] if limit else []
            return _json(
                200,
                {
                    "enabled": trc.enabled,
                    "trace_id": trc.trace_id,
                    "process": trc.process,
                    "flight": trc.flight.state(),
                    "events": events,
                },
            )
        if path == "/watermarks":
            marks = [
                {
                    "time": mark.time,
                    "records": mark.records,
                    "union": mark.summary.union,
                    "both": mark.summary.both,
                    "active_only": mark.summary.active_only,
                    "passive_only": mark.summary.passive_only,
                }
                for mark in snapshot.watermarks
            ]
            return _json(
                200, {"snapshot": _snapshot_info(snapshot), "watermarks": marks}
            )
        if path == "/services":
            return _json(
                200,
                {
                    "snapshot": _snapshot_info(snapshot),
                    "services": _services_query(snapshot, query),
                },
            )
        if path.startswith("/host/"):
            address = _parse_address(path[len("/host/") :])
            services = snapshot.host_services(address)
            if not services:
                return _error(404, "no services discovered for address")
            return _json(
                200,
                {
                    "address": services[0]["address"],
                    "snapshot": _snapshot_info(snapshot),
                    "services": services,
                },
            )
        if path.startswith("/liveness/"):
            address = _parse_address(path[len("/liveness/") :])
            body = infer_liveness(address, snapshot, state.active)
            body["snapshot"] = _snapshot_info(snapshot)
            return _json(200, body)
        return _error(404, f"no such endpoint: {path}")
    except _BadRequest as exc:
        return _error(400, str(exc))


def _services_query(snapshot, query: dict) -> list[dict]:
    proto = port = since = None
    if "proto" in query:
        from repro.query.snapshot import PROTO_NUMBERS

        raw = query["proto"][-1].lower()
        if raw not in PROTO_NUMBERS:
            raise _BadRequest(f"bad proto: {raw!r} (want tcp or udp)")
        proto = PROTO_NUMBERS[raw]
    if "port" in query:
        try:
            port = int(query["port"][-1])
        except ValueError:
            raise _BadRequest(f"bad port: {query['port'][-1]!r}")
    if "since" in query:
        since = parse_since(query["since"][-1])
    rows = snapshot.services(proto=proto, port=port, since=since)
    if "limit" in query:
        try:
            limit = int(query["limit"][-1])
        except ValueError:
            raise _BadRequest(f"bad limit: {query['limit'][-1]!r}")
        if limit < 0:
            raise _BadRequest("limit must be non-negative")
        rows = rows[:limit]
    return rows


class QueryService:
    """GET-only HTTP/1.1 keep-alive server over a :class:`QueryState`."""

    def __init__(self, state: QueryState, host: str = "127.0.0.1", port: int = 0):
        self.state = state
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> None:
        """Bind and start accepting; resolves ``port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, keep_alive, traceparent = request
                status, content_type, body = self._dispatch(
                    method, target, traceparent
                )
                writer.write(_render_response(status, content_type, body, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            # Loop teardown cancels lingering keep-alive handlers;
            # finishing quietly avoids 3.11's streams-callback noise.
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    def _dispatch(
        self, method: str, target: str, traceparent: str | None = None
    ) -> tuple[int, str, bytes]:
        reg = registry()
        trc = tracer()
        label = endpoint_label(urlsplit(target).path)
        started = time.perf_counter()
        # A valid W3C traceparent header links this request span into
        # the caller's trace; otherwise it roots in this process.
        parent = parse_traceparent(traceparent) if trc.enabled else None
        with trc.span("query.request", parent=parent, endpoint=label) as tspan:
            try:
                status, content_type, body = handle_request(
                    self.state, method, target
                )
            except Exception as exc:  # defensive: a bug must not kill the server
                status, content_type, body = _error(
                    500, f"internal error: {exc}"
                )
            if trc.enabled:
                tspan.fields["status"] = status
        reg.histogram(
            "repro_query_request_seconds",
            "Query service request latency.",
            bounds=_LATENCY_BUCKETS,
            endpoint=label,
        ).observe(time.perf_counter() - started)
        reg.counter(
            "repro_query_requests_total",
            "Query service requests by endpoint and status code.",
            endpoint=label,
            code=str(status),
        ).inc()
        return status, content_type, body

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """One request head; None at EOF.  Bodies are not supported.

        Returns ``(method, target, keep_alive, traceparent)`` -- the
        only headers inspected are ``Connection`` and ``traceparent``.
        """
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            return "BAD", "/", False, None
        keep_alive = version.upper() != "HTTP/1.0"
        traceparent = None
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "connection":
                keep_alive = value.strip().lower() != "close"
            elif name == "traceparent":
                traceparent = value.strip()
        return method, target, keep_alive, traceparent


def _render_response(
    status: int, content_type: str, body: bytes, keep_alive: bool
) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 500: "Internal Server Error",
              503: "Service Unavailable"}.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


class QueryClient:
    """Minimal keep-alive client for tests, hammers, and benchmarks."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def get(self, target: str, headers: dict | None = None):
        """GET *target*; returns ``(status, body)`` with JSON decoded.

        *headers* adds extra request headers (e.g. ``traceparent``).
        """
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        extra = ""
        if headers:
            extra = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        self._writer.write(
            f"GET {target} HTTP/1.1\r\nHost: {self.host}\r\n{extra}\r\n".encode()
        )
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        content_length = 0
        content_type = ""
        while True:
            header = await self._reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == "content-type":
                content_type = value.strip()
        body = await self._reader.readexactly(content_length)
        if content_type.startswith("application/json"):
            return status, json.loads(body)
        return status, body.decode()
