"""Liveness inference: is this address still active *right now*?

"Lost in Space" (PAPERS.md) frames liveness as an inference problem
over heterogeneous evidence: recent passive traffic proves an address
up, a completed probe sweep that saw nothing argues it is down, and
silence under no probing proves nothing.  This module reduces that to
a deterministic rule over the two evidence streams this repo already
carries:

* **passive recency** -- the snapshot's last-seen timeline gives the
  latest moment each address demonstrably emitted service traffic;
* **active coverage** -- the dataset's scan reports give, per sweep,
  when it completed and which addresses it found open, so "probed
  since last seen and silent" is decidable mid-stream.

Verdicts (``GET /liveness/{addr}``):

``alive``
    Evidence (passive or active) within the horizon of ``now``.
``likely-down``
    Older evidence exists, *and* at least one sweep completed after the
    last evidence without finding the address open -- positive
    negative evidence, the strongest "down" signal available.
``stale``
    Older evidence exists but no sweep has tested the address since --
    absence of evidence only.
``never-seen``
    Neither method ever observed the address.

The default horizon is 12 hours -- the paper's sweep cadence, i.e. one
active refresh period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.net.addr import format_ipv4
from repro.simkernel.clock import hours

from repro.query.snapshot import DiscoverySnapshot

#: Default liveness horizon: one of the paper's 12-hour sweep periods.
DEFAULT_HORIZON = hours(12)


@dataclass(frozen=True)
class ActiveView:
    """Active-scan evidence indexed for liveness queries.

    Built once per dataset (scan results are materialised at build
    time, as the paper's Nmap logs were) and shared read-only by every
    request.  ``sweeps`` holds ``(end_time, open_addresses)`` per
    sweep, sorted by completion time; only sweeps with ``end <= now``
    count for a query at stream time ``now`` -- the same
    evidence-time filtering watermarks apply to the passive side.
    """

    first_open: Mapping[int, float]
    last_open: Mapping[int, float]
    sweeps: tuple[tuple[float, frozenset[int]], ...]

    @classmethod
    def from_dataset(cls, dataset) -> "ActiveView":
        first_open: dict[int, float] = {}
        last_open: dict[int, float] = {}
        sweeps = []
        for report in dataset.scan_reports:
            for when, address, _port in report.opens:
                if address not in first_open or when < first_open[address]:
                    first_open[address] = when
                if address not in last_open or when > last_open[address]:
                    last_open[address] = when
            sweeps.append((report.end, frozenset(report.open_addresses())))
        if dataset.udp_report is not None:
            end = dataset.udp_report.end
            opens = frozenset(
                address for address, _ in dataset.udp_report.open_endpoints()
            )
            for address in opens:
                if address not in first_open or end < first_open[address]:
                    first_open[address] = end
                if address not in last_open or end > last_open[address]:
                    last_open[address] = end
            sweeps.append((end, opens))
        sweeps.sort(key=lambda sweep: sweep[0])
        return cls(
            first_open=first_open,
            last_open=last_open,
            sweeps=tuple(sweeps),
        )

    def active_last_seen(self, address: int, now: float) -> float | None:
        """Latest active open of *address* at or before stream time."""
        sweeps_with = [
            end
            for end, opens in self.sweeps
            if end <= now and address in opens
        ]
        return max(sweeps_with) if sweeps_with else None

    def probed_since(self, address: int, after: float, now: float) -> bool:
        """A sweep completed in ``(after, now]`` without finding *address*."""
        return any(
            after < end <= now and address not in opens
            for end, opens in self.sweeps
        )

    def sweeps_completed(self, now: float) -> int:
        return sum(1 for end, _ in self.sweeps if end <= now)


def infer_liveness(
    address: int,
    snapshot: DiscoverySnapshot,
    active: ActiveView,
    horizon: float = DEFAULT_HORIZON,
) -> dict:
    """The liveness verdict for *address* at the snapshot's stream time.

    Deterministic in (snapshot, active view, horizon); the JSON shape
    is the ``GET /liveness/{addr}`` response body.

    A snapshot published by an online-probing run carries its own
    active evidence (``snapshot.probes``, the scheduler's view at the
    same consistent cut); it replaces the build-time *active* view, so
    verdicts account for sweeps still in flight -- the per-address
    probe times inside the view make "probed since last evidence and
    silent" decidable mid-sweep.
    """
    if snapshot.probes is not None:
        active = snapshot.probes
    now = snapshot.now
    passive_last = snapshot.passive_last_seen(address)
    active_last = active.active_last_seen(address, now)
    evidence = [
        when for when in (passive_last, active_last) if when is not None
    ]
    last_evidence = max(evidence) if evidence else None
    if last_evidence is None:
        verdict = "never-seen"
    elif now - last_evidence <= horizon:
        verdict = "alive"
    elif active.probed_since(address, last_evidence, now):
        verdict = "likely-down"
    else:
        verdict = "stale"
    return {
        "address": format_ipv4(address),
        "verdict": verdict,
        "now": now,
        "horizon_seconds": horizon,
        "last_passive_seen": passive_last,
        "last_active_seen": active_last,
        "seconds_since_evidence": (
            None if last_evidence is None else now - last_evidence
        ),
        "probed_since_last_evidence": (
            False
            if last_evidence is None
            else active.probed_since(address, last_evidence, now)
        ),
        "sweeps_completed": active.sweeps_completed(now),
        "services": len(snapshot.host_services(address)),
    }
