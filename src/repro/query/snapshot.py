"""Immutable, versioned snapshots of merged discovery state.

The query service must answer from shard state *while ingest keeps
mutating it*.  Rather than locking the shard tables (stalling ingest)
or reading them live (tearing responses), shards publish
**copy-on-publish snapshots**: at each snapshot boundary the engine
drains its queues -- so the state is a consistent stream prefix -- and
copies every per-endpoint map into one :class:`DiscoverySnapshot`.
Publication swaps a single reference (:mod:`repro.query.state`), after
which the snapshot is never mutated; any number of concurrent readers
answer from it without coordination, and ingest resumes untouched.

The same structures are the *final* merge: ``finalize_result`` in
:mod:`repro.stream.engine` builds its completeness summary from
``DiscoverySnapshot.server_addresses()``, so the rendered report and
an exhaustive ``/services`` query are two views of one object -- they
cannot disagree (the equivalence test in ``tests/test_query.py`` pins
this).

Two layers, so the fabric can ship snapshots across processes:

* :func:`shard_snapshot_payload` -- one shard's contribution as a
  plain picklable dict (workers produce these for ``snap`` requests);
* :func:`merge_snapshot_payloads` -- dict-union of payloads into a
  :class:`DiscoverySnapshot` (shard key spaces are disjoint by
  construction, exactly like ``merge_shards``).

:func:`snapshot_states` composes the two for the in-process engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.net.addr import format_ipv4
from repro.net.packet import PROTO_TCP, PROTO_UDP

#: A service endpoint, keyed the way the passive table keys it.
Endpoint = tuple[int, int, int]  # (address, port, proto)

#: Protocol numbers <-> the names the JSON API speaks.
PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}
PROTO_NUMBERS = {name: number for number, name in PROTO_NAMES.items()}

#: What kind of passive evidence backs an endpoint, by protocol: the
#: paper's Section 3.2 rules (a SYN-ACK from campus; a campus datagram
#: sourced at a watched UDP port).
EVIDENCE = {PROTO_TCP: "syn-ack", PROTO_UDP: "udp-sport"}


def shard_snapshot_payload(state) -> dict:
    """One shard's snapshot contribution as plain picklable data.

    *state* is a :class:`repro.stream.shard.ShardState` (duck-typed;
    this module must not import :mod:`repro.stream`).  Client sets are
    reduced to counts -- queries report cardinality, and counts ship
    across the fabric's process boundary far cheaper than sets.
    """
    table = state.table
    return {
        "records": state.records,
        "first_seen": dict(table.first_seen),
        "last_seen": dict(state.last_seen),
        "flows": dict(table.flow_counts),
        "clients": {
            endpoint: len(clients) for endpoint, clients in table.clients.items()
        },
    }


@dataclass(frozen=True)
class DiscoverySnapshot:
    """One immutable published view of merged discovery state.

    ``now`` is the stream time the snapshot covers (every record at or
    before it is folded in -- the same contract as a watermark);
    ``version`` is the publication sequence number stamped by
    :class:`~repro.query.state.QueryState`.  The maps are merged across
    shards and must never be mutated after construction.

    ``last_seen`` only carries endpoints refreshed through the
    streaming last-seen timeline (the default-rule signals);
    :meth:`last_seen_of` falls back to ``first_seen``, so every known
    endpoint reports a timestamp.
    """

    version: int
    now: float
    records: int
    first_seen: Mapping[Endpoint, float] = field(default_factory=dict)
    last_seen: Mapping[Endpoint, float] = field(default_factory=dict)
    flows: Mapping[Endpoint, int] = field(default_factory=dict)
    clients: Mapping[Endpoint, int] = field(default_factory=dict)
    watermarks: tuple = ()
    #: Online-probing evidence at the same consistent cut (a
    #: :class:`repro.probe.scheduler.ProbeEvidenceView`; duck-typed so
    #: this module never imports :mod:`repro.probe`).  ``None`` for
    #: passive-only runs -- readers then fall back to the build-time
    #: :class:`~repro.query.liveness.ActiveView`.
    probes: object | None = None

    # ---- set views (the report's inputs) ------------------------------

    def endpoints(self) -> set[Endpoint]:
        """All (address, port, proto) endpoints with recorded evidence."""
        return set(self.first_seen)

    def server_addresses(self) -> set[int]:
        """Addresses with at least one discovered service.

        This is the passive set the final report's completeness summary
        is computed from -- the report/query no-disagreement anchor.
        """
        return {address for address, _, _ in self.first_seen}

    def last_seen_of(self, endpoint: Endpoint) -> float:
        """Latest evidence time for *endpoint* (first-seen fallback)."""
        seen = self.last_seen.get(endpoint)
        return seen if seen is not None else self.first_seen[endpoint]

    # ---- query views (the JSON API's rows) ----------------------------

    def service_row(self, endpoint: Endpoint) -> dict:
        """One endpoint as the JSON object every query endpoint returns."""
        address, port, proto = endpoint
        return {
            "address": format_ipv4(address),
            "port": port,
            "proto": PROTO_NAMES.get(proto, str(proto)),
            "evidence": EVIDENCE.get(proto, "unknown"),
            "first_seen": self.first_seen[endpoint],
            "last_seen": self.last_seen_of(endpoint),
            "flows": self.flows.get(endpoint, 0),
            "clients": self.clients.get(endpoint, 0),
        }

    def host_services(self, address: int) -> list[dict]:
        """Every service of one address, sorted by (port, proto)."""
        rows = [
            self.service_row(endpoint)
            for endpoint in self.first_seen
            if endpoint[0] == address
        ]
        rows.sort(key=lambda row: (row["port"], row["proto"]))
        return rows

    def services(
        self,
        proto: int | None = None,
        port: int | None = None,
        since: float | None = None,
    ) -> list[dict]:
        """Filtered service listing (``GET /services``), sorted stably.

        *since* keeps endpoints whose latest evidence is within that
        many seconds of ``now`` -- "all HTTPS servers seen in the last
        12h" is ``proto=6, port=443, since=43200``.
        """
        cutoff = None if since is None else self.now - since
        rows = []
        for endpoint in self.first_seen:
            if proto is not None and endpoint[2] != proto:
                continue
            if port is not None and endpoint[1] != port:
                continue
            if cutoff is not None and self.last_seen_of(endpoint) < cutoff:
                continue
            rows.append(self.service_row(endpoint))
        rows.sort(key=lambda row: (row["address"], row["port"], row["proto"]))
        return rows

    def passive_last_seen(self, address: int) -> float | None:
        """Latest passive evidence across all of one address's services."""
        times = [
            self.last_seen_of(endpoint)
            for endpoint in self.first_seen
            if endpoint[0] == address
        ]
        return max(times) if times else None

    def with_version(self, version: int) -> "DiscoverySnapshot":
        """A copy stamped with a publication sequence number."""
        return replace(self, version=version)


def merge_snapshot_payloads(
    payloads: Iterable[dict],
    now: float,
    records: int,
    watermarks: Iterable = (),
    version: int = 0,
    probes: object | None = None,
) -> DiscoverySnapshot:
    """Union per-shard payloads into one snapshot (disjoint keys).

    The same dict-union ``merge_shards`` performs on live tables, over
    the plain-data payloads -- usable both in process (engine) and
    across the fabric's queues (supervisor merging worker ``snap_ack``
    payloads).
    """
    first_seen: dict[Endpoint, float] = {}
    last_seen: dict[Endpoint, float] = {}
    flows: dict[Endpoint, int] = {}
    clients: dict[Endpoint, int] = {}
    for payload in payloads:
        first_seen.update(payload["first_seen"])
        last_seen.update(payload["last_seen"])
        flows.update(payload["flows"])
        clients.update(payload["clients"])
    return DiscoverySnapshot(
        version=version,
        now=now,
        records=records,
        first_seen=first_seen,
        last_seen=last_seen,
        flows=flows,
        clients=clients,
        watermarks=tuple(watermarks),
        probes=probes,
    )


def snapshot_states(
    states: Iterable,
    now: float,
    records: int,
    watermarks: Iterable = (),
    version: int = 0,
    probes: object | None = None,
) -> DiscoverySnapshot:
    """Copy-on-publish snapshot of in-process shard states.

    Call only at a consistent cut (after the engine drains its shard
    queues); the returned snapshot is immutable and safe to hand to
    concurrent readers while ingest resumes.
    """
    return merge_snapshot_payloads(
        (shard_snapshot_payload(state) for state in states),
        now=now,
        records=records,
        watermarks=watermarks,
        version=version,
        probes=probes,
    )
