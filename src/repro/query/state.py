"""Lock-light hand-off between the ingest thread and the read path.

One :class:`QueryState` instance sits between exactly one publisher
(the engine's or fabric supervisor's thread, at snapshot boundaries)
and any number of readers (the asyncio request handlers).  The
protocol keeps both sides honest:

* ``publish`` stamps the snapshot with the next version number and
  swaps a single attribute reference.  The tiny lock serialises
  *publishers* and the version counter only.
* ``snapshot`` is one attribute read -- atomic under the interpreter,
  no lock, never blocks, and the object it returns is frozen, so a
  reader can take seconds over a response while ingest publishes ten
  more versions.

Consistency model: every response is computed against exactly one
snapshot (a consistent stream prefix -- queues drained before copy),
and versions observed by any single reader are monotone.
"""

from __future__ import annotations

import threading

from repro.query.liveness import ActiveView
from repro.query.snapshot import DiscoverySnapshot


class QueryState:
    """Published snapshot + ingest status shared with the HTTP layer."""

    def __init__(self, active: ActiveView | None = None):
        self._lock = threading.Lock()
        self._snapshot = DiscoverySnapshot(version=0, now=0.0, records=0)
        self.active = active if active is not None else ActiveView(
            first_open={}, last_open={}, sweeps=()
        )
        self._status = "starting"
        self._error: str | None = None
        self._fabric: list[dict] | None = None

    # ---- publisher side (ingest thread) -------------------------------

    def publish(self, snapshot: DiscoverySnapshot) -> DiscoverySnapshot:
        """Stamp *snapshot* with the next version and make it current."""
        with self._lock:
            stamped = snapshot.with_version(self._snapshot.version + 1)
            self._snapshot = stamped
            if self._status == "starting":
                self._status = "running"
        return stamped

    def mark_running(self) -> None:
        with self._lock:
            self._status = "running"

    def mark_finished(self) -> None:
        with self._lock:
            self._status = "finished"

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self._status = "failed"
            self._error = error

    def update_fabric(self, shards: list[dict]) -> None:
        """Record the fabric's latest per-shard membership health.

        Called (throttled) from the supervisor's ``on_health`` hook;
        the list is replaced wholesale, so readers see one coherent
        generation of the table.
        """
        with self._lock:
            self._fabric = shards

    # ---- reader side (request handlers) -------------------------------

    def snapshot(self) -> DiscoverySnapshot:
        """The current published snapshot (lock-free attribute read)."""
        return self._snapshot

    def health(self) -> dict:
        """``GET /healthz`` body; ``ok`` iff ingest has not failed.

        In fabric mode the body carries per-shard membership health
        (incarnation, restart count, heartbeat age) so a degraded-but-
        serving fabric is visible to clients; with tracing enabled it
        also carries the serving process's flight-recorder state.
        """
        snapshot = self._snapshot
        status = self._status
        body = {
            "ok": status != "failed",
            "ingest": status,
            "error": self._error,
            "snapshot_version": snapshot.version,
            "records": snapshot.records,
            "now": snapshot.now,
            "endpoints": len(snapshot.first_seen),
        }
        if snapshot.probes is not None:
            # Online probing: policy, probes issued, sweep progress --
            # read off the published snapshot, so health and query
            # answers describe the same consistent cut.
            body["probes"] = snapshot.probes.health()
        if self._fabric is not None:
            body["fabric"] = self._fabric
        from repro.telemetry.tracing import tracer

        trc = tracer()
        if trc.enabled:
            body["flight"] = trc.flight.state()
        return body
