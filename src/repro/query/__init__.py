"""Live discovery query service: HTTP/JSON over streaming shard state.

Every other front-end in this repo terminates in a rendered report;
this package serves the *current* discovery state while capture is
still running.  The pieces:

* :mod:`.snapshot` -- immutable, versioned
  :class:`~repro.query.snapshot.DiscoverySnapshot` structures.  Shards
  publish copy-on-publish snapshots at ``--snapshot-every`` boundaries;
  the final batch merge goes through the *same* structures, so a query
  response and the rendered report can never disagree.
* :mod:`.state` -- :class:`~repro.query.state.QueryState`, the
  lock-light hand-off between the ingest thread and the asyncio read
  path: publication swaps one reference, reads never block ingest.
* :mod:`.liveness` -- "Lost in Space"-style liveness inference
  combining passive recency with active scan coverage.
* :mod:`.http` -- the asyncio HTTP/1.1 server (stdlib only) and a
  small keep-alive client used by tests and benchmarks.
* :mod:`.serve` -- glue running ingest (threaded engine or process
  fabric) under the service; ``python -m repro serve``.

Endpoints: ``GET /host/{addr}``, ``GET /services``,
``GET /liveness/{addr}``, ``GET /watermarks``, ``GET /healthz``,
``GET /metricsz``.
"""

from repro.query.http import QueryClient, QueryService, handle_request
from repro.query.liveness import ActiveView, DEFAULT_HORIZON, infer_liveness
from repro.query.snapshot import (
    DiscoverySnapshot,
    merge_snapshot_payloads,
    shard_snapshot_payload,
    snapshot_states,
)
from repro.query.state import QueryState

__all__ = [
    "ActiveView",
    "DEFAULT_HORIZON",
    "DiscoverySnapshot",
    "QueryClient",
    "QueryService",
    "QueryState",
    "handle_request",
    "infer_liveness",
    "merge_snapshot_payloads",
    "shard_snapshot_payload",
    "snapshot_states",
]
