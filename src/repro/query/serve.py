"""Run ingest and the query service together: ``python -m repro serve``.

The glue layer: one ingest thread drives the streaming engine (or the
fabric supervisor) with a snapshot publisher, while the main thread
runs the asyncio server.  The two meet only at
:class:`~repro.query.state.QueryState` -- ingest publishes immutable
snapshots, request handlers read them -- so neither side ever waits on
the other.

Lifecycle: the service starts answering immediately (version-0 empty
snapshot), announces ``serving on http://host:port`` on stderr (the
smoke script parses this), keeps serving after ingest completes (the
final snapshot is the complete state), and shuts down cleanly on
SIGTERM/SIGINT: stop is signalled to ingest at its next publish
boundary (where the engine drains and checkpoints if configured), the
listener closes, and the process exits 0 -- or 1 when ingest failed.

This module is imported lazily by the CLI only: it pulls in
:mod:`repro.stream`, which itself uses :mod:`repro.query.snapshot`, so
importing it from ``repro.query.__init__`` would be a cycle.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading

from repro.query.http import QueryService
from repro.query.liveness import ActiveView
from repro.query.state import QueryState


class _StoppablePublisher:
    """Forward snapshots; interrupt ingest once shutdown is requested.

    Publish boundaries are the engine's drain points, so raising
    ``KeyboardInterrupt`` there triggers its graceful-interrupt path
    (drain, checkpoint when configured, unwind) without any new stop
    machinery in the engines.
    """

    def __init__(self, state: QueryState, stop: threading.Event):
        self._state = state
        self._stop = stop

    def publish(self, snapshot) -> None:
        self._state.publish(snapshot)
        if self._stop.is_set():
            raise KeyboardInterrupt


def run_serve(
    config,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    fabric=None,
    dataset=None,
    telemetry_dir: str | None = None,
    trace_dir: str | None = None,
) -> int:
    """Serve *config*'s stream; blocks until SIGTERM/SIGINT.

    *fabric* (a :class:`repro.stream.FabricConfig`) selects the process
    fabric; ``None`` runs the in-process threaded engine.  *trace_dir*
    enables distributed event tracing: the serving process (and, in
    fabric mode, every shard worker) writes causally linked events
    under that directory, ``/tracez`` serves the recent ring, and
    ``/healthz`` reports flight-recorder state.  Returns the process
    exit code.
    """
    from repro.telemetry import enable

    enable()  # /metricsz needs a live registry even without --telemetry
    if trace_dir:
        from repro.telemetry import enable_tracing

        enable_tracing(
            trace_dir, process="supervisor" if fabric is not None else "engine"
        )
    from repro.stream import StreamEngine

    if fabric is not None:
        from repro.stream import FabricSupervisor

        supervisor = FabricSupervisor(config, fabric, dataset)
        engine = supervisor.engine
    else:
        supervisor = None
        engine = StreamEngine(config, dataset)
    state = QueryState(ActiveView.from_dataset(engine.dataset))
    stop = threading.Event()
    publisher = _StoppablePublisher(state, stop)

    def ingest() -> None:
        try:
            if supervisor is not None:
                supervisor.run(
                    publisher=publisher,
                    on_event=lambda line: print(line, file=sys.stderr),
                    on_health=state.update_fabric,
                )
            else:
                engine.run(publisher=publisher)
        except KeyboardInterrupt:
            state.mark_finished()  # stopped at a publish boundary: clean
        except BaseException as exc:  # noqa: BLE001 - surfaced via /healthz
            state.mark_failed(repr(exc))
            print(f"serve: ingest failed: {exc!r}", file=sys.stderr)
        else:
            state.mark_finished()

    code = asyncio.run(_serve_until_signalled(state, ingest, stop, host, port))
    if trace_dir:
        from repro.telemetry import disable_tracing

        disable_tracing()
        print(f"trace: events in {trace_dir}", file=sys.stderr)
    if telemetry_dir:
        from repro.telemetry import RunManifest, registry, write_exports

        manifest = RunManifest.collect(
            command="serve",
            dataset=config.dataset,
            seed=config.seed,
            scale=config.scale,
            faults=getattr(config, "faults", None),
        )
        written = write_exports(telemetry_dir, registry(), manifest)
        print(
            "telemetry: wrote " + ", ".join(str(path) for path in written),
            file=sys.stderr,
        )
    return code


async def _serve_until_signalled(
    state: QueryState,
    ingest,
    stop: threading.Event,
    host: str,
    port: int,
) -> int:
    service = QueryService(state, host=host, port=port)
    await service.start()
    print(f"serving on http://{host}:{service.port}", file=sys.stderr, flush=True)
    loop = asyncio.get_running_loop()
    signalled = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, signalled.set)
    thread = threading.Thread(target=ingest, name="repro-serve-ingest", daemon=True)
    thread.start()
    try:
        await signalled.wait()
    finally:
        stop.set()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        await service.close()
    # A bounded join: ingest unwinds at its next publish boundary; if no
    # boundary remains (stream already ended, or none scheduled) the
    # daemon thread dies with the process.
    await loop.run_in_executor(None, thread.join, 5.0)
    health = state.health()
    print(
        f"serve: shutdown (ingest {health['ingest']}, "
        f"snapshot v{health['snapshot_version']}, "
        f"{health['endpoints']} endpoints)",
        file=sys.stderr,
    )
    return 1 if health["ingest"] == "failed" else 0
