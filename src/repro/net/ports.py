"""Well-known port registry.

The paper studies a small selected set of TCP services (FTP, SSH, HTTP,
HTTPS, MySQL), four UDP services, and -- in the DTCPall dataset -- all
ports on one subnet.  This module is the single place port/service
naming lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import PROTO_TCP, PROTO_UDP

#: The paper's selected TCP service ports (Section 3.1).
PORT_FTP = 21
PORT_SSH = 22
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_MYSQL = 3306

SELECTED_TCP_PORTS: tuple[int, ...] = (
    PORT_FTP,
    PORT_SSH,
    PORT_HTTP,
    PORT_HTTPS,
    PORT_MYSQL,
)

#: The paper's selected UDP ports (Section 4.5).
PORT_DNS = 53
PORT_NETBIOS_NS = 137
PORT_GAME = 27015

SELECTED_UDP_PORTS: tuple[int, ...] = (
    PORT_HTTP,   # "HTTP and other applications" over UDP
    PORT_DNS,
    PORT_NETBIOS_NS,
    PORT_GAME,
)

_TCP_NAMES: dict[int, str] = {
    7: "echo",
    9: "discard",
    13: "daytime",
    21: "ftp",
    22: "ssh",
    23: "telnet",
    25: "smtp",
    37: "time",
    53: "dns",
    80: "web",
    110: "pop3",
    111: "sunrpc",
    135: "epmap",
    139: "netbios-ssn",
    143: "imap",
    443: "ssl-web",
    445: "microsoft-ds",
    515: "printer",
    631: "ipp",
    993: "imaps",
    3306: "mysql",
    3389: "rdp",
    5432: "postgres",
    6000: "x11",
    7100: "xfonts",
    8080: "web-alt",
    9100: "jetdirect",
}

_UDP_NAMES: dict[int, str] = {
    53: "dns",
    67: "dhcp",
    80: "udp-80",
    123: "ntp",
    137: "netbios-ns",
    161: "snmp",
    514: "syslog",
    27015: "gaming",
}


def service_name(port: int, proto: int = PROTO_TCP) -> str:
    """Return the conventional service name for *port*, or ``"tcp-N"``/``"udp-N"``."""
    if proto == PROTO_TCP:
        return _TCP_NAMES.get(port, f"tcp-{port}")
    if proto == PROTO_UDP:
        return _UDP_NAMES.get(port, f"udp-{port}")
    return f"proto{proto}-{port}"


@dataclass(frozen=True)
class WellKnownPorts:
    """The port universe a study considers.

    ``targets`` is the exact (port, proto) set probed actively and
    tracked passively.  The DTCPall study uses :meth:`all_tcp`.
    """

    targets: tuple[tuple[int, int], ...]
    _index: frozenset[tuple[int, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_index", frozenset(self.targets))

    @classmethod
    def selected_tcp(cls) -> "WellKnownPorts":
        """The paper's five selected TCP service ports."""
        return cls(tuple((p, PROTO_TCP) for p in SELECTED_TCP_PORTS))

    @classmethod
    def selected_udp(cls) -> "WellKnownPorts":
        """The paper's four selected UDP service ports."""
        return cls(tuple((p, PROTO_UDP) for p in SELECTED_UDP_PORTS))

    @classmethod
    def all_tcp(cls, max_port: int = 65535) -> "WellKnownPorts":
        """Every TCP port up to *max_port* (the DTCPall study)."""
        return cls(tuple((p, PROTO_TCP) for p in range(1, max_port + 1)))

    @property
    def tcp_ports(self) -> tuple[int, ...]:
        return tuple(p for p, proto in self.targets if proto == PROTO_TCP)

    @property
    def udp_ports(self) -> tuple[int, ...]:
        return tuple(p for p, proto in self.targets if proto == PROTO_UDP)

    def __contains__(self, item: tuple[int, int]) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self.targets)
