"""Flow abstractions.

The paper weighs discovery completeness by *flows* and by *unique
clients* (Section 4.1.2).  A flow here is one client connection attempt
to one campus service; :class:`FlowRecord` is the generator-level object
from which packet headers are derived, and :class:`FlowKey` identifies
the service endpoint a flow exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import (
    PROTO_TCP,
    PROTO_UDP,
    PacketRecord,
    TcpFlags,
    tcp_syn,
    tcp_synack,
    udp_datagram,
)


@dataclass(frozen=True, order=True, slots=True)
class FlowKey:
    """A service endpoint: (server address, server port, protocol)."""

    server: int
    port: int
    proto: int = PROTO_TCP

    def __str__(self) -> str:
        from repro.net.addr import format_ipv4

        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, str(self.proto))
        return f"{format_ipv4(self.server)}:{self.port}/{proto}"


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One client connection to a campus service.

    Attributes
    ----------
    time:
        Time of the initial packet (the client's SYN / first datagram).
    client:
        Client IPv4 address (integer); external clients for border flows.
    key:
        The service endpoint contacted.
    client_port:
        Ephemeral source port used by the client.
    accepted:
        Whether the server answered positively (SYN-ACK / UDP reply).
        Flows to dead or firewalled endpoints have ``accepted=False``.
    rtt:
        One-way response latency applied to the server's reply, seconds.
    link:
        The peering link this client's traffic crosses (capture
        metadata propagated to the packet records).
    """

    time: float
    client: int
    key: FlowKey
    client_port: int = 40000
    accepted: bool = True
    rtt: float = 0.05
    link: str = ""

    def packets(self) -> list[PacketRecord]:
        """Expand the flow into the header records a border tap would see.

        Only the discovery-relevant packets are materialised: the
        client's opening packet and (for accepted flows) the server's
        positive response.  Data packets never influence the paper's
        analysis and are omitted, exactly as the capture filter would
        drop them.
        """
        key = self.key
        if key.proto == PROTO_TCP:
            out = [
                tcp_syn(
                    self.time, self.client, key.server,
                    self.client_port, key.port, self.link,
                )
            ]
            if self.accepted:
                out.append(
                    tcp_synack(
                        self.time + self.rtt,
                        key.server,
                        self.client,
                        key.port,
                        self.client_port,
                        self.link,
                    )
                )
                # The client's final ACK completes the three-way
                # handshake.  Legitimate clients send it; half-open
                # scanners never do -- which is exactly what the
                # handshake-confirmation ablation distinguishes.
                out.append(
                    PacketRecord(
                        time=self.time + 2 * self.rtt,
                        src=self.client,
                        dst=key.server,
                        sport=self.client_port,
                        dport=key.port,
                        proto=PROTO_TCP,
                        flags=TcpFlags.ACK,
                        link=self.link,
                    )
                )
            return out
        if key.proto == PROTO_UDP:
            out = [
                udp_datagram(
                    self.time, self.client, key.server,
                    self.client_port, key.port, self.link,
                )
            ]
            if self.accepted:
                out.append(
                    udp_datagram(
                        self.time + self.rtt,
                        key.server,
                        self.client,
                        key.port,
                        self.client_port,
                        self.link,
                    )
                )
            return out
        raise ValueError(f"unsupported flow protocol: {key.proto}")
