"""Network primitives: addresses, packet headers, flows, port registry.

These are deliberately minimal -- the reproduction only needs the
fields the paper's monitoring captured (64-byte headers: addresses,
ports, protocol, TCP flags) -- but they are real types with validation,
not bare tuples, so the rest of the code reads like a network stack.
"""

from repro.net.addr import (
    AddressBlock,
    AddressClass,
    AddressSpace,
    IPv4Address,
    format_ipv4,
    parse_cidr,
    parse_ipv4,
)
from repro.net.flow import FlowKey, FlowRecord
from repro.net.packet import (
    ICMP_PORT_UNREACHABLE,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PacketRecord,
    TcpFlags,
    icmp_port_unreachable,
    tcp_rst,
    tcp_syn,
    tcp_synack,
    udp_datagram,
)
from repro.net.ports import (
    SELECTED_TCP_PORTS,
    SELECTED_UDP_PORTS,
    WellKnownPorts,
    service_name,
)

__all__ = [
    "AddressBlock",
    "AddressClass",
    "AddressSpace",
    "FlowKey",
    "FlowRecord",
    "ICMP_PORT_UNREACHABLE",
    "IPv4Address",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PacketRecord",
    "SELECTED_TCP_PORTS",
    "SELECTED_UDP_PORTS",
    "TcpFlags",
    "WellKnownPorts",
    "format_ipv4",
    "icmp_port_unreachable",
    "parse_cidr",
    "parse_ipv4",
    "service_name",
    "tcp_rst",
    "tcp_syn",
    "tcp_synack",
    "udp_datagram",
]
