"""IPv4 addresses and address blocks.

Addresses are stored as plain ``int`` (0 .. 2**32-1) throughout the hot
paths; :class:`IPv4Address` is a thin value wrapper used at API
boundaries.  :class:`AddressBlock` models a contiguous allocation (a
CIDR block, possibly with a few reserved addresses carved out) with an
*address class* -- static, DHCP, PPP, VPN or wireless -- because the
paper's transience analysis (Section 4.4.2) is driven entirely by which
block an address belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

MAX_IPV4 = 2**32 - 1


class AddressClass(str, Enum):
    """Allocation class of an address block (paper Section 4.4.2)."""

    STATIC = "static"
    DHCP = "dhcp"
    PPP = "ppp"
    VPN = "vpn"
    WIRELESS = "wireless"
    EXTERNAL = "external"

    @property
    def is_transient(self) -> bool:
        """True for blocks whose host-to-address mapping changes over time."""
        return self in (
            AddressClass.DHCP,
            AddressClass.PPP,
            AddressClass.VPN,
            AddressClass.WIRELESS,
        )


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad *text* into an integer address.

    Raises
    ------
    ValueError
        If the text is not a well-formed dotted quad.
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format integer *value* as a dotted quad."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def parse_cidr(text: str) -> tuple[int, int]:
    """Parse ``a.b.c.d/n`` into ``(network_int, prefix_len)``.

    The host bits of the network address must be zero.
    """
    if "/" not in text:
        raise ValueError(f"not CIDR notation: {text!r}")
    addr_text, _, prefix_text = text.partition("/")
    network = parse_ipv4(addr_text)
    if not prefix_text.isdigit():
        raise ValueError(f"bad prefix length in {text!r}")
    prefix = int(prefix_text)
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix length out of range in {text!r}")
    host_bits = 32 - prefix
    if host_bits and network & ((1 << host_bits) - 1):
        raise ValueError(f"host bits set in network address: {text!r}")
    return network, prefix


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address (value type)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise ValueError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True)
class AddressBlock:
    """A contiguous allocation of addresses with an allocation class.

    Parameters
    ----------
    name:
        Human-readable block name (e.g. ``"dhcp-resnet"``).
    cidr:
        CIDR notation for the block.
    address_class:
        One of :class:`AddressClass`.
    reserved:
        Number of addresses at the *start* of the block withheld from
        hosts (network/gateway/broadcast and infrastructure), so the
        usable count can be calibrated exactly to the paper's figures.
    """

    name: str
    cidr: str
    address_class: AddressClass
    reserved: int = 0
    _bounds: tuple[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        network, prefix = parse_cidr(self.cidr)
        size = 1 << (32 - prefix)
        if self.reserved < 0 or self.reserved >= size:
            raise ValueError(
                f"reserved count {self.reserved} invalid for /{prefix} block"
            )
        object.__setattr__(self, "_bounds", (network + self.reserved, network + size))

    @property
    def first(self) -> int:
        """First usable address (integer)."""
        return self._bounds[0]

    @property
    def last(self) -> int:
        """Last usable address (integer, inclusive)."""
        return self._bounds[1] - 1

    @property
    def size(self) -> int:
        """Number of usable addresses."""
        return self._bounds[1] - self._bounds[0]

    @property
    def is_transient(self) -> bool:
        return self.address_class.is_transient

    def __contains__(self, address: int) -> bool:
        lo, hi = self._bounds
        return lo <= int(address) < hi

    def addresses(self) -> Iterator[int]:
        """Iterate over all usable addresses in the block."""
        lo, hi = self._bounds
        return iter(range(lo, hi))

    def at(self, offset: int) -> int:
        """Return the usable address at *offset* (0-based)."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} out of range for block {self.name} "
                f"of size {self.size}"
            )
        return self.first + offset


class AddressSpace:
    """An ordered collection of non-overlapping :class:`AddressBlock`.

    Provides the class lookups the analyses need ("is this address
    transient?", "which block is it in?") in O(log n).
    """

    def __init__(self, blocks: list[AddressBlock]) -> None:
        ordered = sorted(blocks, key=lambda b: b.first)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.last >= later.first:
                raise ValueError(
                    f"address blocks overlap: {earlier.name} and {later.name}"
                )
        self.blocks = ordered
        self._starts = [b.first for b in ordered]

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def size(self) -> int:
        """Total usable addresses across all blocks."""
        return sum(b.size for b in self.blocks)

    def block_of(self, address: int) -> AddressBlock | None:
        """Return the block containing *address*, or None."""
        import bisect

        index = bisect.bisect_right(self._starts, int(address)) - 1
        if index < 0:
            return None
        block = self.blocks[index]
        return block if address in block else None

    def class_of(self, address: int) -> AddressClass | None:
        """Return the :class:`AddressClass` of *address*, or None."""
        block = self.block_of(address)
        return block.address_class if block is not None else None

    def is_transient(self, address: int) -> bool:
        """True when *address* lies in a transient (DHCP/PPP/VPN/wireless) block."""
        block = self.block_of(address)
        return block is not None and block.is_transient

    def addresses(self) -> Iterator[int]:
        """Iterate all usable addresses across all blocks, ascending."""
        for block in self.blocks:
            yield from block.addresses()

    def blocks_of_class(self, address_class: AddressClass) -> list[AddressBlock]:
        """Return all blocks with the given class."""
        return [b for b in self.blocks if b.address_class is address_class]
