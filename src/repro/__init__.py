"""repro -- a reproduction of *Understanding Passive and Active Service
Discovery* (Bartlett, Heidemann, Papadopoulos; IMC 2007 / ISI-TR-642).

The library has three layers:

1. **Substrate** -- a deterministic simulated campus network standing in
   for the paper's live USC traffic: :mod:`repro.campus` (hosts,
   services, churn, firewalls), :mod:`repro.traffic` (clients, external
   scanners, noise), :mod:`repro.net` (addresses, packets, flows) and
   :mod:`repro.simkernel` (clock, RNG streams, event loop).

2. **Discovery methods** -- :mod:`repro.passive` (border monitoring,
   per-link taps, sampling, scan detection) and :mod:`repro.active`
   (half-open TCP scanning, generic UDP probing, scheduling), plus
   :mod:`repro.trace` (header-trace recording and anonymisation) and
   :mod:`repro.webclassify` (root-page fetching and classification).

3. **Analyses** -- :mod:`repro.core` (completeness, weighting,
   categorisation, timelines), :mod:`repro.datasets` (the paper's
   Table 1 datasets as buildable objects) and :mod:`repro.experiments`
   (every table and figure regenerated).

Quickstart::

    from repro import build_dataset, PassiveServiceTable

    dataset = build_dataset("DTCP1-18d", seed=0, scale=0.1)
    table = PassiveServiceTable(
        is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports
    )
    dataset.replay(table)
    print(len(table.server_addresses()), "servers found passively")
"""

from repro.active.prober import HalfOpenScanner, ScannerConfig
from repro.active.udp_scan import GenericUdpProber
from repro.core.completeness import CompletenessSummary, summarize_overlap
from repro.core.timeline import DiscoveryTimeline
from repro.datasets import BuiltDataset, build_dataset, registry
from repro.passive.monitor import PassiveServiceTable, ServiceSignal, replay
from repro.passive.sampling import FixedPeriodSampler
from repro.passive.scandetect import ExternalScanDetector
from repro.trace.anonymize import Anonymizer
from repro.trace.format import TraceReader, TraceWriter

__version__ = "1.0.0"

__all__ = [
    "Anonymizer",
    "BuiltDataset",
    "CompletenessSummary",
    "DiscoveryTimeline",
    "ExternalScanDetector",
    "FixedPeriodSampler",
    "GenericUdpProber",
    "HalfOpenScanner",
    "PassiveServiceTable",
    "ScannerConfig",
    "ServiceSignal",
    "TraceReader",
    "TraceWriter",
    "__version__",
    "build_dataset",
    "registry",
    "replay",
    "summarize_overlap",
]
