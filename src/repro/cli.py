"""Command-line interface: ``python -m repro <command>``.

Operational entry points over the library:

``datasets``
    Print the dataset registry (the paper's Table 1).
``survey DATASET``
    Build a dataset, run both discovery methods, print the overlap
    summary -- the quickstart as a command.
``record DATASET OUT``
    Record a dataset's border traffic to a binary trace file,
    optionally anonymised.
``trace-stats FILE``
    Summarise a recorded trace (record counts, protocol mix, top
    campus responders).
``cache``
    Show the record-once trace cache (location, entries, sizes, and the
    persistent hit/miss counters); ``--clear`` empties it.
``degradation``
    Sweep seeded capture-loss/outage fault plans against passive and
    active completeness (see :mod:`repro.experiments.degradation`).
``stats DIR``
    Read back a ``--telemetry DIR`` export: run manifest, counters and
    gauges, histograms, and span timings.  ``--require NAME...`` exits
    non-zero unless every named metric is present and non-zero (the CI
    smoke check).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.report import (
    TextTable,
    count_rows,
    format_count,
    format_count_pct,
    format_percent,
)


def cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.datasets.registry import dataset_table_rows

    table = TextTable(
        title="Datasets (paper Table 1)",
        headers=["Name", "Start", "Passive", "Scans", "Services",
                 "Addresses", "Section"],
    )
    for row in dataset_table_rows():
        table.add_row(*row)
    print(table.render())
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from repro.active.results import union_open_endpoints
    from repro.core.completeness import summarize_overlap
    from repro.datasets import build_dataset
    from repro.passive.monitor import PassiveServiceTable
    from repro.telemetry import span

    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir:
        from repro.telemetry import enable

        enable()
    # The spans are no-ops unless --telemetry enabled a real registry.
    with span("survey"):
        with span("build"):
            dataset = build_dataset(
                args.dataset, seed=args.seed, scale=args.scale
            )
        table = PassiveServiceTable(
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
        )
        with span("replay"):
            records = dataset.replay(table)
        with span("analyze"):
            active = {a for a, _ in union_open_endpoints(dataset.scan_reports)}
            if dataset.udp_report is not None:
                active |= {a for a, _ in dataset.udp_report.open_endpoints()}
            summary = summarize_overlap(table.server_addresses(), active)
    report = TextTable(
        title=(
            f"{args.dataset} (scale {args.scale}, seed {args.seed}): "
            f"{records:,} headers, {len(dataset.scan_reports)} scans"
        ),
        headers=["Measure", "Servers"],
    )
    for name, count, pct in summary.as_rows():
        report.add_row(name, format_count_pct(count, pct))
    print(report.render())
    if telemetry_dir:
        from repro.telemetry import RunManifest, registry, write_exports

        reg = registry()
        reg.gauge(
            "repro_passive_services_inferred",
            "Service endpoints the passive table discovered.",
        ).set(len(table.endpoints()))
        reg.gauge(
            "repro_passive_server_addresses",
            "Addresses with at least one passively discovered service.",
        ).set(len(table.server_addresses()))
        reg.gauge(
            "repro_active_open_addresses",
            "Addresses with an open port in any active sweep.",
        ).set(len(active))
        manifest = RunManifest.collect(
            command="survey",
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
        )
        written = write_exports(telemetry_dir, reg, manifest)
        print(
            "telemetry: wrote " + ", ".join(str(path) for path in written),
            file=sys.stderr,
        )
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from repro.datasets import build_dataset
    from repro.simkernel.clock import days
    from repro.trace.anonymize import Anonymizer
    from repro.trace.format import TraceWriter

    dataset = build_dataset(args.dataset, seed=args.seed, scale=args.scale)
    end = days(args.days) if args.days is not None else None
    anonymizer = (
        Anonymizer(key=args.anonymize_key)
        if args.anonymize_key is not None
        else None
    )
    with TraceWriter.open(args.out) as writer:
        for record in dataset.packet_stream(end=end):
            if anonymizer is not None:
                record = anonymizer.anonymize(record)
            writer.write(record)
        count = writer.records_written
    suffix = " (anonymised)" if anonymizer else ""
    print(f"wrote {count:,} records to {args.out}{suffix}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.net.addr import format_ipv4, parse_cidr
    from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
    from repro.trace.format import TraceReader

    network, prefix = parse_cidr(args.campus)
    mask = ~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF

    def is_campus(address: int) -> bool:
        return (address & mask) == network

    proto_names = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
    protocols: dict[str, int] = {}
    flags: dict[str, int] = {}
    links: dict[str, int] = {}
    responders: dict[int, int] = {}
    first = last = None
    total = 0
    with TraceReader.open(args.file) as reader:
        for record in reader:
            total += 1
            first = record.time if first is None else min(first, record.time)
            last = record.time if last is None else max(last, record.time)
            proto = proto_names.get(record.proto, str(record.proto))
            protocols[proto] = protocols.get(proto, 0) + 1
            link = record.link or "unknown"
            links[link] = links.get(link, 0) + 1
            if record.proto == PROTO_TCP:
                if record.flags.is_synack:
                    flags["syn-ack"] = flags.get("syn-ack", 0) + 1
                    if is_campus(record.src):
                        responders[record.src] = responders.get(record.src, 0) + 1
                elif record.flags.is_syn:
                    flags["syn"] = flags.get("syn", 0) + 1
                elif record.flags.is_rst:
                    flags["rst"] = flags.get("rst", 0) + 1
                else:
                    flags["other"] = flags.get("other", 0) + 1
    table = TextTable(
        title=f"Trace {args.file}: {total:,} records",
        headers=["Measure", "Value"],
    )
    if first is not None:
        table.add_row("time span", f"{first:.1f}s .. {last:.1f}s "
                                   f"({(last - first) / 3600:.1f} h)")
    for label, cell in count_rows(protocols, label_prefix="protocol "):
        table.add_row(label, cell)
    for label, cell in count_rows(flags, label_prefix="tcp "):
        table.add_row(label, cell)
    for label, cell in count_rows(links, label_prefix="link "):
        table.add_row(label, cell)
    print(table.render())
    if responders:
        top = TextTable(
            title="Top campus responders (SYN-ACK senders)",
            headers=["Address", "SYN-ACKs"],
        )
        ranked = sorted(responders.items(), key=lambda item: (-item[1], item[0]))
        for address, count in ranked[: args.top]:
            top.add_row(format_ipv4(address), format_count(count))
        print()
        print(top.render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.trace.cache import ENV_VAR, default_trace_cache

    cache = default_trace_cache()
    if not cache.enabled:
        print(f"trace cache disabled ({ENV_VAR}={os.environ.get(ENV_VAR)})")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached trace(s) from {cache.root}")
        return 0
    entries = cache.entries()
    table = TextTable(
        title=f"Trace cache {cache.root}: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}",
        headers=["Trace", "Size"],
    )
    total = 0
    for path in entries:
        size = path.stat().st_size
        total += size
        table.add_row(path.name, f"{size / 1e6:,.1f} MB")
    table.add_row("total", f"{total / 1e6:,.1f} MB")
    print(table.render())
    persisted = cache.persistent_stats()
    lookups = persisted.get("hits", 0) + persisted.get("misses", 0)
    if lookups:
        effectiveness = TextTable(
            title="Cache effectiveness (all runs)",
            headers=["Measure", "Value"],
        )
        effectiveness.add_row("lookups", format_count(lookups))
        effectiveness.add_row("hits", format_count(persisted.get("hits", 0)))
        effectiveness.add_row("misses", format_count(persisted.get("misses", 0)))
        effectiveness.add_row(
            "corrupt evictions", format_count(persisted.get("evictions", 0))
        )
        effectiveness.add_row(
            "hit rate",
            format_percent(100.0 * persisted.get("hits", 0) / lookups),
        )
        print()
        print(effectiveness.render())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import load_run

    manifest, records = load_run(args.directory)
    if manifest is None and not records:
        print(f"no telemetry export found in {args.directory}",
              file=sys.stderr)
        return 1
    if manifest is not None:
        payload = manifest.get("manifest", {})
        info = TextTable(
            title=f"Run manifest ({args.directory})",
            headers=["Field", "Value"],
        )
        for key in ("command", "dataset", "seed", "scale", "fault_digest",
                    "git_sha", "python_version", "repro_version", "platform"):
            value = payload.get(key)
            if value is not None:
                info.add_row(key, value)
        print(info.render())
        print()

    def label_suffix(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + inner + "}"

    scalars: dict[str, float] = {}
    totals: dict[str, float] = {}
    histograms = []
    spans = []
    for record in records:
        kind = record.get("type")
        name = record.get("name", "")
        if kind in ("counter", "gauge"):
            scalars[name + label_suffix(record.get("labels", {}))] = (
                record.get("value", 0)
            )
            totals[name] = totals.get(name, 0) + record.get("value", 0)
        elif kind == "histogram":
            histograms.append(record)
            totals[name] = totals.get(name, 0) + record.get("count", 0)
        elif kind == "span":
            spans.append(record)
    if scalars:
        table = TextTable(
            title=f"Metrics: {len(scalars)} series",
            headers=["Metric", "Value"],
        )
        for label, cell in count_rows(scalars):
            table.add_row(label, cell)
        print(table.render())
    if histograms:
        table = TextTable(
            title="Histograms",
            headers=["Metric", "Count", "Mean", "Sum"],
        )
        for record in histograms:
            table.add_row(
                record["name"] + label_suffix(record.get("labels", {})),
                format_count(record.get("count", 0)),
                f"{record.get('mean', 0):.6g}",
                f"{record.get('sum', 0):.6g}",
            )
        print()
        print(table.render())
    if spans:
        table = TextTable(
            title="Spans",
            headers=["Span", "Count", "Wall s", "CPU s"],
        )
        for record in spans:
            table.add_row(
                record.get("name", ""),
                format_count(record.get("count", 0)),
                f"{record.get('wall_seconds', 0):.3f}",
                f"{record.get('cpu_seconds', 0):.3f}",
            )
        print()
        print(table.render())
    missing = [name for name in (args.require or [])
               if totals.get(name, 0) <= 0]
    if missing:
        print("missing or zero metrics: " + ", ".join(missing),
              file=sys.stderr)
        return 1
    return 0


def cmd_degradation(args: argparse.Namespace) -> int:
    from repro.experiments.degradation import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the paper's datasets")

    survey = commands.add_parser("survey", help="run both discovery methods")
    survey.add_argument("dataset")
    survey.add_argument("--scale", type=float, default=0.1)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="collect metrics/spans and export a run manifest, "
             "Prometheus text and JSONL into DIR",
    )

    record = commands.add_parser("record", help="record a border trace")
    record.add_argument("dataset")
    record.add_argument("out")
    record.add_argument("--scale", type=float, default=0.1)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--days", type=float, default=None,
                        help="record only the first N days")
    record.add_argument("--anonymize-key", type=int, default=None,
                        help="anonymise addresses with this key")

    stats = commands.add_parser("trace-stats", help="summarise a trace file")
    stats.add_argument("file")
    stats.add_argument("--campus", default="128.125.0.0/16")
    stats.add_argument("--top", type=int, default=10)

    cache = commands.add_parser("cache", help="show the record-once trace cache")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached trace")

    run_stats = commands.add_parser(
        "stats", help="read back a --telemetry export directory"
    )
    run_stats.add_argument("directory")
    run_stats.add_argument(
        "--require", nargs="*", default=None, metavar="METRIC",
        help="exit non-zero unless each named metric is present "
             "and non-zero (summed across its label sets)",
    )

    from repro.experiments.degradation import configure_parser

    degradation = commands.add_parser(
        "degradation",
        help="sweep fault plans against passive/active completeness",
    )
    configure_parser(degradation)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "survey": cmd_survey,
        "record": cmd_record,
        "trace-stats": cmd_trace_stats,
        "cache": cmd_cache,
        "stats": cmd_stats,
        "degradation": cmd_degradation,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
