"""Command-line interface: ``python -m repro <command>``.

Operational entry points over the library:

``datasets``
    Print the dataset registry (the paper's Table 1).
``survey DATASET``
    Build a dataset, run both discovery methods, print the overlap
    summary -- the quickstart as a command.
``record DATASET OUT``
    Record a dataset's border traffic to a binary trace file,
    optionally anonymised.
``trace-stats FILE``
    Summarise a recorded trace (record counts, protocol mix, top
    campus responders).
``cache``
    Show the record-once trace cache (location, entries, sizes);
    ``--clear`` empties it.
``degradation``
    Sweep seeded capture-loss/outage fault plans against passive and
    active completeness (see :mod:`repro.experiments.degradation`).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter

from repro.core.report import TextTable, format_count_pct


def cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.datasets.registry import dataset_table_rows

    table = TextTable(
        title="Datasets (paper Table 1)",
        headers=["Name", "Start", "Passive", "Scans", "Services",
                 "Addresses", "Section"],
    )
    for row in dataset_table_rows():
        table.add_row(*row)
    print(table.render())
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from repro.active.results import union_open_endpoints
    from repro.core.completeness import summarize_overlap
    from repro.datasets import build_dataset
    from repro.passive.monitor import PassiveServiceTable

    dataset = build_dataset(args.dataset, seed=args.seed, scale=args.scale)
    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
    )
    records = dataset.replay(table)
    active = {a for a, _ in union_open_endpoints(dataset.scan_reports)}
    if dataset.udp_report is not None:
        active |= {a for a, _ in dataset.udp_report.open_endpoints()}
    summary = summarize_overlap(table.server_addresses(), active)
    report = TextTable(
        title=(
            f"{args.dataset} (scale {args.scale}, seed {args.seed}): "
            f"{records:,} headers, {len(dataset.scan_reports)} scans"
        ),
        headers=["Measure", "Servers"],
    )
    for name, count, pct in summary.as_rows():
        report.add_row(name, format_count_pct(count, pct))
    print(report.render())
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from repro.datasets import build_dataset
    from repro.simkernel.clock import days
    from repro.trace.anonymize import Anonymizer
    from repro.trace.format import TraceWriter

    dataset = build_dataset(args.dataset, seed=args.seed, scale=args.scale)
    end = days(args.days) if args.days is not None else None
    anonymizer = (
        Anonymizer(key=args.anonymize_key)
        if args.anonymize_key is not None
        else None
    )
    with TraceWriter.open(args.out) as writer:
        for record in dataset.packet_stream(end=end):
            if anonymizer is not None:
                record = anonymizer.anonymize(record)
            writer.write(record)
        count = writer.records_written
    suffix = " (anonymised)" if anonymizer else ""
    print(f"wrote {count:,} records to {args.out}{suffix}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.net.addr import format_ipv4, parse_cidr
    from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
    from repro.trace.format import TraceReader

    network, prefix = parse_cidr(args.campus)
    mask = ~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF

    def is_campus(address: int) -> bool:
        return (address & mask) == network

    protocols: Counter = Counter()
    flags: Counter = Counter()
    responders: Counter = Counter()
    first = last = None
    total = 0
    with TraceReader.open(args.file) as reader:
        for record in reader:
            total += 1
            first = record.time if first is None else min(first, record.time)
            last = record.time if last is None else max(last, record.time)
            protocols[record.proto] += 1
            if record.proto == PROTO_TCP:
                if record.flags.is_synack:
                    flags["syn-ack"] += 1
                    if is_campus(record.src):
                        responders[record.src] += 1
                elif record.flags.is_syn:
                    flags["syn"] += 1
                elif record.flags.is_rst:
                    flags["rst"] += 1
                else:
                    flags["other"] += 1
    table = TextTable(
        title=f"Trace {args.file}: {total:,} records",
        headers=["Measure", "Value"],
    )
    if first is not None:
        table.add_row("time span", f"{first:.1f}s .. {last:.1f}s "
                                   f"({(last - first) / 3600:.1f} h)")
    names = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
    for proto, count in protocols.most_common():
        table.add_row(f"protocol {names.get(proto, proto)}", f"{count:,}")
    for kind, count in flags.most_common():
        table.add_row(f"tcp {kind}", f"{count:,}")
    print(table.render())
    if responders:
        top = TextTable(
            title="Top campus responders (SYN-ACK senders)",
            headers=["Address", "SYN-ACKs"],
        )
        for address, count in responders.most_common(args.top):
            top.add_row(format_ipv4(address), f"{count:,}")
        print()
        print(top.render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.trace.cache import ENV_VAR, default_trace_cache

    cache = default_trace_cache()
    if not cache.enabled:
        print(f"trace cache disabled ({ENV_VAR}={os.environ.get(ENV_VAR)})")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached trace(s) from {cache.root}")
        return 0
    entries = cache.entries()
    table = TextTable(
        title=f"Trace cache {cache.root}: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}",
        headers=["Trace", "Size"],
    )
    total = 0
    for path in entries:
        size = path.stat().st_size
        total += size
        table.add_row(path.name, f"{size / 1e6:,.1f} MB")
    table.add_row("total", f"{total / 1e6:,.1f} MB")
    print(table.render())
    return 0


def cmd_degradation(args: argparse.Namespace) -> int:
    from repro.experiments.degradation import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the paper's datasets")

    survey = commands.add_parser("survey", help="run both discovery methods")
    survey.add_argument("dataset")
    survey.add_argument("--scale", type=float, default=0.1)
    survey.add_argument("--seed", type=int, default=0)

    record = commands.add_parser("record", help="record a border trace")
    record.add_argument("dataset")
    record.add_argument("out")
    record.add_argument("--scale", type=float, default=0.1)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--days", type=float, default=None,
                        help="record only the first N days")
    record.add_argument("--anonymize-key", type=int, default=None,
                        help="anonymise addresses with this key")

    stats = commands.add_parser("trace-stats", help="summarise a trace file")
    stats.add_argument("file")
    stats.add_argument("--campus", default="128.125.0.0/16")
    stats.add_argument("--top", type=int, default=10)

    cache = commands.add_parser("cache", help="show the record-once trace cache")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached trace")

    from repro.experiments.degradation import configure_parser

    degradation = commands.add_parser(
        "degradation",
        help="sweep fault plans against passive/active completeness",
    )
    configure_parser(degradation)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "survey": cmd_survey,
        "record": cmd_record,
        "trace-stats": cmd_trace_stats,
        "cache": cmd_cache,
        "degradation": cmd_degradation,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
