"""Command-line interface: ``python -m repro <command>``.

Operational entry points over the library:

``datasets``
    Print the dataset registry (the paper's Table 1).
``survey DATASET``
    Build a dataset, run both discovery methods, print the overlap
    summary -- the quickstart as a command.
``stream DATASET``
    Run the online streaming discovery engine: sharded ingestion with
    periodic completeness watermarks, checkpoint/resume, and a final
    report byte-identical to ``survey`` on the same configuration.
``serve DATASET``
    Run streaming ingest under a live HTTP/JSON query service:
    ``GET /host/{addr}``, ``/services``, ``/liveness/{addr}``,
    ``/watermarks``, ``/healthz``, ``/metricsz`` answer from immutable
    published snapshots while ingest continues.
``checkpoint prune DIR``
    Drop old checkpoint generations from a fabric checkpoint store,
    keeping the newest ``--keep N``.
``record DATASET OUT``
    Record a dataset's border traffic to a binary trace file
    (columnar v2 by default; ``--format 1`` for the row format),
    optionally anonymised.
``trace-stats FILE``
    Summarise a recorded trace (record counts, protocol mix, top
    campus responders).
``trace convert SRC DST``
    Convert a trace between the v1 row format and the v2 columnar
    format (``--to {1,2}``); the record sequence is preserved exactly.
``cache``
    Show the record-once trace cache (location, entries, sizes, and the
    persistent hit/miss counters); ``--clear`` empties it.
``degradation``
    Sweep seeded capture-loss/outage fault plans against passive and
    active completeness (see :mod:`repro.experiments.degradation`).
``online_probing``
    Compare heartbeat and periodic online probing against the passive
    stream across probe budgets: completeness and evidence freshness
    per policy (see :mod:`repro.experiments.online_probing`).
``stats DIR``
    Read back a ``--telemetry DIR`` export: run manifest, counters and
    gauges, histograms, and span timings.  ``--require NAME...`` exits
    non-zero unless every named metric is present and non-zero (the CI
    smoke check).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.report import (
    TextTable,
    count_rows,
    format_count,
    format_count_pct,
    format_percent,
)


def cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.datasets.registry import dataset_table_rows

    table = TextTable(
        title="Datasets (paper Table 1)",
        headers=["Name", "Start", "Passive", "Scans", "Services",
                 "Addresses", "Section"],
    )
    for row in dataset_table_rows():
        table.add_row(*row)
    print(table.render())
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from repro.active.results import union_open_endpoints
    from repro.core.completeness import summarize_overlap
    from repro.datasets import build_dataset
    from repro.passive.monitor import PassiveServiceTable
    from repro.telemetry import span

    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir:
        from repro.telemetry import enable

        enable()
    # The spans are no-ops unless --telemetry enabled a real registry.
    with span("survey"):
        with span("build"):
            dataset = build_dataset(
                args.dataset, seed=args.seed, scale=args.scale
            )
        table = PassiveServiceTable(
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
        )
        with span("replay"):
            records = dataset.replay(table)
        with span("analyze"):
            active = {a for a, _ in union_open_endpoints(dataset.scan_reports)}
            if dataset.udp_report is not None:
                active |= {a for a, _ in dataset.udp_report.open_endpoints()}
            summary = summarize_overlap(table.server_addresses(), active)
    from repro.core.report import survey_table

    report = survey_table(
        args.dataset, args.scale, args.seed,
        records, len(dataset.scan_reports), summary,
    )
    print(report.render())
    if telemetry_dir:
        from repro.telemetry import RunManifest, registry, write_exports

        reg = registry()
        reg.gauge(
            "repro_passive_services_inferred",
            "Service endpoints the passive table discovered.",
        ).set(len(table.endpoints()))
        reg.gauge(
            "repro_passive_server_addresses",
            "Addresses with at least one passively discovered service.",
        ).set(len(table.server_addresses()))
        reg.gauge(
            "repro_active_open_addresses",
            "Addresses with an open port in any active sweep.",
        ).set(len(active))
        manifest = RunManifest.collect(
            command="survey",
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
        )
        written = write_exports(telemetry_dir, reg, manifest)
        print(
            "telemetry: wrote " + ", ".join(str(path) for path in written),
            file=sys.stderr,
        )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    import signal

    from repro.simkernel.clock import hours
    from repro.stream import StreamConfig, StreamEngine

    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir:
        from repro.telemetry import enable

        enable()
    plan = None
    if args.loss_rate or args.burst_loss_rate or args.outage_fraction:
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(
            seed=args.fault_seed,
            capture_loss_rate=args.loss_rate,
            burst_loss_rate=args.burst_loss_rate,
            outage_fraction=args.outage_fraction,
            outage_count=args.outage_count,
        )
    fabric_mode = bool(args.fabric or args.workers is not None)
    trace_dir = getattr(args, "trace", None)
    if trace_dir:
        from repro.telemetry import enable_tracing

        enable_tracing(
            trace_dir, process="supervisor" if fabric_mode else "engine"
        )
    shards = args.workers if args.workers is not None else args.shards
    checkpoint = args.checkpoint
    if checkpoint is None and (args.checkpoint_every is not None or args.resume):
        base = args.out if args.out else f"{args.dataset}-stream"
        # The fabric checkpoints into a per-shard store *directory*;
        # the threaded engine keeps its single snapshot file.
        checkpoint = f"{base}.fabric-ckpt" if fabric_mode else f"{base}.checkpoint"
    config = StreamConfig(
        dataset=args.dataset,
        seed=args.seed,
        scale=args.scale,
        shards=shards,
        batch_records=args.batch_records,
        emit_every=hours(args.emit_every) if args.emit_every else None,
        checkpoint_every=(
            hours(args.checkpoint_every) if args.checkpoint_every else None
        ),
        checkpoint_path=checkpoint,
        max_queue_chunks=args.queue_chunks,
        faults=plan,
        probe_policy=args.probe_policy,
        probe_rate=args.probe_rate,
        probe_ports=tuple(args.probe_ports) if args.probe_ports else None,
    )
    if args.resume and checkpoint:
        from pathlib import Path

        if fabric_mode:
            from repro.stream import ShardCheckpointStore

            if ShardCheckpointStore(checkpoint).generations():
                print(f"resuming: {checkpoint}", file=sys.stderr)
        elif Path(checkpoint).exists():
            print(f"resuming: {checkpoint}", file=sys.stderr)

    def _terminate(signum, frame):  # pragma: no cover - exercised via smoke
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        # Without --emit-every the only watermark is the final one,
        # which would just duplicate the report line; stay quiet then.
        progress = (
            (lambda watermark: print(watermark.render()))
            if args.emit_every else None
        )
        if fabric_mode:
            from repro.stream import (
                FabricConfig,
                FabricDegradedError,
                FabricSupervisor,
            )

            worker_plan = None
            if (
                args.worker_crash_rate
                or args.worker_stall_rate
                or args.worker_heartbeat_drop_rate
            ):
                from repro.faults.worker import WorkerFaultPlan

                worker_plan = WorkerFaultPlan(
                    seed=args.worker_fault_seed,
                    crash_rate=args.worker_crash_rate,
                    stall_rate=args.worker_stall_rate,
                    heartbeat_drop_rate=args.worker_heartbeat_drop_rate,
                )
            fabric_config = FabricConfig(
                heartbeat_interval=args.heartbeat_interval,
                miss_budget=args.miss_budget,
                max_restarts=args.max_restarts,
                worker_faults=worker_plan,
            )
            supervisor = FabricSupervisor(config, fabric_config)
            try:
                result = supervisor.run(
                    resume=args.resume,
                    progress=progress,
                    on_event=lambda line: print(line, file=sys.stderr),
                )
            except FabricDegradedError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 3
        else:
            result = StreamEngine(config).run(
                resume=args.resume, progress=progress
            )
    except KeyboardInterrupt:
        if checkpoint:
            print(f"interrupted; checkpoint saved to {checkpoint}",
                  file=sys.stderr)
        else:
            print("interrupted (no checkpoint configured)", file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous)
        if trace_dir:
            from repro.telemetry import disable_tracing

            disable_tracing()
            print(
                f"trace: events in {trace_dir}; view with "
                f"python -m repro trace-view {trace_dir}",
                file=sys.stderr,
            )
    print(result.report)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(result.report + "\n", encoding="utf-8")
    if telemetry_dir:
        from repro.telemetry import RunManifest, registry, write_exports

        reg = registry()
        reg.gauge(
            "repro_passive_services_inferred",
            "Service endpoints the passive table discovered.",
        ).set(len(result.table.endpoints()))
        reg.gauge(
            "repro_passive_server_addresses",
            "Addresses with at least one passively discovered service.",
        ).set(len(result.table.server_addresses()))
        manifest = RunManifest.collect(
            command="stream",
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
            faults=plan,
            arguments={
                "shards": shards,
                "fabric": fabric_mode,
                "emit_every_hours": args.emit_every,
                "checkpoint_every_hours": args.checkpoint_every,
                "resumed": result.resumed,
            },
        )
        written = write_exports(telemetry_dir, reg, manifest)
        print(
            "telemetry: wrote " + ", ".join(str(path) for path in written),
            file=sys.stderr,
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.query.serve import run_serve
    from repro.simkernel.clock import hours
    from repro.stream import StreamConfig

    plan = None
    if args.loss_rate or args.burst_loss_rate or args.outage_fraction:
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(
            seed=args.fault_seed,
            capture_loss_rate=args.loss_rate,
            burst_loss_rate=args.burst_loss_rate,
            outage_fraction=args.outage_fraction,
            outage_count=args.outage_count,
        )
    fabric_mode = bool(args.fabric or args.workers is not None)
    shards = args.workers if args.workers is not None else args.shards
    config = StreamConfig(
        dataset=args.dataset,
        seed=args.seed,
        scale=args.scale,
        shards=shards,
        batch_records=args.batch_records,
        emit_every=hours(args.emit_every) if args.emit_every else None,
        checkpoint_every=(
            hours(args.checkpoint_every) if args.checkpoint_every else None
        ),
        checkpoint_path=args.checkpoint,
        snapshot_every=hours(args.snapshot_every),
        faults=plan,
        probe_policy=args.probe_policy,
        probe_rate=args.probe_rate,
        probe_ports=tuple(args.probe_ports) if args.probe_ports else None,
    )
    fabric_config = None
    if fabric_mode:
        from repro.stream import FabricConfig

        fabric_config = FabricConfig(
            heartbeat_interval=args.heartbeat_interval,
            miss_budget=args.miss_budget,
            max_restarts=args.max_restarts,
        )
    return run_serve(
        config,
        host=args.host,
        port=args.port,
        fabric=fabric_config,
        telemetry_dir=getattr(args, "telemetry", None),
        trace_dir=getattr(args, "trace", None),
    )


def cmd_checkpoint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.stream import ShardCheckpointStore

    if args.checkpoint_command != "prune":  # pragma: no cover - argparse gates
        raise SystemExit(f"unknown checkpoint command {args.checkpoint_command!r}")
    if args.keep < 1:
        # Keeping zero generations would leave nothing to resume from;
        # refuse rather than let the store constructor traceback.
        print(
            f"error: --keep must be >= 1 (got {args.keep}); a prune always "
            f"retains the newest committed generation",
            file=sys.stderr,
        )
        return 2
    root = Path(args.directory)
    if not root.is_dir():
        print(f"checkpoint store {root} does not exist", file=sys.stderr)
        return 1
    store = ShardCheckpointStore(root, keep_generations=args.keep)
    generations = store.generations()
    if not generations:
        print(f"no committed generations under {root}; nothing to prune")
        return 0
    before = {entry.name for entry in root.iterdir()}
    store.prune(generations[0])
    removed = sorted(before - {entry.name for entry in root.iterdir()})
    kept = store.generations()
    print(
        f"kept {len(kept)} generation(s) (newest {kept[0]}), "
        f"removed {len(removed)} file(s)"
    )
    for name in removed:
        print(f"  removed {name}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from repro.datasets import build_dataset
    from repro.simkernel.clock import days
    from repro.trace.anonymize import Anonymizer
    from repro.trace.columnar import ColumnarTraceWriter
    from repro.trace.format import TraceWriter

    dataset = build_dataset(args.dataset, seed=args.seed, scale=args.scale)
    end = days(args.days) if args.days is not None else None
    anonymizer = (
        Anonymizer(key=args.anonymize_key)
        if args.anonymize_key is not None
        else None
    )
    writer_cls = TraceWriter if args.format_version == 1 else ColumnarTraceWriter
    with writer_cls.open(args.out) as writer:
        for record in dataset.packet_stream(end=end):
            if anonymizer is not None:
                record = anonymizer.anonymize(record)
            writer.write(record)
        count = writer.records_written
    suffix = " (anonymised)" if anonymizer else ""
    print(f"wrote {count:,} records to {args.out}{suffix}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.columnar import DEFAULT_CHUNK_RECORDS, convert_trace
    from repro.trace.format import trace_version

    if args.trace_command != "convert":  # pragma: no cover - argparse gates
        raise SystemExit(f"unknown trace command {args.trace_command!r}")
    source_version = trace_version(args.source)
    chunk_records = (
        args.chunk_records
        if args.chunk_records is not None
        else DEFAULT_CHUNK_RECORDS
    )
    count = convert_trace(
        args.source, args.destination,
        to_version=args.to_version, chunk_records=chunk_records,
    )
    print(
        f"converted {count:,} records: {args.source} (v{source_version}) "
        f"-> {args.destination} (v{args.to_version})"
    )
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.net.addr import format_ipv4, parse_cidr
    from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
    from repro.trace.format import TraceReader

    network, prefix = parse_cidr(args.campus)
    mask = ~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF

    def is_campus(address: int) -> bool:
        return (address & mask) == network

    proto_names = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
    protocols: dict[str, int] = {}
    flags: dict[str, int] = {}
    links: dict[str, int] = {}
    responders: dict[int, int] = {}
    first = last = None
    total = 0
    with TraceReader.open(args.file) as reader:
        for record in reader:
            total += 1
            first = record.time if first is None else min(first, record.time)
            last = record.time if last is None else max(last, record.time)
            proto = proto_names.get(record.proto, str(record.proto))
            protocols[proto] = protocols.get(proto, 0) + 1
            link = record.link or "unknown"
            links[link] = links.get(link, 0) + 1
            if record.proto == PROTO_TCP:
                if record.flags.is_synack:
                    flags["syn-ack"] = flags.get("syn-ack", 0) + 1
                    if is_campus(record.src):
                        responders[record.src] = responders.get(record.src, 0) + 1
                elif record.flags.is_syn:
                    flags["syn"] = flags.get("syn", 0) + 1
                elif record.flags.is_rst:
                    flags["rst"] = flags.get("rst", 0) + 1
                else:
                    flags["other"] = flags.get("other", 0) + 1
    table = TextTable(
        title=f"Trace {args.file}: {total:,} records",
        headers=["Measure", "Value"],
    )
    if first is not None:
        table.add_row("time span", f"{first:.1f}s .. {last:.1f}s "
                                   f"({(last - first) / 3600:.1f} h)")
    for label, cell in count_rows(protocols, label_prefix="protocol "):
        table.add_row(label, cell)
    for label, cell in count_rows(flags, label_prefix="tcp "):
        table.add_row(label, cell)
    for label, cell in count_rows(links, label_prefix="link "):
        table.add_row(label, cell)
    print(table.render())
    if responders:
        top = TextTable(
            title="Top campus responders (SYN-ACK senders)",
            headers=["Address", "SYN-ACKs"],
        )
        ranked = sorted(responders.items(), key=lambda item: (-item[1], item[0]))
        for address, count in ranked[: args.top]:
            top.add_row(format_ipv4(address), format_count(count))
        print()
        print(top.render())
    return 0


def cmd_trace_view(args: argparse.Namespace) -> int:
    from repro.telemetry import load_events, summarize, write_chrome_trace

    events = load_events(args.directory)
    if not events:
        print(f"no trace events under {args.directory}", file=sys.stderr)
        return 1
    print(summarize(events))
    path, count = write_chrome_trace(args.directory, out=args.out)
    print(f"chrome trace: {count} events -> {path}", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.trace.cache import ENV_VAR, default_trace_cache

    cache = default_trace_cache()
    if not cache.enabled:
        print(f"trace cache disabled ({ENV_VAR}={os.environ.get(ENV_VAR)})")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached trace(s) from {cache.root}")
        return 0
    entries = cache.entries()
    table = TextTable(
        title=f"Trace cache {cache.root}: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}",
        headers=["Trace", "Size"],
    )
    total = 0
    for path in entries:
        size = path.stat().st_size
        total += size
        table.add_row(path.name, f"{size / 1e6:,.1f} MB")
    table.add_row("total", f"{total / 1e6:,.1f} MB")
    print(table.render())
    persisted = cache.persistent_stats()
    lookups = persisted.get("hits", 0) + persisted.get("misses", 0)
    if lookups:
        effectiveness = TextTable(
            title="Cache effectiveness (all runs)",
            headers=["Measure", "Value"],
        )
        effectiveness.add_row("lookups", format_count(lookups))
        effectiveness.add_row("hits", format_count(persisted.get("hits", 0)))
        effectiveness.add_row("misses", format_count(persisted.get("misses", 0)))
        effectiveness.add_row(
            "corrupt evictions", format_count(persisted.get("evictions", 0))
        )
        effectiveness.add_row(
            "hit rate",
            format_percent(100.0 * persisted.get("hits", 0) / lookups),
        )
        print()
        print(effectiveness.render())
    return 0


def _stats_links(args: argparse.Namespace) -> int:
    """Aggregate link/protocol counters across a directory of exports.

    The per-link dashboard: ``DIR`` may itself be one ``--telemetry``
    export or a directory of them (one per sweep point, as the
    monitor-outage sweeps produce); every export found is summed into
    one link-mix table.
    """
    from pathlib import Path

    from repro.telemetry import load_run

    root = Path(args.directory)
    if not root.is_dir():
        print(f"telemetry directory {root} does not exist", file=sys.stderr)
        return 1
    run_dirs = [root] + sorted(path for path in root.iterdir() if path.is_dir())
    links: dict[str, float] = {}
    protocols: dict[str, float] = {}
    drops: dict[str, float] = {}
    runs = 0
    for directory in run_dirs:
        manifest, records = load_run(directory)
        if manifest is None and not records:
            continue
        runs += 1
        for record in records:
            if record.get("type") != "counter":
                continue
            name = record.get("name")
            labels = record.get("labels", {})
            value = record.get("value", 0)
            if name == "repro_passive_link_records_total":
                link = labels.get("link", "unknown")
                links[link] = links.get(link, 0) + value
            elif name == "repro_passive_protocol_records_total":
                proto = labels.get("proto", "unknown")
                protocols[proto] = protocols.get(proto, 0) + value
            elif name == "repro_passive_dropped_total":
                cause = labels.get("cause", "unknown")
                drops[cause] = drops.get(cause, 0) + value
    if not links:
        print(f"no per-link telemetry found under {root} "
              f"({runs} export(s) scanned)", file=sys.stderr)
        return 1
    total = sum(links.values())
    table = TextTable(
        title=f"Link mix: {runs} run(s), {int(total):,} records ({root})",
        headers=["Link", "Records"],
    )
    ranked = sorted(links.items(), key=lambda item: (-item[1], item[0]))
    for link, count in ranked:
        table.add_row(link, format_count_pct(int(count), 100.0 * count / total))
    print(table.render())
    if protocols:
        proto_table = TextTable(
            title="Protocol mix", headers=["Protocol", "Records"],
        )
        proto_total = sum(protocols.values())
        for proto, count in sorted(
            protocols.items(), key=lambda item: (-item[1], item[0])
        ):
            proto_table.add_row(
                proto, format_count_pct(int(count), 100.0 * count / proto_total)
            )
        print()
        print(proto_table.render())
    if drops:
        drop_table = TextTable(
            title="Capture drops", headers=["Cause", "Records"],
        )
        seen = total + sum(drops.values())
        for cause, count in sorted(
            drops.items(), key=lambda item: (-item[1], item[0])
        ):
            drop_table.add_row(
                cause, format_count_pct(int(count), 100.0 * count / seen)
            )
        print()
        print(drop_table.render())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.telemetry import load_run

    if getattr(args, "links", False):
        return _stats_links(args)
    manifest, records = load_run(args.directory)
    if manifest is None and not records:
        if not Path(args.directory).is_dir():
            print(f"telemetry directory {args.directory} does not exist",
                  file=sys.stderr)
        else:
            print(f"telemetry directory {args.directory} exists but "
                  f"contains no exports", file=sys.stderr)
        return 1
    if args.require is not None and not records:
        # --require is the CI gate: a manifest with no metric records
        # means the instrumented run exported nothing measurable.
        print(f"telemetry export in {args.directory} has no metric records",
              file=sys.stderr)
        return 1
    if manifest is not None:
        payload = manifest.get("manifest", {})
        info = TextTable(
            title=f"Run manifest ({args.directory})",
            headers=["Field", "Value"],
        )
        for key in ("command", "dataset", "seed", "scale", "fault_digest",
                    "git_sha", "python_version", "repro_version", "platform"):
            value = payload.get(key)
            if value is not None:
                info.add_row(key, value)
        print(info.render())
        print()

    def label_suffix(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + inner + "}"

    scalars: dict[str, float] = {}
    totals: dict[str, float] = {}
    histograms = []
    spans = []
    process_spans = []
    for record in records:
        kind = record.get("type")
        name = record.get("name", "")
        if kind in ("counter", "gauge"):
            scalars[name + label_suffix(record.get("labels", {}))] = (
                record.get("value", 0)
            )
            totals[name] = totals.get(name, 0) + record.get("value", 0)
        elif kind == "histogram":
            histograms.append(record)
            totals[name] = totals.get(name, 0) + record.get("count", 0)
        elif kind == "span":
            # Per-process span records (fabric worker attribution) are
            # already folded into the merged aggregates; keep them out
            # of the default view so nothing double-counts.
            if "process" in record:
                process_spans.append(record)
            else:
                spans.append(record)
    if scalars:
        table = TextTable(
            title=f"Metrics: {len(scalars)} series",
            headers=["Metric", "Value"],
        )
        for label, cell in count_rows(scalars):
            table.add_row(label, cell)
        print(table.render())
    if histograms:
        table = TextTable(
            title="Histograms",
            headers=["Metric", "Count", "Mean", "Sum"],
        )
        for record in histograms:
            table.add_row(
                record["name"] + label_suffix(record.get("labels", {})),
                format_count(record.get("count", 0)),
                f"{record.get('mean', 0):.6g}",
                f"{record.get('sum', 0):.6g}",
            )
        print()
        print(table.render())
    if spans:
        table = TextTable(
            title="Spans",
            headers=["Span", "Count", "Wall s", "CPU s"],
        )
        for record in spans:
            table.add_row(
                record.get("name", ""),
                format_count(record.get("count", 0)),
                f"{record.get('wall_seconds', 0):.3f}",
                f"{record.get('cpu_seconds', 0):.3f}",
            )
        print()
        print(table.render())
    if getattr(args, "per_process", False):
        # Render the table even when no span carries a process label
        # (e.g. a threaded-engine export): an explicit empty table, not
        # silence and never a traceback.
        table = TextTable(
            title="Spans by process",
            headers=["Process", "Span", "Count", "Wall s", "CPU s"],
        )
        for record in sorted(
            process_spans,
            key=lambda item: (
                item.get("process") or "", item.get("name") or ""
            ),
        ):
            table.add_row(
                record.get("process") or "",
                record.get("name") or "",
                format_count(record.get("count", 0)),
                f"{record.get('wall_seconds', 0):.3f}",
                f"{record.get('cpu_seconds', 0):.3f}",
            )
        print()
        print(table.render())
    missing = [name for name in (args.require or [])
               if totals.get(name, 0) <= 0]
    if missing:
        print("missing or zero metrics: " + ", ".join(missing),
              file=sys.stderr)
        return 1
    return 0


def cmd_degradation(args: argparse.Namespace) -> int:
    from repro.experiments.degradation import run_from_args

    return run_from_args(args)


def cmd_online_probing(args: argparse.Namespace) -> int:
    from repro.experiments.online_probing import run_from_args

    return run_from_args(args)


def _add_probe_arguments(parser: argparse.ArgumentParser) -> None:
    """Online-probing flags shared by ``stream`` and ``serve``."""
    from repro.probe import POLICY_NAMES

    parser.add_argument(
        "--probe-policy", choices=POLICY_NAMES, default=None,
        help="run the active side online: dispatch seeded probes "
             "inside the event loop under this policy instead of "
             "reading build-time scan reports",
    )
    parser.add_argument(
        "--probe-rate", type=float, default=1.0, metavar="PPS",
        help="probes per simulated second for the online prober "
             "(default 1.0; 0 disables dispatch entirely)",
    )
    parser.add_argument(
        "--probe-ports", type=int, nargs="+", default=None, metavar="PORT",
        help="ports each target is probed on (default: the dataset's "
             "configured service ports; required for tcp-all datasets)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the paper's datasets")

    survey = commands.add_parser("survey", help="run both discovery methods")
    survey.add_argument("dataset")
    survey.add_argument("--scale", type=float, default=0.1)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="collect metrics/spans and export a run manifest, "
             "Prometheus text and JSONL into DIR",
    )

    stream = commands.add_parser(
        "stream", help="run the online streaming discovery engine"
    )
    stream.add_argument("dataset")
    stream.add_argument("--scale", type=float, default=0.1)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--shards", type=int, default=2,
                        help="partition the stream across N shard workers")
    stream.add_argument(
        "--fabric", action="store_true",
        help="run shards as supervised worker processes (the "
             "distributed fabric) instead of in-process threads",
    )
    stream.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker process count for the fabric (implies --fabric; "
             "overrides --shards)",
    )
    stream.add_argument("--heartbeat-interval", type=float, default=0.25,
                        metavar="SECONDS",
                        help="fabric worker heartbeat cadence")
    stream.add_argument("--miss-budget", type=int, default=8,
                        help="heartbeats a fabric worker may miss before "
                             "it is declared dead")
    stream.add_argument("--max-restarts", type=int, default=3,
                        help="restarts per shard before the fabric fails "
                             "the run as degraded")
    stream.add_argument("--worker-crash-rate", type=float, default=0.0,
                        help="chaos: probability a worker incarnation "
                             "crashes at a seeded record count")
    stream.add_argument("--worker-stall-rate", type=float, default=0.0,
                        help="chaos: probability a worker incarnation "
                             "stalls (stops consuming and beating)")
    stream.add_argument("--worker-heartbeat-drop-rate", type=float,
                        default=0.0,
                        help="chaos: probability a worker incarnation "
                             "silently drops a run of heartbeats")
    stream.add_argument("--worker-fault-seed", type=int, default=0)
    stream.add_argument(
        "--emit-every", type=float, default=None, metavar="H",
        help="emit a windowed-completeness watermark every H sim-hours",
    )
    stream.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="H",
        help="write an atomic state checkpoint every H sim-hours",
    )
    stream.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file (threaded) or per-shard store directory "
             "(fabric); default derived from --out or the dataset",
    )
    stream.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint file if present")
    stream.add_argument("--batch-records", type=int, default=8192)
    stream.add_argument("--queue-chunks", type=int, default=8,
                        help="bound on queued batches per shard (backpressure)")
    stream.add_argument("--loss-rate", type=float, default=0.0,
                        help="i.i.d. capture loss rate")
    stream.add_argument("--burst-loss-rate", type=float, default=0.0)
    stream.add_argument("--outage-fraction", type=float, default=0.0,
                        help="fraction of the observation each link's "
                             "monitor is down")
    stream.add_argument("--outage-count", type=int, default=1)
    stream.add_argument("--fault-seed", type=int, default=0)
    stream.add_argument("--out", default=None,
                        help="also write the final report to this file")
    stream.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="collect metrics/spans and export a run manifest, "
             "Prometheus text and JSONL into DIR",
    )
    stream.add_argument(
        "--trace", default=None, metavar="DIR",
        help="record causally linked trace events (and crash flight-"
             "recorder dumps) into DIR; view with trace-view",
    )
    _add_probe_arguments(stream)

    serve = commands.add_parser(
        "serve", help="serve live discovery state over HTTP while ingesting"
    )
    serve.add_argument("dataset")
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks an ephemeral port, "
                            "announced on stderr)")
    serve.add_argument("--shards", type=int, default=2,
                       help="partition ingest across N shard workers")
    serve.add_argument(
        "--fabric", action="store_true",
        help="run shards as supervised worker processes (the "
             "distributed fabric) instead of in-process threads",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker process count for the fabric (implies --fabric; "
             "overrides --shards)",
    )
    serve.add_argument("--heartbeat-interval", type=float, default=0.25,
                       metavar="SECONDS")
    serve.add_argument("--miss-budget", type=int, default=8)
    serve.add_argument("--max-restarts", type=int, default=3)
    serve.add_argument(
        "--snapshot-every", type=float, default=1.0, metavar="H",
        help="publish a query snapshot every H sim-hours (default 1.0)",
    )
    serve.add_argument(
        "--emit-every", type=float, default=None, metavar="H",
        help="emit a windowed-completeness watermark every H sim-hours",
    )
    serve.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="H",
        help="write an atomic state checkpoint every H sim-hours",
    )
    serve.add_argument("--checkpoint", default=None, metavar="PATH")
    serve.add_argument("--batch-records", type=int, default=8192)
    serve.add_argument("--loss-rate", type=float, default=0.0,
                       help="i.i.d. capture loss rate")
    serve.add_argument("--burst-loss-rate", type=float, default=0.0)
    serve.add_argument("--outage-fraction", type=float, default=0.0)
    serve.add_argument("--outage-count", type=int, default=1)
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="export collected metrics into DIR on shutdown",
    )
    serve.add_argument(
        "--trace", default=None, metavar="DIR",
        help="record causally linked trace events into DIR; serves "
             "/tracez and flight-recorder state on /healthz",
    )
    _add_probe_arguments(serve)

    checkpoint = commands.add_parser(
        "checkpoint", help="checkpoint-store utilities"
    )
    checkpoint_commands = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    prune = checkpoint_commands.add_parser(
        "prune",
        help="drop generations older than the newest --keep N from a "
             "fabric checkpoint store",
    )
    prune.add_argument("directory")
    prune.add_argument("--keep", type=int, default=2, metavar="N",
                       help="committed generations to retain (default 2)")

    record = commands.add_parser("record", help="record a border trace")
    record.add_argument("dataset")
    record.add_argument("out")
    record.add_argument("--scale", type=float, default=0.1)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--days", type=float, default=None,
                        help="record only the first N days")
    record.add_argument("--anonymize-key", type=int, default=None,
                        help="anonymise addresses with this key")
    record.add_argument(
        "--format", type=int, choices=(1, 2), default=2, dest="format_version",
        help="trace format version to write (2 = columnar, the default)",
    )

    stats = commands.add_parser("trace-stats", help="summarise a trace file")
    stats.add_argument("file")
    stats.add_argument("--campus", default="128.125.0.0/16")
    stats.add_argument("--top", type=int, default=10)

    trace_view = commands.add_parser(
        "trace-view",
        help="merge a --trace directory into one Chrome-trace timeline",
    )
    trace_view.add_argument("directory")
    trace_view.add_argument(
        "--out", default=None, metavar="PATH",
        help="Chrome trace JSON output path (default DIR/trace.json)",
    )

    trace = commands.add_parser(
        "trace", help="trace-file utilities (convert between formats)"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    convert = trace_commands.add_parser(
        "convert",
        help="convert a trace between v1 (row) and v2 (columnar) formats",
    )
    convert.add_argument("source")
    convert.add_argument("destination")
    convert.add_argument(
        "--to", type=int, choices=(1, 2), default=2, dest="to_version",
        help="target format version (default: 2, the columnar format)",
    )
    convert.add_argument(
        "--chunk-records", type=int, default=None,
        help="records per v2 chunk (default %d)" % 65536,
    )

    cache = commands.add_parser("cache", help="show the record-once trace cache")
    cache.add_argument("--clear", action="store_true",
                       help="remove every cached trace")

    run_stats = commands.add_parser(
        "stats", help="read back a --telemetry export directory"
    )
    run_stats.add_argument("directory")
    run_stats.add_argument(
        "--require", nargs="*", default=None, metavar="METRIC",
        help="exit non-zero unless each named metric is present "
             "and non-zero (summed across its label sets)",
    )
    run_stats.add_argument(
        "--links", action="store_true",
        help="aggregate per-link and per-protocol counters across a "
             "directory of telemetry exports into one link-mix table",
    )
    run_stats.add_argument(
        "--per-process", action="store_true", dest="per_process",
        help="also show span aggregates attributed to each fabric "
             "worker process",
    )

    from repro.experiments.degradation import configure_parser

    degradation = commands.add_parser(
        "degradation",
        help="sweep fault plans against passive/active completeness",
    )
    configure_parser(degradation)

    from repro.experiments.online_probing import (
        configure_parser as configure_online_probing,
    )

    online_probing = commands.add_parser(
        "online_probing",
        help="compare heartbeat/periodic online probing against the "
             "passive stream across probe budgets",
    )
    configure_online_probing(online_probing)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "survey": cmd_survey,
        "stream": cmd_stream,
        "serve": cmd_serve,
        "checkpoint": cmd_checkpoint,
        "record": cmd_record,
        "trace-stats": cmd_trace_stats,
        "trace-view": cmd_trace_view,
        "trace": cmd_trace,
        "cache": cmd_cache,
        "stats": cmd_stats,
        "degradation": cmd_degradation,
        "online_probing": cmd_online_probing,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
