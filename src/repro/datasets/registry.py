"""The dataset registry (paper Table 1).

Each :class:`DatasetSpec` mirrors one row of Table 1.  Two of the
paper's rows -- DTCP1-12h and DTCP1-18d-trans -- are *analysis subsets*
of DTCP1-18d (the first 12 hours; the transient address blocks); they
are declared here with a ``subset_of`` pointer and realised by the
experiments, not by separate simulation runs.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.simkernel.clock import days, hours


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table 1.

    Attributes
    ----------
    name:
        Dataset name as the paper spells it (``DTCP1-18d`` etc.).
    start_date:
        Wall-clock start.
    passive_seconds:
        Length of the passive observation.
    scan_interval_hours:
        Hours between active scans; None means a single scan, 0 means
        no scans at all.
    scan_count:
        Expected number of scans (informational, from Table 1).
    ports:
        ``"tcp-selected"``, ``"udp-selected"`` or ``"tcp-all"``.
    profile:
        Population profile: ``semester``, ``break``, ``dudp``,
        ``allports``.
    address_count:
        Paper's Table 1 address count (informational).
    section:
        Paper section the dataset is discussed in.
    subset_of:
        Name of the parent dataset when this row is an analysis subset.
    monitored_links:
        The peering links whose taps feed the passive analysis.
    academic_fraction:
        Share of legitimate clients routed via Internet2.
    """

    name: str
    start_date: _dt.datetime
    passive_seconds: float
    scan_interval_hours: float | None
    scan_count: int
    ports: str
    profile: str
    address_count: int
    section: str
    subset_of: str | None = None
    monitored_links: tuple[str, ...] = ("commercial1", "commercial2")
    academic_fraction: float = 0.04
    #: Active scans only occur inside this window (seconds from start);
    #: None means the whole passive duration.  DTCP1 has 90 days of
    #: passive data but active measurements for only its first 18 days.
    scan_window_seconds: float | None = None


def registry() -> dict[str, DatasetSpec]:
    """All dataset specs, keyed by name."""
    specs = [
        DatasetSpec(
            name="DTCP1",
            start_date=_dt.datetime(2006, 8, 10, 10, 0),
            passive_seconds=days(90),
            scan_interval_hours=12,
            scan_count=35,
            ports="tcp-selected",
            profile="semester",
            address_count=16_130,
            section="4.4.2",
            scan_window_seconds=days(18),
        ),
        DatasetSpec(
            name="DTCP1-90d",
            start_date=_dt.datetime(2006, 8, 10, 10, 0),
            passive_seconds=days(90),
            scan_interval_hours=0,
            scan_count=0,
            ports="tcp-selected",
            profile="semester",
            address_count=16_130,
            section="4.2.2",
        ),
        DatasetSpec(
            name="DTCP1-18d",
            start_date=_dt.datetime(2006, 9, 19, 10, 0),
            passive_seconds=days(18),
            scan_interval_hours=12,
            scan_count=35,
            ports="tcp-selected",
            profile="semester",
            address_count=16_130,
            section="4",
        ),
        DatasetSpec(
            name="DTCP1-12h",
            start_date=_dt.datetime(2006, 9, 19, 10, 0),
            passive_seconds=hours(12),
            scan_interval_hours=None,
            scan_count=1,
            ports="tcp-selected",
            profile="semester",
            address_count=16_130,
            section="4",
            subset_of="DTCP1-18d",
        ),
        DatasetSpec(
            name="DTCP1-18d-trans",
            start_date=_dt.datetime(2006, 9, 19, 10, 0),
            passive_seconds=days(18),
            scan_interval_hours=12,
            scan_count=35,
            ports="tcp-selected",
            profile="semester",
            address_count=2_296,
            section="4.4.2",
            subset_of="DTCP1-18d",
        ),
        DatasetSpec(
            name="DTCPbreak",
            start_date=_dt.datetime(2006, 12, 16, 10, 0),
            passive_seconds=days(11),
            scan_interval_hours=12,
            scan_count=22,
            ports="tcp-selected",
            profile="break",
            address_count=16_130,
            section="5.2, 5.5",
            monitored_links=("commercial1", "commercial2", "internet2"),
            academic_fraction=0.55,
        ),
        DatasetSpec(
            name="DTCPall",
            start_date=_dt.datetime(2006, 8, 26, 10, 0),
            passive_seconds=days(10),
            scan_interval_hours=None,
            scan_count=1,
            ports="tcp-all",
            profile="allports",
            address_count=256,
            section="5.4",
        ),
        DatasetSpec(
            name="DUDP",
            start_date=_dt.datetime(2006, 10, 18, 10, 0),
            passive_seconds=days(1),
            scan_interval_hours=None,
            scan_count=1,
            ports="udp-selected",
            profile="dudp",
            address_count=16_130,
            section="4.5",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Convenience aliases accepted anywhere a dataset name is: ``usc`` is
#: the paper's main campus observation (USC's /16, the DTCP1-18d row).
ALIASES = {"usc": "DTCP1-18d"}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset by name (or a convenience alias).

    Raises
    ------
    KeyError
        With the list of valid names, when *name* is unknown.
    """
    specs = registry()
    name = ALIASES.get(name, name)
    if name not in specs:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(specs)}")
    return specs[name]


def dataset_table_rows() -> list[list[str]]:
    """Rows of the paper's Table 1, rendered from the registry."""
    rows = []
    for spec in registry().values():
        if spec.scan_interval_hours is None:
            scans = "once"
        elif spec.scan_interval_hours == 0:
            scans = "-"
        else:
            scans = f"every {spec.scan_interval_hours:g} hrs"
        duration_days = spec.passive_seconds / days(1)
        duration = (
            f"{duration_days:g} days"
            if duration_days >= 1
            else f"{spec.passive_seconds / hours(1):g} hours"
        )
        rows.append(
            [
                spec.name,
                spec.start_date.strftime("%d %b. %Y"),
                duration,
                scans,
                spec.ports,
                f"{spec.address_count:,}",
                spec.section,
            ]
        )
    return rows
