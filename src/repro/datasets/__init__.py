"""Dataset registry and builder.

The paper's Table 1 lists eight datasets; :mod:`repro.datasets.registry`
declares them and :mod:`repro.datasets.builder` materialises any of
them as a :class:`~repro.datasets.builder.BuiltDataset`: a synthesised
population, a replayable border-packet stream, and the active scan
reports taken on the paper's schedule.

Builds are pure functions of ``(spec, seed, scale)``; tests use small
scales, the experiment runner uses ``scale=1.0``.
"""

from repro.datasets.builder import BuiltDataset, build_dataset
from repro.datasets.registry import DatasetSpec, dataset_table_rows, get_spec, registry

__all__ = [
    "BuiltDataset",
    "DatasetSpec",
    "build_dataset",
    "dataset_table_rows",
    "get_spec",
    "registry",
]
