"""Materialising datasets.

:func:`build_dataset` runs the whole production pipeline for one
registry entry: synthesise the population, realise the external scan
plan, take the active scans on the paper's 11:00/23:00 schedule, and
wrap the border traffic in a replayable stream.

Active scanning happens at build time (its results are part of the
dataset, as the paper's Nmap logs were); passive analysis happens at
replay time so any number of observers can share one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Iterator

from repro.active.prober import HalfOpenScanner, ScannerConfig
from repro.active.results import ScanReport, UdpScanReport
from repro.active.schedule import scan_start_times
from repro.active.udp_scan import GenericUdpProber
from repro.campus.population import (
    CampusPopulation,
    attach_udp_population,
    synthesize_allports_population,
    synthesize_population,
)
from repro.campus.profiles import (
    allports_profile,
    break_profile,
    dudp_profile,
    semester_profile,
)
from repro.datasets.registry import DatasetSpec, get_spec
from repro.net.addr import AddressClass
from repro.net.packet import PacketRecord
from repro.net.ports import SELECTED_TCP_PORTS, SELECTED_UDP_PORTS
from repro.simkernel.clock import Calendar, hours
from repro.simkernel.rng import RngStreams, derive_seed
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.trace.cache import default_trace_cache
from repro.trace.columnar import ColumnarTraceWriter, read_trace_columns
from repro.trace.format import read_records_chunked
from repro.traffic.generator import (
    GENERATOR_VERSION,
    TrafficMix,
    border_packet_stream,
    default_diurnal,
)
from repro.traffic.scans import build_scan_plan

#: Sweep length of one full active scan; the paper reports 90-120
#: minutes for the large datasets.
SCAN_SWEEP_SECONDS = hours(1.75)


@dataclass
class BuiltDataset:
    """A fully materialised dataset.

    Attributes
    ----------
    spec:
        The registry entry this build realises.
    population:
        The synthesised campus (ground truth; analyses must not peek).
    calendar:
        Maps dataset seconds to wall-clock time.
    mix:
        Border-traffic composition (scan plan, diurnal, noise).
    traffic_seed:
        Seed of the replayable packet stream.
    scan_reports:
        Active TCP scans, in schedule order.
    udp_report:
        The generic UDP sweep (DUDP only).
    scale:
        Population scale the build used (1.0 = the paper's counts).
    """

    spec: DatasetSpec
    population: CampusPopulation
    calendar: Calendar
    mix: TrafficMix
    traffic_seed: int
    scan_reports: list[ScanReport] = field(default_factory=list)
    udp_report: UdpScanReport | None = None
    scale: float = 1.0
    #: Master seed the build derived everything from (trace-cache key).
    seed: int = 0
    #: Fault plan the build was taken under (None = perfect observer).
    #: Active scans degrade at build time; passive capture loss is
    #: applied per replay via the ``faults=`` parameter.  The border
    #: *traffic* is never faulted -- faults model the measurement, not
    #: the network -- so the trace cache always stores ground truth.
    faults: "object | None" = None

    @property
    def duration(self) -> float:
        return self.spec.passive_seconds

    @property
    def tcp_ports(self) -> frozenset[int] | None:
        """Watched TCP ports; None means all (the DTCPall study)."""
        if self.spec.ports == "tcp-selected":
            return frozenset(SELECTED_TCP_PORTS)
        if self.spec.ports == "tcp-all":
            return None
        return frozenset()

    @property
    def udp_ports(self) -> frozenset[int]:
        if self.spec.ports == "udp-selected":
            return frozenset(SELECTED_UDP_PORTS)
        return frozenset()

    @cached_property
    def is_campus(self) -> Callable[[int], bool]:
        """Campus-membership predicate (``dataset.is_campus(addr)``).

        A cached closure rather than a bound method: observers call it
        up to three times per captured record, so the prefix match is
        bound into locals once instead of walking
        ``population.topology`` per call.
        """
        return self.population.topology.campus_predicate()

    @property
    def trace_cache_key(self) -> tuple[str, int, str, int]:
        """Content address of this build's border trace.

        ``(name, seed, scale, generator version)`` -- everything the
        generated stream is a pure function of.  The scale is keyed by
        ``repr`` so 0.1 and 0.10 alias but distinct floats never do.
        """
        return (self.spec.name, self.seed, repr(self.scale), GENERATOR_VERSION)

    def _generate_stream(self, end: float | None = None) -> Iterator[PacketRecord]:
        """Regenerate the border capture from the traffic model."""
        return border_packet_stream(
            self.population,
            self.mix,
            seed=self.traffic_seed,
            start=0.0,
            end=self.duration if end is None else end,
        )

    def _full_pass(self, end: float | None) -> bool:
        return end is None or end >= self.duration

    def packet_stream(self, end: float | None = None) -> Iterator[PacketRecord]:
        """One pass over the border capture (deterministic).

        Full-duration passes are served from the record-once trace
        cache when a recording exists; partial passes and cache misses
        regenerate the stream.  Either way the records are identical.
        """
        if self._full_pass(end):
            cached = default_trace_cache().lookup(self.trace_cache_key)
            if cached is not None:
                return (
                    record
                    for batch in read_records_chunked(cached)
                    for record in batch
                )
        return self._generate_stream(end)

    def replay(self, *observers, end: float | None = None, faults=None) -> int:
        """Feed one pass into *observers*; return the record count.

        Record-once/analyze-many: the first full-duration replay
        generates the traffic, spilling it through the trace writer
        into the cache while the observers consume it; every later
        full-duration replay streams the stored trace back through the
        batched reader (:func:`repro.passive.monitor.replay_batched`).
        Partial replays (``end`` before the dataset end) always
        regenerate -- truncated generation is not a prefix of the full
        stream.  Observer results are identical on every path.

        *faults* (a fresh :class:`repro.faults.capture.CaptureFilter`,
        usually ``plan.capture_filter(dataset.duration)``) drops
        records between the stored/generated stream and the observers
        -- lossy capture over ground-truth traffic.  The cache always
        records the unfaulted stream, so one recording serves every
        loss rate, and the returned count is what the observers saw.

        Cached passes are served as zero-copy column batches
        (:func:`repro.passive.monitor.replay_columnar`): observers with
        an ``observe_columns`` fast path consume the arrays directly;
        the rest receive the identical ``PacketRecord`` batches via
        the scalar fallback.
        """
        from repro.passive.monitor import replay as _replay, replay_columnar
        from time import perf_counter

        cache = default_trace_cache()
        reg = _telemetry_registry()
        tap = None
        if reg.enabled:
            # Appended after the caller's observers, the tap sees the
            # records they see (including fault drops) without changing
            # what any of them receives.
            from repro.telemetry.tap import ReplayTap

            tap = ReplayTap()
            observers = tuple(observers) + (tap,)
        started = perf_counter()
        if cache.enabled and self._full_pass(end):
            cached = cache.lookup(self.trace_cache_key)
            if cached is not None:
                source = "cached"
                count = replay_columnar(
                    read_trace_columns(cached), *observers, faults=faults
                )
            else:
                source = "recorded"
                count = self._replay_and_record(cache, observers, faults)
        else:
            source = "generated"
            count = _replay(self._generate_stream(end), *observers, faults=faults)
        elapsed = perf_counter() - started
        cache.stats.note_replay(count, elapsed)
        if tap is not None:
            tap.flush_into(reg)
            if faults is not None:
                drops = faults.stats
                reg.counter(
                    "repro_passive_dropped_total",
                    "Records the monitors failed to capture, by cause.",
                    cause="loss",
                ).inc(drops.dropped_loss)
                reg.counter(
                    "repro_passive_dropped_total",
                    "Records the monitors failed to capture, by cause.",
                    cause="outage",
                ).inc(drops.dropped_outage)
            reg.counter(
                "repro_replay_records_total",
                "Records delivered per replay pass, summed.",
            ).inc(count)
            reg.counter(
                "repro_replay_seconds_total",
                "Wall time spent inside replay passes.",
            ).inc(elapsed)
            reg.counter(
                "repro_replay_passes_total",
                "Replay passes by stream source.",
                source=source,
            ).inc()
            reg.histogram(
                "repro_replay_pass_seconds",
                "Distribution of whole-pass replay durations.",
            ).observe(elapsed)
            if elapsed > 0:
                reg.gauge(
                    "repro_replay_records_per_sec",
                    "Throughput of the most recent replay pass.",
                ).set(count / elapsed)
        return count

    def _replay_and_record(self, cache, observers, faults=None) -> int:
        """First full pass: tee the generated stream into the cache.

        The tee sits *before* the fault filter: the cache records
        ground truth, the observers see the lossy capture.  When the
        build's fault plan injects storage faults, the freshly
        committed entry may be truncated in place -- the next lookup
        then detects the damage, evicts, and regenerates, exercising
        the recovery path end to end.

        Recordings are written in the columnar v2 format; the cache
        key embeds the format version, so older v1 entries are simply
        never looked up again rather than misread.
        """
        from repro.passive.monitor import replay as _replay

        try:
            pending = cache.begin_write(self.trace_cache_key)
        except OSError:
            # Unwritable cache directory: serve the pass without recording.
            return _replay(self._generate_stream(), *observers, faults=faults)
        try:
            with ColumnarTraceWriter.open(pending.tmp_path) as writer:
                write = writer.write

                def tee() -> Iterator[PacketRecord]:
                    for record in self._generate_stream():
                        write(record)
                        yield record

                count = _replay(tee(), *observers, faults=faults)
            final = pending.commit()
        except BaseException:
            pending.abort()
            raise
        if self.faults is not None:
            self.faults.maybe_corrupt_trace(final, self.trace_cache_key)
        return count

    def scan_windows(self) -> list[tuple[float, float]]:
        """(start, end) of every active scan, in order."""
        return [(report.start, report.end) for report in self.scan_reports]

    def probe_targets(self) -> list[int]:
        """The addresses the campus scanner probes.

        The paper "was not able to actively probe the wireless address
        range"; the target list reproduces that exclusion.
        """
        space = self.population.topology.space
        return [
            address
            for address in space.addresses()
            if space.class_of(address) is not AddressClass.WIRELESS
        ]

    def transient_addresses(self) -> set[int]:
        """Addresses in transient blocks (the DTCP1-18d-trans subset)."""
        space = self.population.topology.space
        return {
            address
            for block in space.blocks
            if block.is_transient
            for address in block.addresses()
        }


def _make_profile(spec: DatasetSpec, scale: float):
    factories = {
        "semester": semester_profile,
        "break": break_profile,
        "dudp": dudp_profile,
        "allports": lambda _scale: allports_profile(),
    }
    if spec.profile not in factories:
        raise ValueError(f"unknown profile {spec.profile!r} in spec {spec.name}")
    return factories[spec.profile](scale)


def build_dataset(
    name: str, seed: int = 0, scale: float = 1.0, faults=None
) -> BuiltDataset:
    """Build the named dataset.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"DTCP1-18d"``).  Subset rows
        (DTCP1-12h, DTCP1-18d-trans) build their parent dataset; the
        experiments take the subset view.
    seed:
        Master seed; population, scan plan and traffic derive
        independent streams from it.
    scale:
        Population scale (1.0 reproduces the paper's counts).
    faults:
        Optional :class:`repro.faults.plan.FaultPlan`.  Degrades the
        *measurement* only: active scans taken at build time see probe
        loss and prober downtime, and committed trace-cache entries
        may be corrupted.  The population and border traffic are
        untouched, so a faulted build shares its trace-cache entry
        with the pristine build.  ``FaultPlan.none()`` (or ``None``)
        is byte-identical to an unfaulted build.
    """
    spec = get_spec(name)
    if faults is not None and faults.is_null:
        faults = None
    if spec.subset_of is not None:
        parent = get_spec(spec.subset_of)
        return build_dataset(parent.name, seed=seed, scale=scale, faults=faults)

    profile = _make_profile(spec, scale)
    duration = spec.passive_seconds
    population_seed = derive_seed(seed, f"population.{spec.name}")
    if spec.profile == "allports":
        population = synthesize_allports_population(population_seed, duration)
    else:
        population = synthesize_population(profile, population_seed, duration)
    if spec.ports == "udp-selected":
        attach_udp_population(
            population, derive_seed(seed, f"udp.{spec.name}"), scale=scale
        )

    calendar = Calendar(spec.start_date)
    plan_streams = RngStreams(derive_seed(seed, f"scanplan.{spec.name}"))
    scan_plan = build_scan_plan(profile.scan_climate, plan_streams, duration)
    mix = TrafficMix(
        scan_plan=scan_plan,
        diurnal=default_diurnal(calendar),
        academic_fraction=spec.academic_fraction,
        outbound_noise_flows_per_day=profile.outbound_noise_flows_per_day,
    )
    dataset = BuiltDataset(
        spec=spec,
        population=population,
        calendar=calendar,
        mix=mix,
        traffic_seed=derive_seed(seed, f"traffic.{spec.name}"),
        scale=scale,
        seed=seed,
        faults=faults,
    )
    _run_active_scans(dataset)
    return dataset


def _run_active_scans(dataset: BuiltDataset) -> None:
    """Take the dataset's active scans per its Table 1 schedule."""
    spec = dataset.spec
    if spec.ports == "udp-selected":
        prober = GenericUdpProber(dataset.population)
        dataset.udp_report = prober.scan(
            targets=dataset.probe_targets(),
            ports=list(dataset.udp_ports),
            start=hours(1),
            duration=SCAN_SWEEP_SECONDS,
        )
        return
    if spec.scan_interval_hours == 0:
        return  # passive-only dataset (DTCP1-90d)
    scanner = HalfOpenScanner(
        dataset.population, ScannerConfig(parallelism=2), faults=dataset.faults
    )
    if spec.ports == "tcp-all":
        # DTCPall: one sweep of every port, taking nearly 24 hours.
        report = scanner.scan_open_ports_of_population(
            start=hours(0.5), duration=hours(23), scan_id=0
        )
        dataset.scan_reports = [report]
        return
    scan_window = (
        spec.scan_window_seconds
        if spec.scan_window_seconds is not None
        else dataset.duration
    )
    starts = scan_start_times(dataset.calendar, 0.0, min(scan_window, dataset.duration))
    if spec.scan_interval_hours is None:
        starts = starts[:1]
    targets = dataset.probe_targets()
    ports = sorted(dataset.tcp_ports or ())
    for scan_id, start in enumerate(starts):
        dataset.scan_reports.append(
            scanner.scan(
                targets,
                ports,
                start=start,
                duration=SCAN_SWEEP_SECONDS,
                scan_id=scan_id,
            )
        )
