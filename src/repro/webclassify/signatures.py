"""The root-page signature database.

"To categorize web pages we developed a set of 185 web page signatures,
which contain sets of strings commonly found in specific types of web
pages.  For example, one of our 'default content' signatures matches 14
different strings often found in the default Apache web server page."
(paper, Section 4.4.1)

Each :class:`Signature` carries a set of candidate strings; a page
matches when at least ``min_matches`` of them occur (case-insensitive).
The database below covers the default pages of common servers and
distributions, embedded-device configuration/status pages, database
front-ends, and login-gated pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campus.webpages import PageCategory


@dataclass(frozen=True)
class Signature:
    """One signature: a named set of indicator strings for a category."""

    name: str
    category: PageCategory
    strings: tuple[str, ...]
    min_matches: int = 1

    def __post_init__(self) -> None:
        if not self.strings:
            raise ValueError(f"signature {self.name!r} has no strings")
        if not 1 <= self.min_matches <= len(self.strings):
            raise ValueError(
                f"signature {self.name!r}: min_matches out of range"
            )

    def matches(self, page_lower: str) -> bool:
        """Whether *page_lower* (lower-cased page text) matches."""
        hits = 0
        for needle in self.strings:
            if needle in page_lower:
                hits += 1
                if hits >= self.min_matches:
                    return True
        return False


def _default_signatures() -> list[Signature]:
    return [
        Signature(
            "apache-test-page",
            PageCategory.DEFAULT,
            (
                "test page for the apache",
                "it works!",
                "this page is used to test the proper operation",
                "seeing this instead of the website you expected",
                "apache http server after it has been installed",
                "the owner of this web site",
                "if you are a member of the general public",
                "the fact that this site is working",
                "apache software foundation",
                "httpd.apache.org",
                "your web server's documentation",
                "powered by apache",
                "this site is working properly",
                "webmaster should be contacted",
            ),
        ),
        Signature(
            "apache2-debian-default",
            PageCategory.DEFAULT,
            (
                "apache2 default page",
                "default welcome page used to test the correct operation",
                "apache2 server",
                "apache2.conf",
                "it is located at /var/www",
                "ubuntu systems",
                "debian systems",
            ),
        ),
        Signature(
            "iis-under-construction",
            PageCategory.DEFAULT,
            (
                "under construction",
                "does not currently have a default page",
                "windows small business server",
                "internet information services",
                "iisstart",
                "welcome to iis",
                "microsoft windows server",
            ),
        ),
        Signature(
            "distro-test-pages",
            PageCategory.DEFAULT,
            (
                "fedora core test page",
                "red hat enterprise linux test page",
                "centos test page",
                "welcome to nginx",
                "nginx web server is successfully installed",
                "lighttpd server is running",
                "thttpd default page",
                "your suse web server is up",
            ),
        ),
        Signature(
            "generic-placeholder",
            PageCategory.DEFAULT,
            (
                "this domain is parked",
                "website coming soon",
                "placeholder page",
                "default home page",
                "congratulations! your web server is working",
            ),
        ),
    ]


def _config_signatures() -> list[Signature]:
    return [
        Signature(
            "hp-jetdirect",
            PageCategory.CONFIG_STATUS,
            (
                "jetdirect",
                "hp laserjet",
                "toner level",
                "printer - device status",
                "supplies status",
                "hewlett-packard",
            ),
        ),
        Signature(
            "printer-generic",
            PageCategory.CONFIG_STATUS,
            (
                "printer status",
                "paper tray",
                "print queue",
                "xerox workcentre",
                "canon imagerunner",
                "lexmark",
                "ricoh aficio",
            ),
        ),
        Signature(
            "network-camera",
            PageCategory.CONFIG_STATUS,
            (
                "network camera",
                "axis video server",
                "live view - camera",
                "camera configuration",
                "pan/tilt",
                "mjpeg stream",
            ),
        ),
        Signature(
            "ups-power",
            PageCategory.CONFIG_STATUS,
            (
                "ups network management",
                "apc ups",
                "battery capacity",
                "ups status: on line",
                "power management card",
                "runtime remaining",
            ),
        ),
        Signature(
            "switch-router-admin",
            PageCategory.CONFIG_STATUS,
            (
                "switch administration",
                "device configuration utility",
                "vlan configuration",
                "port status",
                "cisco systems",
                "level one web management",
                "firmware version",
                "system uptime",
            ),
            min_matches=1,
        ),
        Signature(
            "embedded-misc",
            PageCategory.CONFIG_STATUS,
            (
                "device status",
                "sensor readings",
                "temperature probe",
                "environment monitor",
                "kvm over ip",
                "remote console",
            ),
        ),
    ]


def _database_signatures() -> list[Signature]:
    return [
        Signature(
            "oracle-frontend",
            PageCategory.DATABASE,
            (
                "oracle application server",
                "oracle http server",
                "isql*plus",
                "connect to your database instance",
                "oracle9i",
                "oracle enterprise manager",
            ),
        ),
        Signature(
            "phpmyadmin",
            PageCategory.DATABASE,
            (
                "phpmyadmin",
                "welcome to phpmyadmin",
                "mysql server administration",
                "please log in to the database",
                "pma_username",
            ),
        ),
        Signature(
            "db-generic",
            PageCategory.DATABASE,
            (
                "database front-end",
                "sql query interface",
                "postgresql administration",
                "pgadmin",
                "database management console",
            ),
        ),
    ]


def _restricted_signatures() -> list[Signature]:
    return [
        Signature(
            "login-form",
            PageCategory.RESTRICTED,
            (
                "please log in",
                "type='password'",
                'type="password"',
                "name='pass'",
                "sign in",
                "members only",
                "login required",
            ),
        ),
        Signature(
            "http-auth",
            PageCategory.RESTRICTED,
            (
                "401 authorization required",
                "authorization required",
                "could not verify that you are authorized",
                "access forbidden",
                "credentials required",
            ),
        ),
    ]


_DATABASE: tuple[Signature, ...] | None = None


def signature_database() -> tuple[Signature, ...]:
    """The full ordered signature database.

    Order matters: config/database/restricted signatures are tested
    before default-content ones because embedded-device pages often
    embed server-default boilerplate as well.
    """
    global _DATABASE
    if _DATABASE is None:
        _DATABASE = tuple(
            _config_signatures()
            + _database_signatures()
            + _restricted_signatures()
            + _default_signatures()
        )
    return _DATABASE


def total_signature_strings() -> int:
    """Total number of indicator strings across all signatures.

    The paper quotes 185 signature strings; this database is the same
    order of magnitude (the exact strings necessarily differ).
    """
    return sum(len(s.strings) for s in signature_database())
