"""Web root-page classification (paper Section 4.4.1, Table 5).

The paper downloaded the root page of every discovered web server
within a day of discovery and sorted the pages into seven bins using
185 hand-built string signatures.  This package reproduces the whole
pipeline against the simulated campus:

* :mod:`repro.webclassify.signatures` -- the signature database;
* :mod:`repro.webclassify.classifier` -- page-text classification;
* :mod:`repro.webclassify.fetcher` -- the "fetch within a day of
  discovery" step, whose failures produce the "no response" row.
"""

from repro.webclassify.classifier import PageClassifier, classify_page
from repro.webclassify.fetcher import FetchOutcome, WebFetcher
from repro.webclassify.signatures import Signature, signature_database, total_signature_strings

__all__ = [
    "FetchOutcome",
    "PageClassifier",
    "Signature",
    "WebFetcher",
    "classify_page",
    "signature_database",
    "total_signature_strings",
]
