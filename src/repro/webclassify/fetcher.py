"""Fetching root pages from discovered web servers.

"Each web server is contacted within a day of discovery" (paper,
Section 4.4.1).  A fetch can fail: the host may have gone offline, the
address may have been handed to another host, or the service may have
died -- which is how the large "no response" row of Table 5 arises,
dominated by transient addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.campus.population import CampusPopulation
from repro.net.packet import PROTO_TCP
from repro.net.ports import PORT_HTTP
from repro.simkernel.clock import hours
from repro.simkernel.rng import RngStreams


class FetchOutcome(str, Enum):
    """What happened when the fetcher contacted a discovered address."""

    PAGE = "page"                  # got the root page
    NO_RESPONSE = "no_response"    # nothing answered on port 80


@dataclass(frozen=True)
class FetchResult:
    outcome: FetchOutcome
    page: str | None
    fetch_time: float


class WebFetcher:
    """Downloads root pages from the simulated campus.

    The fetcher runs from inside campus (as the paper's did), so it is
    subject to the same internal-probe firewall handling as the
    scanner -- with the practical difference that by the time a page is
    fetched the operator typically allow-lists the monitoring host;
    we model the fetch as an application-level GET that succeeds
    whenever a live service holds the address.
    """

    def __init__(self, population: CampusPopulation, seed: int = 0) -> None:
        self.population = population
        self._rng = RngStreams(seed).stream("webfetch")

    def fetch(self, address: int, t: float) -> FetchResult:
        """GET http://address/ at time *t*."""
        host = self.population.occupant_host(address, t)
        if host is None or not host.is_up(t):
            return FetchResult(FetchOutcome.NO_RESPONSE, None, t)
        service = host.service_on(PORT_HTTP, PROTO_TCP)
        if service is None or not service.alive_at(t):
            return FetchResult(FetchOutcome.NO_RESPONSE, None, t)
        page = service.web_page if service.web_page is not None else ""
        return FetchResult(FetchOutcome.PAGE, page, t)

    def fetch_after_discovery(
        self,
        address: int,
        discovered_at: float,
        max_delay: float = hours(24),
        min_delay: float = hours(2),
    ) -> FetchResult:
        """Fetch within a day of discovery (uniform random delay)."""
        delay = self._rng.uniform(min_delay, max_delay)
        fetch_time = min(discovered_at + delay, self.population.duration - 1.0)
        fetch_time = max(fetch_time, discovered_at)
        return self.fetch(address, fetch_time)
