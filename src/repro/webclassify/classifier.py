"""Root-page classification.

Mirrors the paper's procedure: size check first (pages under 100 bytes
are "minimal content"), then signature matching, and "custom content"
as the residual -- a page that matches nothing stock is, by
construction, unique content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campus.webpages import PageCategory
from repro.webclassify.signatures import Signature, signature_database

#: The paper's minimal-content threshold.
MINIMAL_CONTENT_BYTES = 100


@dataclass
class PageClassifier:
    """Classifies page text into :class:`PageCategory` bins."""

    signatures: tuple[Signature, ...] = field(default_factory=signature_database)

    def classify(self, page: str) -> PageCategory:
        """Classify non-empty page text.

        Raises
        ------
        ValueError
            For empty text -- "no response" is a fetch outcome, not a
            page category; the caller distinguishes it.
        """
        if not page:
            raise ValueError(
                "cannot classify an empty page; handle fetch failures "
                "as NO_RESPONSE upstream"
            )
        if len(page.encode("utf-8", errors="replace")) < MINIMAL_CONTENT_BYTES:
            return PageCategory.MINIMAL
        lowered = page.lower()
        for signature in self.signatures:
            if signature.matches(lowered):
                return signature.category
        return PageCategory.CUSTOM

    def matching_signature(self, page: str) -> Signature | None:
        """Return the first matching signature (diagnostics)."""
        lowered = page.lower()
        for signature in self.signatures:
            if signature.matches(lowered):
                return signature
        return None


def classify_page(page: str) -> PageCategory:
    """Module-level convenience using the default signature database."""
    return PageClassifier().classify(page)
