"""Table 4: the 19-way categorisation after 18 days.

Refines Table 3 with the remaining 17.5 days of passive and active
observation plus address transience, and runs the paper's two firewall
confirmation methods over the "possible firewall" rows.
"""

from __future__ import annotations

from repro.core.categorize import (
    categorize_extended_with_evidence,
    confirm_firewalls,
    LateEvidence,
    T4_ACTIVE,
    T4_BIRTH,
    T4_BIRTH_IDLE,
    T4_BIRTH_MOSTLY_IDLE,
    T4_DEATH,
    T4_IDLE,
    T4_IDLE_INTERMITTENT,
    T4_INTERMITTENT_ACTIVE,
    T4_INTERMITTENT_FW,
    T4_INTERMITTENT_IDLE,
    T4_INTERMITTENT_PASSIVE,
    T4_LATE_BIRTH,
    T4_MOSTLY_IDLE,
    T4_NON_SERVER,
    T4_POSSIBLE_FIREWALL,
    T4_POSSIBLE_FW_BIRTH,
    T4_POSSIBLE_FW_INTERMITTENT,
    T4_SEMI_IDLE,
    T4_SERVER_DEATH,
)
from repro.core.report import TextTable
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import hours

#: The paper's Table 4 counts, keyed by our labels.
PAPER = {
    T4_ACTIVE: 37,
    T4_SERVER_DEATH: 6,
    T4_INTERMITTENT_FW: 1,
    T4_MOSTLY_IDLE: 242,
    T4_IDLE_INTERMITTENT: 99,
    T4_SEMI_IDLE: 1247,
    T4_IDLE: 75,
    T4_INTERMITTENT_PASSIVE: 26,
    T4_BIRTH: 1,
    T4_POSSIBLE_FIREWALL: 4,
    T4_DEATH: 3,
    T4_BIRTH_MOSTLY_IDLE: 7,
    T4_NON_SERVER: 13341,
    T4_INTERMITTENT_ACTIVE: 188,
    T4_LATE_BIRTH: 125,
    T4_INTERMITTENT_IDLE: 655,
    T4_BIRTH_IDLE: 73,
    T4_POSSIBLE_FW_INTERMITTENT: 140,
    T4_POSSIBLE_FW_BIRTH: 31,
}

#: Labels counted as "possible firewall" for the confirmation step.
#: The paper's "35 potentially firewalled servers (4 from the first 12
#: hours and 31 in the remaining time)" counts the *stable-address*
#: rows only; the possible-firewall/intermittent row is transient.
FIREWALL_LABELS = (
    T4_POSSIBLE_FIREWALL,
    T4_POSSIBLE_FW_BIRTH,
)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    dataset = context.dataset
    cutoff = min(hours(12), dataset.duration)

    passive_timeline = context.passive_address_timeline()
    late_evidence = LateEvidence(
        addresses=context.late_activity.addresses_with_any_activity()
    )
    first_scan = dataset.scan_reports[0].open_addresses()
    later_scans: set[int] = set()
    for report in dataset.scan_reports[1:]:
        later_scans |= report.open_addresses()
    space = dataset.population.topology.space
    categories = categorize_extended_with_evidence(
        addresses=space.addresses(),
        passive_timeline=passive_timeline,
        passive_late_evidence=late_evidence,
        active_first_scan=first_scan,
        active_later_scans=later_scans,
        is_transient=space.is_transient,
        early_cutoff=cutoff,
    )

    table = TextTable(
        title="Table 4 -- Traits and categorisation of addresses over 18 days",
        headers=["Categorisation", "Count", "Paper"],
    )
    metrics: dict[str, float] = {}
    for label in PAPER:
        count = len(categories.get(label, ()))
        table.add_row(label, f"{count:,}", f"{PAPER[label]:,}")
        metrics[label.replace(" ", "_").replace("/", "_")] = float(count)

    # Firewall confirmation (the paper confirms 32/35 by method 1,
    # 10/35 by method 2, with one server unconfirmed).
    candidates: set[int] = set()
    for label in FIREWALL_LABELS:
        candidates |= categories.get(label, set())
    windows_hits = (
        context.scan_window_activity.hits if context.scan_window_activity else {}
    )
    confirmation = confirm_firewalls(
        candidates, dataset.scan_reports, windows_hits
    )
    fw_table = TextTable(
        title="Firewall confirmation (Section 4.2.4)",
        headers=["Measure", "Count", "Paper"],
    )
    fw_table.add_row("possible firewalled servers", len(candidates), 35)
    fw_table.add_row("confirmed by method 1 (mixed RST/silence)", len(confirmation["method1"]), 32)
    fw_table.add_row("confirmed by method 2 (active during silent scan)", len(confirmation["method2"]), 10)
    fw_table.add_row("unconfirmed", len(confirmation["unconfirmed"]), 1)
    metrics["firewall_candidates"] = float(len(candidates))
    metrics["firewall_confirmed_either"] = float(len(confirmation["either"]))
    metrics["firewall_method1"] = float(len(confirmation["method1"]))
    metrics["firewall_method2"] = float(len(confirmation["method2"]))

    return ExperimentResult(
        experiment_id="table4",
        title="Table 4: Extended address categorisation (Section 4.2.4)",
        body=table.render() + "\n\n" + fw_table.render(),
        metrics=metrics,
        paper_values={
            label.replace(" ", "_").replace("/", "_"): float(count)
            for label, count in PAPER.items()
        },
    )
