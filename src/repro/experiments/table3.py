"""Table 3: 12-hour categorisation of all addresses.

Every address is classified from what 12 hours of passive monitoring
and a single active scan showed: active server (both saw it), idle
server (active only), firewalled-or-birth (passive only), or
non-server.
"""

from __future__ import annotations

from repro.core.categorize import (
    T3_ACTIVE_SERVER,
    T3_FIREWALLED_OR_BIRTH,
    T3_IDLE_SERVER,
    T3_NON_SERVER,
    categorize_initial,
)
from repro.core.report import TextTable
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import hours

PAPER = {
    T3_ACTIVE_SERVER: 286,
    T3_IDLE_SERVER: 1421,
    T3_FIREWALLED_OR_BIRTH: 41,
    T3_NON_SERVER: 14553,
}


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    cutoff = min(hours(12), context.dataset.duration)
    passive_12h = {
        address
        for (address, _, _), t in context.table.first_seen.items()
        if t < cutoff
    }
    active_first = context.dataset.scan_reports[0].open_addresses()
    all_addresses = list(context.dataset.population.topology.space.addresses())
    categories = categorize_initial(all_addresses, passive_12h, active_first)

    table = TextTable(
        title="Table 3 -- Categorisation of addresses in the first 12 hours",
        headers=["Passive", "Active", "Categorisation", "Count", "Paper"],
    )
    rows = [
        ("yes", "yes", T3_ACTIVE_SERVER),
        ("no", "yes", T3_IDLE_SERVER),
        ("yes", "no", T3_FIREWALLED_OR_BIRTH),
        ("no", "no", T3_NON_SERVER),
    ]
    metrics: dict[str, float] = {}
    for passive, active, label in rows:
        count = len(categories[label])
        table.add_row(passive, active, label, f"{count:,}", f"{PAPER[label]:,}")
        metrics[label.replace(" ", "_")] = float(count)

    return ExperimentResult(
        experiment_id="table3",
        title="Table 3: 12-hour address categorisation (Section 4.1.1)",
        body=table.render(),
        metrics=metrics,
        paper_values={k.replace(" ", "_"): float(v) for k, v in PAPER.items()},
    )
