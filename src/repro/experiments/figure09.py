"""Figure 9: weighted and unweighted discovery over 24 hours, all ports.

The DTCPall study (Section 5.4): one /24 of lab machines, every port.
One host serves 97 % of the subnet's inbound connections; the active
sweep takes nearly 24 hours, so its weighted curve jumps when the
dominant server's address is reached.
"""

from __future__ import annotations

from repro.core.completeness import (
    unit_weights,
    weighted_discovery_curve,
)
from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import hours, minutes


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCPall", seed, scale)
    window = min(hours(24), context.dataset.duration)

    passive = context.passive_address_timeline().before(window)
    scan = context.dataset.scan_reports[0]
    active = DiscoveryTimeline.from_events(
        (t, address) for t, address, _ in scan.opens if t < window
    )
    union = passive.items() | active.items()
    flow_weights = context.flow_weights_by_address()
    client_weights = context.client_weights_by_address()

    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    for method, timeline in (("passive", passive), ("active", active)):
        for label, weights in (
            ("unweighted", unit_weights(union)),
            ("flow-weighted", flow_weights),
            ("client-weighted", client_weights),
        ):
            curve = weighted_discovery_curve(
                timeline, weights, 0.0, window, minutes(15), universe=union
            )
            series[f"{method} {label}"] = [(t / 3600.0, v) for t, v in curve]
            metrics[f"{method}_{label.replace('-', '_')}_final"] = curve[-1][1]

    total_flows = sum(flow_weights.values())
    dominant_share = (
        100.0 * max(flow_weights.values()) / total_flows if total_flows else 0.0
    )
    metrics["dominant_server_flow_share_pct"] = dominant_share
    body = render_series(
        "Figure 9 -- Weighted/unweighted discovery over 24 hours, all ports "
        "(DTCPall)",
        series,
        x_label="hours",
        y_label="% of union weight found",
    )
    return ExperimentResult(
        experiment_id="figure09",
        title="Figure 9: All-ports 24-hour discovery (Section 5.4)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={"dominant_server_flow_share_pct": 97.0},
        notes=[
            f"One server carries {dominant_share:.0f}% of inbound "
            "connections (paper: 97%); passive finds it within minutes "
            "while the all-port sweep reaches it only when its address "
            "comes up in the scan order.",
        ],
    )
