"""Table 2: completeness of each method at growing durations.

The paper evaluates four prefixes of DTCP1-18d -- 3 % (12 h passive,
one scan), 6 % (25 h, 2 scans), 50 % (205 h, 17 scans) and 100 %
(410 h, 35 scans) -- and reports the passive/active overlap against the
union at each point.
"""

from __future__ import annotations

from repro.core.completeness import CompletenessSummary, summarize_overlap
from repro.core.report import TextTable, format_count_pct
from repro.experiments.common import AnalysisContext, ExperimentResult, get_context
from repro.simkernel.clock import hours

#: (label, passive hours, number of scans) -- the paper's four columns.
COLUMNS: tuple[tuple[str, float, int], ...] = (
    ("3%", 12.0, 1),
    ("6%", 25.0, 2),
    ("50%", 205.0, 17),
    ("100%", 410.0, 35),
)

#: The paper's Table 2, for the comparison rows.
PAPER = {
    "3%": dict(union=1748, both=286, active_only=1421, passive_only=41,
               active=1707, passive=327),
    "6%": dict(union=1848, both=1074, active_only=716, passive_only=58,
               active=1790, passive=1132),
    "50%": dict(union=2551, both=1738, active_only=683, passive_only=130,
                active=2421, passive=1868),
    "100%": dict(union=2960, both=1925, active_only=848, passive_only=186,
                 active=2773, passive=2111),
}


def column_summary(
    context: AnalysisContext, passive_hours: float, scan_count: int
) -> CompletenessSummary:
    """Overlap summary for one duration column."""
    cutoff = min(hours(passive_hours), context.dataset.duration)
    passive = {
        address
        for (address, _, _), t in context.table.first_seen.items()
        if t < cutoff
    }
    active: set[int] = set()
    for report in context.dataset.scan_reports[:scan_count]:
        active |= report.open_addresses()
    return summarize_overlap(passive, active)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    table = TextTable(
        title="Table 2 -- Completeness at various durations (DTCP1-18d)",
        headers=["Row"] + [
            f"{label} ({hours:g}h, {scans} scans)"
            for label, hours, scans in COLUMNS
        ],
    )
    summaries = {
        label: column_summary(context, hours_, scans)
        for label, hours_, scans in COLUMNS
    }
    row_defs = [
        ("Total servers found (union)", lambda s: (s.union, 100.0)),
        ("Passive AND Active", lambda s: (s.both, s.both_pct)),
        ("Active only", lambda s: (s.active_only, s.active_only_pct)),
        ("Passive only", lambda s: (s.passive_only, s.passive_only_pct)),
        ("Active", lambda s: (s.active_total, s.active_pct)),
        ("Passive", lambda s: (s.passive_total, s.passive_pct)),
    ]
    for name, extract in row_defs:
        table.add_row(
            name,
            *(format_count_pct(*extract(summaries[label])) for label, _, _ in COLUMNS),
        )
    paper = TextTable(
        title="Paper's Table 2 (for comparison)",
        headers=["Row"] + [label for label, _, _ in COLUMNS],
    )
    for name, key in [
        ("Total servers found (union)", "union"),
        ("Passive AND Active", "both"),
        ("Active only", "active_only"),
        ("Passive only", "passive_only"),
        ("Active", "active"),
        ("Passive", "passive"),
    ]:
        paper.add_row(name, *(f"{PAPER[label][key]:,}" for label, _, _ in COLUMNS))

    final = summaries["100%"]
    first = summaries["3%"]
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: Completeness over growing durations (Section 4.1, 4.2.4)",
        body=table.render() + "\n\n" + paper.render(),
        metrics={
            "active_pct_12h": first.active_pct,
            "passive_pct_12h": first.passive_pct,
            "active_pct_18d": final.active_pct,
            "passive_pct_18d": final.passive_pct,
            "passive_only_pct_18d": final.passive_only_pct,
            "union_18d": float(final.union),
        },
        paper_values={
            "active_pct_12h": 98.0,
            "passive_pct_12h": 19.0,
            "active_pct_18d": 94.0,
            "passive_pct_18d": 71.0,
            "passive_only_pct_18d": 6.3,
            "union_18d": 2960.0,
        },
    )
