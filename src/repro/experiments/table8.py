"""Table 8: servers found on each monitored peering link.

The partial-perspective study (Section 5.2): how many servers each
link's tap sees, and how many are exclusive to it.  DTCP1-18d monitors
the two commercial links; DTCPbreak adds Internet2, whose academic-only
client base sees a much smaller share.
"""

from __future__ import annotations

from repro.core.report import TextTable, format_count_pct
from repro.experiments.common import ExperimentResult, get_context, percent

PAPER = {
    "DTCP1-18d": {
        "commercial1": dict(duplicative=1874, dup_pct=89, exclusive=201, exc_pct=9.5),
        "commercial2": dict(duplicative=1874, dup_pct=89, exclusive=39, exc_pct=1.8),
        "all": 2111,
    },
    "DTCPbreak": {
        "commercial1": dict(duplicative=1770, dup_pct=96, exclusive=59, exc_pct=3.2),
        "commercial2": dict(duplicative=1711, dup_pct=93, exclusive=1, exc_pct=0.05),
        "internet2": dict(duplicative=669, dup_pct=36, exclusive=3, exc_pct=0.16),
        "all": 1835,
    },
}


def _rows_for(context, dataset_name: str, table: TextTable, metrics: dict) -> None:
    monitor = context.link_monitor
    total = len(monitor.total_servers())
    for link in context.dataset.spec.monitored_links:
        on_link = len(monitor.servers_on_link(link))
        exclusive = len(monitor.exclusive_to_link(link))
        paper = PAPER.get(dataset_name, {}).get(link, {})
        table.add_row(
            dataset_name,
            link,
            format_count_pct(on_link, percent(on_link, total)),
            format_count_pct(exclusive, percent(exclusive, total)),
            f"{paper.get('dup_pct', '-')}% / {paper.get('exc_pct', '-')}%",
        )
        metrics[f"{dataset_name}_{link}_pct"] = percent(on_link, total)
        metrics[f"{dataset_name}_{link}_exclusive"] = float(exclusive)
    table.add_row(dataset_name, "all", f"{total:,}", "-", str(PAPER[dataset_name]["all"]))
    metrics[f"{dataset_name}_total"] = float(total)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    table = TextTable(
        title="Table 8 -- Servers found per monitored link",
        headers=["Dataset", "Link", "Found on link", "Exclusive", "Paper dup/exc"],
    )
    metrics: dict[str, float] = {}
    semester = get_context("DTCP1-18d", seed, scale)
    _rows_for(semester, "DTCP1-18d", table, metrics)
    winter = get_context("DTCPbreak", seed, scale)
    _rows_for(winter, "DTCPbreak", table, metrics)
    table.add_note(
        "Any single commercial link observes the vast majority of "
        "servers; Internet2's academic acceptable-use policy limits it "
        "to a minority share, as in the paper."
    )
    return ExperimentResult(
        experiment_id="table8",
        title="Table 8: Partial perspectives (Section 5.2)",
        body=table.render(),
        metrics=metrics,
        paper_values={
            "DTCP1-18d_commercial1_pct": 89.0,
            "DTCPbreak_internet2_pct": 36.0,
        },
    )
