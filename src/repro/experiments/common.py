"""Shared experiment machinery.

Building a full-scale dataset takes seconds and replaying its trace
takes tens of seconds, so datasets and standard analyses are cached
per ``(name, seed, scale)`` within the process; the whole experiment
suite then costs a handful of trace passes rather than twenty.  The
passes themselves follow the paper's record-once/analyze-many shape:
``BuiltDataset.replay`` records the generated border traffic into the
on-disk trace cache on first use (see :mod:`repro.trace.cache`), so the
second passes here (scanner removal, sampling) stream the stored trace
instead of regenerating the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.active.results import first_open_times, union_open_endpoints
from repro.core.timeline import DiscoveryTimeline
from repro.datasets import BuiltDataset, build_dataset
from repro.passive.monitor import PassiveServiceTable
from repro.passive.scandetect import ExternalScanDetector
from repro.passive.taps import MultiLinkMonitor
from repro.passive.windows import WindowActivityObserver

_DATASETS: dict[tuple[str, int, float], BuiltDataset] = {}
_CONTEXTS: dict[tuple[str, int, float], "AnalysisContext"] = {}


def clear_caches() -> None:
    """Drop all cached datasets and analyses (tests use this)."""
    _DATASETS.clear()
    _CONTEXTS.clear()
    _SCANLESS_TABLES.clear()
    _SAMPLED_TABLES.clear()


def get_dataset(name: str, seed: int = 0, scale: float = 1.0) -> BuiltDataset:
    """Build (or fetch the cached) dataset."""
    key = (name, seed, scale)
    if key not in _DATASETS:
        _DATASETS[key] = build_dataset(name, seed=seed, scale=scale)
    return _DATASETS[key]


@dataclass
class AnalysisContext:
    """One dataset plus the standard single-pass passive analyses.

    Attributes
    ----------
    dataset:
        The built dataset.
    table:
        Full-duration passive service table over the monitored links.
    detector:
        External-scan detector fed from the same pass.
    scan_window_activity:
        Per-address passive evidence inside each active-scan window
        (used by Table 4 and firewall confirmation).
    link_monitor:
        Per-link passive tables (Table 8).
    """

    dataset: BuiltDataset
    table: PassiveServiceTable
    detector: ExternalScanDetector
    scan_window_activity: WindowActivityObserver | None
    late_activity: WindowActivityObserver
    link_monitor: MultiLinkMonitor
    records_replayed: int = 0

    # ---- derived views ------------------------------------------------

    def passive_endpoint_timeline(self) -> DiscoveryTimeline:
        """(address, port, proto) endpoint first-seen times, passive."""
        return DiscoveryTimeline.from_mapping(self.table.first_seen)

    def passive_address_timeline(self) -> DiscoveryTimeline:
        """Address-level passive first-seen times."""
        return DiscoveryTimeline.from_events(self.table.address_discovery_events())

    def active_endpoint_timeline(self) -> DiscoveryTimeline:
        """Endpoint first-open times across all scans."""
        return DiscoveryTimeline.from_mapping(
            {
                (address, port): t
                for (address, port), t in first_open_times(
                    self.dataset.scan_reports
                ).items()
            }
        )

    def active_address_timeline(self) -> DiscoveryTimeline:
        return self.active_endpoint_timeline().addresses()

    def active_addresses(self) -> set[int]:
        return {a for a, _ in union_open_endpoints(self.dataset.scan_reports)}

    def passive_addresses(self) -> set[int]:
        return self.table.server_addresses()

    def union_addresses(self) -> set[int]:
        return self.active_addresses() | self.passive_addresses()

    def flow_weights_by_address(self) -> dict[int, float]:
        """Completed-flow counts per server address (Figure 1 weights)."""
        weights: dict[int, float] = {}
        for (address, _, _), count in self.table.flow_counts.items():
            weights[address] = weights.get(address, 0.0) + count
        return weights

    def client_weights_by_address(self) -> dict[int, float]:
        """Unique-client counts per server address."""
        merged: dict[int, set[int]] = {}
        for (address, _, _), clients in self.table.clients.items():
            merged.setdefault(address, set()).update(clients)
        return {address: float(len(s)) for address, s in merged.items()}


def get_context(name: str, seed: int = 0, scale: float = 1.0) -> AnalysisContext:
    """Build (or fetch) the standard analysis for a dataset.

    One pass over the trace feeds all standard observers.
    """
    key = (name, seed, scale)
    if key in _CONTEXTS:
        return _CONTEXTS[key]
    dataset = get_dataset(name, seed, scale)
    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
        links=frozenset(dataset.spec.monitored_links),
    )
    detector = ExternalScanDetector(is_campus=dataset.is_campus)
    observers: list = [table, detector]
    windows = dataset.scan_windows()
    window_observer = None
    if windows:
        window_observer = WindowActivityObserver(
            windows=windows,
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
        )
        observers.append(window_observer)
    link_monitor = MultiLinkMonitor(
        links=dataset.spec.monitored_links,
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
    )
    observers.append(link_monitor)
    # "Any passive evidence after the first 12 hours" -- the bit the
    # Table 4 classification branches on.
    from repro.simkernel.clock import hours as _hours

    late_cutoff = min(_hours(12), dataset.duration / 2)
    late_activity = WindowActivityObserver(
        windows=[(late_cutoff, dataset.duration)],
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
    )
    observers.append(late_activity)
    records = dataset.replay(*observers)
    context = AnalysisContext(
        dataset=dataset,
        table=table,
        detector=detector,
        scan_window_activity=window_observer,
        late_activity=late_activity,
        link_monitor=link_monitor,
        records_replayed=records,
    )
    _CONTEXTS[key] = context
    return context


#: Key identifying one built dataset/context: ``(name, seed, scale)``.
#: Never key these caches by ``id(context)`` -- CPython reuses ids after
#: garbage collection, which would silently serve a stale table built
#: for a different context.
_ContextKey = tuple[str, int, float]

_SCANLESS_TABLES: dict[_ContextKey, PassiveServiceTable] = {}
_SAMPLED_TABLES: dict[
    tuple[_ContextKey, tuple[float, ...]], dict[float, PassiveServiceTable]
] = {}


def _context_key(context: AnalysisContext) -> _ContextKey:
    dataset = context.dataset
    return (dataset.spec.name, dataset.seed, dataset.scale)


def passive_table_without_scanners(
    context: AnalysisContext,
) -> PassiveServiceTable:
    """Second pass: passive table with detected scanners filtered out.

    Implements Section 4.3's removal: every conversation involving a
    source the detector flagged is ignored.  Cached per
    ``(name, seed, scale)``; the pass itself is served from the
    record-once trace cache rather than regenerated.
    """
    cache_key = _context_key(context)
    cached = _SCANLESS_TABLES.get(cache_key)
    if cached is not None:
        return cached
    dataset = context.dataset
    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
        links=frozenset(dataset.spec.monitored_links),
        exclude_sources=frozenset(context.detector.scanners()),
    )
    dataset.replay(table)
    _SCANLESS_TABLES[cache_key] = table
    return table


def sampled_tables(
    context: AnalysisContext, sample_minutes: tuple[float, ...]
) -> dict[float, PassiveServiceTable]:
    """Second pass: passive tables under fixed-period samplers (cached)."""
    from repro.passive.sampling import FixedPeriodSampler

    cache_key = (_context_key(context), tuple(sample_minutes))
    cached = _SAMPLED_TABLES.get(cache_key)
    if cached is not None:
        return cached
    dataset = context.dataset
    tables = {
        minutes: PassiveServiceTable(
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
            links=frozenset(dataset.spec.monitored_links),
            sampler=FixedPeriodSampler(sample_minutes=minutes),
        )
        for minutes in sample_minutes
    }
    dataset.replay(*tables.values())
    _SAMPLED_TABLES[cache_key] = tables
    return tables


def endpoints_for_port(
    timeline: DiscoveryTimeline, port: int
) -> set[int]:
    """Addresses whose (address, port[, proto]) endpoint was discovered.

    Delegates to the timeline's lazily built per-port index, so
    repeated per-port queries (Tables 5/6 ask for every watched port)
    cost one scan of the timeline rather than one per call.
    """
    return timeline.addresses_for_port(port)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        ``"table2"`` / ``"figure04"`` style identifier.
    title:
        Human-readable name with the paper reference.
    body:
        Rendered Markdown (tables and/or series).
    metrics:
        Scalar results the benchmark suite asserts shape properties on.
    paper_values:
        The paper's corresponding numbers, for the comparison column.
    notes:
        Deviations and their causes.
    """

    experiment_id: str
    title: str
    body: str
    metrics: dict[str, float] = field(default_factory=dict)
    paper_values: Mapping[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Named (x, y) series backing the figure, for CSV export and
    #: external plotting; empty for table experiments.
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"## {self.title}", "", self.body]
        if self.notes:
            out.append("")
            out.extend(f"- {note}" for note in self.notes)
        return "\n".join(out)


def percent(part: float, whole: float) -> float:
    """Percentage helper tolerating empty denominators."""
    return 100.0 * part / whole if whole else 0.0
