"""Experiment harness: one module per paper table and figure.

Every experiment module exposes::

    run(seed: int = 0, scale: float = 1.0) -> ExperimentResult

returning an :class:`~repro.experiments.common.ExperimentResult` whose
``render()`` emits the reproduced rows/series next to the paper's
numbers and whose ``metrics`` dict feeds the shape assertions in the
benchmark suite.  :mod:`repro.experiments.runner` executes all of them
and regenerates EXPERIMENTS.md.
"""

from repro.experiments.common import (
    AnalysisContext,
    ExperimentResult,
    clear_caches,
    get_context,
    get_dataset,
)

ALL_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "figure01",
    "figure02",
    "figure03",
    "figure04",
    "figure05",
    "figure06",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
)

__all__ = [
    "ALL_EXPERIMENTS",
    "AnalysisContext",
    "ExperimentResult",
    "clear_caches",
    "get_context",
    "get_dataset",
]
