"""Figure 12: discovery during winter break.

DTCPbreak (Section 5.5): 11 days over the December break, when the
transient population (VPN/PPP/dorm laptops) largely vanishes.  Both
methods' curves level off, and passive completeness over *all* hosts
rises well above its mid-semester value because the churn that passive
can never finish chasing is gone.  Internet2-exclusive discoveries are
excluded from ground truth, as in the paper.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import cumulative_curve
from repro.experiments.common import ExperimentResult, get_context, percent
from repro.simkernel.clock import days, hours


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCPbreak", seed, scale)
    duration = context.dataset.duration
    space = context.dataset.population.topology.space

    # Ground truth excludes servers seen exclusively on Internet2.
    i2_exclusive = context.link_monitor.exclusive_to_link("internet2")
    passive = context.passive_address_timeline().restrict(
        a for a in context.passive_addresses() if a not in i2_exclusive
    )
    active = context.active_address_timeline()
    union = passive.items() | active.items()

    static_passive = passive.restrict(
        a for a in passive.items() if not space.is_transient(a)
    )
    static_active = active.restrict(
        a for a in active.items() if not space.is_transient(a)
    )
    step = hours(6)
    series = {
        "passive (all hosts)": _to_days(cumulative_curve(passive, 0, duration, step)),
        "active (all hosts)": _to_days(cumulative_curve(active, 0, duration, step)),
        "passive (static only)": _to_days(
            cumulative_curve(static_passive, 0, duration, step)
        ),
        "active (static only)": _to_days(
            cumulative_curve(static_active, 0, duration, step)
        ),
    }
    break_passive_pct = percent(len(passive), len(union))

    # Mid-semester comparison: passive completeness over the first 11
    # days of DTCP1-18d.
    semester_context = get_context("DTCP1-18d", seed, scale)
    cutoff = min(days(11), semester_context.dataset.duration)
    sem_passive = {
        a for a, t in semester_context.passive_address_timeline().first_seen.items()
        if t < cutoff
    }
    sem_active: set[int] = set()
    for report in semester_context.dataset.scan_reports:
        if report.start < cutoff:
            sem_active |= report.open_addresses()
    sem_union = sem_passive | sem_active
    semester_passive_pct = percent(len(sem_passive), len(sem_union))

    metrics = {
        "break_passive_pct": break_passive_pct,
        "break_active_pct": percent(len(active), len(union)),
        "semester_11d_passive_pct": semester_passive_pct,
        "break_union": float(len(union)),
        "break_static_passive_pct": percent(
            len(static_passive),
            len(static_passive.items() | static_active.items()),
        ),
    }
    body = render_series(
        "Figure 12 -- Cumulative discovery over 11 days of winter break",
        series,
        x_label="days",
        y_label="server addresses discovered",
    )
    return ExperimentResult(
        experiment_id="figure12",
        title="Figure 12: Winter break (Section 5.5)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "break_passive_pct": 82.0,
            "semester_11d_passive_pct": 73.0,
        },
        notes=[
            f"Break passive completeness {break_passive_pct:.0f}% vs "
            f"{semester_passive_pct:.0f}% over the first 11 mid-semester "
            "days (paper: 82% vs 73%) -- the transient population is "
            "what keeps passive from finishing.",
        ],
    )


def _to_days(points: list[tuple[float, int]]) -> list[tuple[float, float]]:
    return [(t / 86400.0, float(v)) for t, v in points]
