"""Table 1: the dataset inventory.

Rendered straight from the registry; the reproduction's dataset list
matches the paper's row for row (two rows are analysis subsets of
DTCP1-18d, as in the paper where DTCP1-12h and DTCP1-18d are subsets of
DTCP1).
"""

from __future__ import annotations

from repro.core.report import TextTable
from repro.datasets.registry import dataset_table_rows, registry
from repro.experiments.common import ExperimentResult


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    table = TextTable(
        title="Table 1 -- List of datasets",
        headers=[
            "Name",
            "Start Date",
            "Passive Duration",
            "Active Scans",
            "Target Services",
            "Addresses",
            "Section",
        ],
    )
    for row in dataset_table_rows():
        table.add_row(*row)
    table.add_note(
        "DTCP1-12h and DTCP1-18d-trans are analysis subsets of DTCP1-18d, "
        "mirroring the paper's subsetting of DTCP1."
    )
    specs = registry()
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: List of datasets (paper Section 3.3)",
        body=table.render(),
        metrics={
            "dataset_count": float(len(specs)),
            "main_address_count": float(specs["DTCP1-18d"].address_count),
        },
        paper_values={"dataset_count": 8.0, "main_address_count": 16_130.0},
    )
