"""Figure 7: network scanning at different times of day.

Section 5.1 compares four scan retention policies over the same 18-day
scan series: every 12 hours (the baseline), daily at 11:00, daily at
23:00, and daily alternating.  Ground truth is the full DTCP1-18d
union; the paper finds day-only scanning beats night-only by ~3 % and
halving scan frequency costs ~8 %.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline, cumulative_curve
from repro.experiments.common import ExperimentResult, get_context, percent
from repro.active.schedule import ScanScheduleBuilder
from repro.simkernel.clock import hours

SUBSETS = ("every-12-hours", "day-only", "night-only", "alternating")


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    dataset = context.dataset
    duration = dataset.duration
    union = context.union_addresses()

    builder = ScanScheduleBuilder(
        calendar=dataset.calendar, start=0.0, end=duration
    )
    # Map scheduled times to the scans actually taken at those times.
    reports_by_start = {round(r.start): r for r in dataset.scan_reports}

    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    subset_addresses: dict[str, set[int]] = {}
    for name in SUBSETS:
        times = builder.subset_times(name)
        reports = [
            reports_by_start[round(t)]
            for t in times
            if round(t) in reports_by_start
        ]
        timeline = DiscoveryTimeline()
        for report in reports:
            for t, address, _ in report.opens:
                timeline.record(address, t)
        series[name] = [
            (t / 86400.0, percent(v, len(union)))
            for t, v in cumulative_curve(timeline, 0, duration, hours(12))
        ]
        subset_addresses[name] = timeline.items()
        metrics[f"{name.replace('-', '_')}_pct"] = percent(
            len(timeline), len(union)
        )
        metrics[f"{name.replace('-', '_')}_scans"] = float(len(reports))

    day_only = subset_addresses["day-only"]
    night_only = subset_addresses["night-only"]
    metrics["day_not_night"] = float(len(day_only - night_only))
    metrics["night_not_day"] = float(len(night_only - day_only))
    metrics["day_vs_night_gap_pct"] = (
        metrics["day_only_pct"] - metrics["night_only_pct"]
    )
    metrics["frequency_cost_pct"] = (
        metrics["every_12_hours_pct"] - metrics["alternating_pct"]
    )
    body = render_series(
        "Figure 7 -- Scan completeness by time-of-day policy "
        "(percent of DTCP1-18d union)",
        series,
        x_label="days",
        y_label="% of union found",
    )
    return ExperimentResult(
        experiment_id="figure07",
        title="Figure 7: Time and frequency of active probing (Section 5.1)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "day_vs_night_gap_pct": 3.0,
            "frequency_cost_pct": 8.0,
            "day_not_night": 325.0,
            "night_not_day": 232.0,
        },
        notes=[
            "Paper: day scanning finds 325 servers night scanning "
            "misses and vice versa 232; halving scan frequency costs "
            "~8% completeness after 18 days.",
        ],
    )
