"""Figure 6: discovery over time, broken down by protocol.

Per-service (Web, FTP, SSH, MySQL) cumulative curves for both methods,
as percentages of each service's own union.  The stepped jumps in the
passive MySQL curve -- external MySQL sweeps that mostly bounce off
hidden servers -- are the paper's signature detail.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline, cumulative_curve
from repro.experiments.common import ExperimentResult, get_context, percent
from repro.net.ports import PORT_FTP, PORT_HTTP, PORT_MYSQL, PORT_SSH
from repro.simkernel.clock import hours

SERVICES = (
    ("Web", PORT_HTTP),
    ("FTP", PORT_FTP),
    ("SSH", PORT_SSH),
    ("MySQL", PORT_MYSQL),
)


def _port_timeline(timeline: DiscoveryTimeline, port: int) -> DiscoveryTimeline:
    return DiscoveryTimeline.from_mapping(
        {
            item[0]: t
            for item, t in timeline.first_seen.items()
            if item[1] == port
        }
    )


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    duration = context.dataset.duration
    passive_endpoints = context.passive_endpoint_timeline()
    active_endpoints = context.active_endpoint_timeline()

    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    step = hours(12)
    for name, port in SERVICES:
        passive = _port_timeline(passive_endpoints, port)
        active = _port_timeline(active_endpoints, port)
        union = len(passive.items() | active.items())
        for method, timeline in (("passive", passive), ("active", active)):
            series[f"{method} {name}"] = [
                (t / 86400.0, percent(v, union))
                for t, v in cumulative_curve(timeline, 0, duration, step)
            ]
            metrics[f"{method}_{name.lower()}_pct"] = percent(len(timeline), union)
    body = render_series(
        "Figure 6 -- Discovery by protocol (percent of per-service union)",
        series,
        x_label="days",
        y_label="% of service union found",
    )
    return ExperimentResult(
        experiment_id="figure06",
        title="Figure 6: Discovery by protocol (Section 4.4.3)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "active_mysql_pct": 96.0,
            "passive_mysql_pct": 52.0,
            "active_ssh_pct": 100.0,
            "active_ftp_pct": 99.0,
        },
    )
