"""Degradation sweep: completeness under measurement failure.

The paper assumes a perfect observer; its own infrastructure was not
one (LANDER drops packets under load, the peering-link monitors went
down for maintenance, probe responses vanish into firewalls).  This
experiment quantifies how sensitive the completeness results are to
that gap: it sweeps a grid of capture-loss rates and outage fractions,
rebuilds the measurement under each :class:`~repro.faults.plan.FaultPlan`,
and reports how much of the baseline discovery each degraded observer
retains.

Axes
----
* ``loss_rate`` -- i.i.d. capture loss at the taps *and* per-probe
  transmission loss (SYN out, SYN-ACK/RST back) for the scanner, so
  both methods degrade along the same axis.
* ``outage_fraction`` -- scheduled monitor outage windows per peering
  link, and the same fraction of prober-machine downtime per sweep.

Every sweep point derives its fault seed from the master seed and its
own coordinates, so a fixed ``(seed, loss-rate)`` plan produces
identical output across runs and across ``--jobs 1`` vs ``--jobs N``
(the points are independent and individually deterministic).

Usage::

    python -m repro degradation [DATASET] --scale 0.1 \
        --loss-rates 0 0.05 0.2 --outage-fractions 0 0.25 --jobs 4

Not part of ``ALL_EXPERIMENTS``: the standard report must stay
byte-identical to a fault-free run, so the degradation study is its
own command rather than a new EXPERIMENTS.md section.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.core.report import TextTable
from repro.experiments.common import percent
from repro.faults.plan import FaultPlan
from repro.simkernel.rng import derive_seed

DEFAULT_DATASET = "DTCPall"
DEFAULT_LOSS_RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4)
DEFAULT_OUTAGE_FRACTIONS = (0.0, 0.1, 0.25)


@dataclass(frozen=True)
class DegradationPoint:
    """Discovery under one fault configuration."""

    loss_rate: float
    outage_fraction: float
    records_seen: int
    records_dropped: int
    passive_addresses: int
    active_addresses: int
    union_addresses: int

    @property
    def capture_drop_pct(self) -> float:
        return percent(self.records_dropped, self.records_seen)


@dataclass
class DegradationResult:
    """The whole sweep plus its fault-free baseline."""

    dataset: str
    seed: int
    scale: float
    baseline: DegradationPoint
    points: list[DegradationPoint] = field(default_factory=list)

    def retained_pct(self, point: DegradationPoint) -> tuple[float, float, float]:
        """(passive, active, union) retention vs the baseline, in %."""
        return (
            percent(point.passive_addresses, self.baseline.passive_addresses),
            percent(point.active_addresses, self.baseline.active_addresses),
            percent(point.union_addresses, self.baseline.union_addresses),
        )

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Retention curves keyed by method and outage fraction."""
        out: dict[str, list[tuple[float, float]]] = {}
        for point in self.points:
            passive, active, union = self.retained_pct(point)
            suffix = f"outage={point.outage_fraction:g}"
            out.setdefault(f"passive {suffix}", []).append(
                (point.loss_rate, passive)
            )
            out.setdefault(f"active {suffix}", []).append(
                (point.loss_rate, active)
            )
            out.setdefault(f"union {suffix}", []).append((point.loss_rate, union))
        return out


def _plan_for_point(
    seed: int, loss_rate: float, outage_fraction: float
) -> FaultPlan | None:
    """The sweep point's fault plan (None at the fault-free origin).

    The plan seed folds in the point's coordinates, so neighbouring
    points fail independently rather than replaying one loss pattern
    at different rates.
    """
    if loss_rate == 0.0 and outage_fraction == 0.0:
        return None
    return FaultPlan(
        seed=derive_seed(
            seed, f"degradation.{loss_rate!r}.{outage_fraction!r}"
        ),
        capture_loss_rate=loss_rate,
        outage_fraction=outage_fraction,
        probe_loss_rate=loss_rate,
        response_loss_rate=loss_rate,
        prober_downtime_fraction=outage_fraction,
    )


def measure_point(
    dataset_name: str,
    seed: int,
    scale: float,
    loss_rate: float,
    outage_fraction: float,
) -> DegradationPoint:
    """Build and measure one sweep point (self-contained; pool-safe)."""
    from repro.active.results import union_open_endpoints
    from repro.datasets.builder import build_dataset
    from repro.passive.monitor import PassiveServiceTable

    plan = _plan_for_point(seed, loss_rate, outage_fraction)
    dataset = build_dataset(dataset_name, seed=seed, scale=scale, faults=plan)
    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
        links=frozenset(dataset.spec.monitored_links),
    )
    capture = plan.capture_filter(dataset.duration) if plan is not None else None
    kept = dataset.replay(table, faults=capture)
    if capture is not None:
        seen = capture.stats.seen
        dropped = capture.stats.dropped
    else:
        seen, dropped = kept, 0
    passive = table.server_addresses()
    active = {a for a, _ in union_open_endpoints(dataset.scan_reports)}
    if dataset.udp_report is not None:
        active |= {a for a, _ in dataset.udp_report.open_endpoints()}
    return DegradationPoint(
        loss_rate=loss_rate,
        outage_fraction=outage_fraction,
        records_seen=seen,
        records_dropped=dropped,
        passive_addresses=len(passive),
        active_addresses=len(active),
        union_addresses=len(passive | active),
    )


def run_degradation(
    dataset: str = DEFAULT_DATASET,
    seed: int = 0,
    scale: float = 1.0,
    loss_rates: tuple[float, ...] = DEFAULT_LOSS_RATES,
    outage_fractions: tuple[float, ...] = DEFAULT_OUTAGE_FRACTIONS,
    jobs: int = 1,
) -> DegradationResult:
    """Sweep the fault grid; return every point plus the baseline.

    With ``jobs > 1`` the points run across a process pool.  Points
    are independent and individually deterministic, and results merge
    in grid order, so the output is identical at any job count.
    """
    if not loss_rates:
        raise ValueError("need at least one loss rate")
    if not outage_fractions:
        raise ValueError("need at least one outage fraction")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    grid = [
        (loss, outage)
        for outage in outage_fractions
        for loss in loss_rates
    ]
    tasks = [(0.0, 0.0)] + grid  # the baseline is always measured
    if jobs == 1:
        measured = [
            measure_point(dataset, seed, scale, loss, outage)
            for loss, outage in tasks
        ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(measure_point, dataset, seed, scale, loss, outage)
                for loss, outage in tasks
            ]
            measured = [future.result() for future in futures]
    return DegradationResult(
        dataset=dataset,
        seed=seed,
        scale=scale,
        baseline=measured[0],
        points=measured[1:],
    )


def degradation_report(result: DegradationResult) -> str:
    """Render the sweep as a Markdown table."""
    table = TextTable(
        title=(
            f"Degradation sweep: {result.dataset} "
            f"(seed {result.seed}, scale {result.scale:g}) -- "
            f"baseline {result.baseline.passive_addresses} passive / "
            f"{result.baseline.active_addresses} active / "
            f"{result.baseline.union_addresses} union servers"
        ),
        headers=[
            "Loss rate", "Outage", "Headers dropped",
            "Passive", "Active", "Union",
        ],
    )
    for point in result.points:
        passive, active, union = result.retained_pct(point)
        table.add_row(
            f"{point.loss_rate:g}",
            f"{point.outage_fraction:g}",
            f"{point.capture_drop_pct:.1f}%",
            f"{point.passive_addresses} ({passive:.1f}%)",
            f"{point.active_addresses} ({active:.1f}%)",
            f"{point.union_addresses} ({union:.1f}%)",
        )
    table.add_note(
        "Percentages are retention versus the fault-free baseline. "
        "Loss applies to captured headers and to probe/response "
        "transmissions; the outage fraction darkens each peering-link "
        "monitor and one scanning machine for the same share of time."
    )
    return table.render()


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep's arguments (shared with ``python -m repro``)."""
    parser.add_argument("dataset", nargs="?", default=DEFAULT_DATASET)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--loss-rates", type=float, nargs="+",
        default=list(DEFAULT_LOSS_RATES), metavar="RATE",
    )
    parser.add_argument(
        "--outage-fractions", type=float, nargs="+",
        default=list(DEFAULT_OUTAGE_FRACTIONS), metavar="FRACTION",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="measure sweep points across N worker processes",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="collect metrics/spans and export a run manifest, "
             "Prometheus text and JSONL into DIR",
    )


def run_from_args(args: argparse.Namespace) -> int:
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir:
        from repro.telemetry import enable, span

        enable()
        with span("degradation"):
            result = run_degradation(
                dataset=args.dataset,
                seed=args.seed,
                scale=args.scale,
                loss_rates=tuple(args.loss_rates),
                outage_fractions=tuple(args.outage_fractions),
                jobs=args.jobs,
            )
    else:
        result = run_degradation(
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
            loss_rates=tuple(args.loss_rates),
            outage_fractions=tuple(args.outage_fractions),
            jobs=args.jobs,
        )
    report = degradation_report(result)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if telemetry_dir:
        from repro.telemetry import RunManifest, registry, write_exports

        manifest = RunManifest.collect(
            command="degradation",
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
            arguments={
                "loss_rates": list(args.loss_rates),
                "outage_fractions": list(args.outage_fractions),
                "jobs": args.jobs,
            },
        )
        written = write_exports(telemetry_dir, registry(), manifest)
        print(
            "telemetry: wrote " + ", ".join(str(path) for path in written),
            file=sys.stderr,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
