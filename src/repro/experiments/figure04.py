"""Figure 4: passive discovery with and without external scans.

The scan-removal experiment (Section 4.3): detect systematic external
scanners with the >=100-targets/>=100-RSTs heuristic, then recompute
passive discovery with every flagged source's conversations removed.
The paper finds 65 scanner IPs whose removal costs passive monitoring
36 % of its discoveries and the equivalent of 9-15 days of observation.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline, cumulative_curve
from repro.experiments.common import (
    ExperimentResult,
    get_context,
    passive_table_without_scanners,
    percent,
)
from repro.simkernel.clock import days, hours


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    duration = context.dataset.duration

    with_scans = context.passive_address_timeline()
    scanners = context.detector.scanners()
    table_without = passive_table_without_scanners(context)
    without_scans = DiscoveryTimeline.from_events(
        table_without.address_discovery_events()
    )

    step = hours(6)
    series = {
        "with external scans": [
            (t / 86400.0, float(v))
            for t, v in cumulative_curve(with_scans, 0, duration, step)
        ],
        "external scans removed": [
            (t / 86400.0, float(v))
            for t, v in cumulative_curve(without_scans, 0, duration, step)
        ],
    }
    total_with = len(with_scans)
    total_without = len(without_scans)
    reduction_pct = percent(total_with - total_without, total_with)

    # How many extra observation days do scans buy?  The paper anchors
    # right after the first big sweep: with scans, >1,200 servers were
    # known by 9-20 (day ~1.5); without, reaching the same count took
    # an additional 9.5 days.
    anchor = days(1.5)
    anchor_count = with_scans.count_before(anchor)
    catchup = None
    for t, count in cumulative_curve(without_scans, 0, duration, hours(1)):
        if count >= anchor_count:
            catchup = t
            break
    equivalent_days = (catchup - anchor) / days(1) if catchup is not None else None

    metrics = {
        "scanners_detected": float(len(scanners)),
        "passive_with_scans": float(total_with),
        "passive_without_scans": float(total_without),
        "reduction_pct": reduction_pct,
        "equivalent_days": (
            equivalent_days if equivalent_days is not None else float("inf")
        ),
    }
    body = render_series(
        "Figure 4 -- Passive discovery with and without external scans",
        series,
        x_label="days",
        y_label="server addresses discovered",
    )
    return ExperimentResult(
        experiment_id="figure04",
        title="Figure 4: The effect of external scans (Section 4.3)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "scanners_detected": 65.0,
            "reduction_pct": 36.0,
            "equivalent_days": 12.0,  # paper: 9-15 days of extra observation
        },
        notes=[
            f"Detected {len(scanners)} scanner sources; removing them "
            f"drops passive discovery by {reduction_pct:.0f}% "
            "(paper: 65 sources, 36%).",
        ],
    )
