"""Table 7: UDP service discovery.

One day of passive monitoring plus one generic UDP sweep over the four
selected UDP ports.  Passive counts come from observing traffic sourced
at well-known UDP ports; active classification follows the paper's
response-interpretation rules.
"""

from __future__ import annotations

from repro.core.report import TextTable
from repro.experiments.common import ExperimentResult, get_context
from repro.net.packet import PROTO_UDP
from repro.net.ports import PORT_DNS, PORT_GAME, PORT_HTTP, PORT_NETBIOS_NS

COLUMNS = (
    ("Web", PORT_HTTP),
    ("DNS", PORT_DNS),
    ("NetBIOS", PORT_NETBIOS_NS),
    ("Gaming", PORT_GAME),
)

PAPER = {
    "passive": dict(All=37, Web=0, DNS=32, NetBIOS=4, Gaming=1),
    "definitely_open": dict(All=116, Web=0, DNS=52, NetBIOS=64, Gaming=0),
    "possibly_open": dict(All=4862, Web=137, DNS=376, NetBIOS=4238, Gaming=111),
    "no_response": dict(All=6359),
    "definitely_closed": dict(All=9826, Web=9687, DNS=9449, NetBIOS=5572, Gaming=9713),
}


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DUDP", seed, scale)
    report = context.dataset.udp_report
    assert report is not None, "DUDP must carry a UDP scan report"

    passive_by_port: dict[int, set[int]] = {port: set() for _, port in COLUMNS}
    for (address, port, proto), _ in context.table.first_seen.items():
        if proto == PROTO_UDP and port in passive_by_port:
            passive_by_port[port].add(address)

    table = TextTable(
        title="Table 7 -- UDP services discovered (DUDP)",
        headers=["Measure", "All"] + [name for name, _ in COLUMNS] + ["Paper (all)"],
    )
    passive_total = sum(len(s) for s in passive_by_port.values())
    table.add_row(
        "Passive",
        passive_total,
        *(len(passive_by_port[port]) for _, port in COLUMNS),
        PAPER["passive"]["All"],
    )
    totals = report.totals()
    table.add_row(
        "Active: definitely open (UDP response)",
        totals["definitely_open"],
        *(len(report.definitely_open.get(port, ())) for _, port in COLUMNS),
        PAPER["definitely_open"]["All"],
    )
    table.add_row(
        "Active: possibly open",
        totals["possibly_open"],
        *(len(report.possibly_open.get(port, ())) for _, port in COLUMNS),
        PAPER["possibly_open"]["All"],
    )
    table.add_row(
        "Active: no response from any probed port",
        totals["no_response"], "-", "-", "-", "-",
        PAPER["no_response"]["All"],
    )
    table.add_row(
        "Active: definitely closed (ICMP response)",
        totals["definitely_closed"],
        *(len(report.definitely_closed.get(port, ())) for _, port in COLUMNS),
        PAPER["definitely_closed"]["All"],
    )
    # The paper's accuracy observation: of the passive finds, nearly
    # all are confirmed by active probing.
    passive_endpoints = {
        (address, port)
        for port, addresses in passive_by_port.items()
        for address in addresses
    }
    confirmed = passive_endpoints & report.open_endpoints()
    table.add_note(
        f"{len(confirmed)} of {len(passive_endpoints)} passively found UDP "
        "services were confirmed open by active probing (paper: 36 of 37)."
    )
    metrics = {
        "passive_total": float(passive_total),
        "definitely_open": float(totals["definitely_open"]),
        "possibly_open": float(totals["possibly_open"]),
        "netbios_possibly_open": float(
            len(report.possibly_open.get(PORT_NETBIOS_NS, ()))
        ),
        "passive_confirmed_by_active": float(len(confirmed)),
    }
    return ExperimentResult(
        experiment_id="table7",
        title="Table 7: UDP service discovery (Section 4.5)",
        body=table.render(),
        metrics=metrics,
        paper_values={
            "passive_total": 37.0,
            "definitely_open": 116.0,
            "possibly_open": 4862.0,
            "netbios_possibly_open": 4238.0,
        },
    )
