"""Figure 10: cumulative discovery over 10 days, all known ports.

Extends the DTCPall passive observation from one day to the full ten.
The paper's finding: unlike the selected-port study, all-ports passive
discovery tops out after about four days at slightly over half of the
union -- local-only services (Windows RPC, X11) never attract wide-area
traffic, and the single active scan already found everything else.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import cumulative_curve
from repro.experiments.common import ExperimentResult, get_context, percent
from repro.simkernel.clock import days, hours


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCPall", seed, scale)
    duration = context.dataset.duration

    # The paper counts *servers* (addresses), its Figure 10 y-axis
    # topping out near the subnet's 250 hosts.
    passive = context.passive_address_timeline()
    active = context.active_address_timeline()
    union = passive.items() | active.items()

    step = hours(6)
    series = {
        "passive (servers)": [
            (t / 86400.0, float(v))
            for t, v in cumulative_curve(passive, 0, duration, step)
        ],
        "active (servers)": [
            (t / 86400.0, float(v))
            for t, v in cumulative_curve(active, 0, duration, step)
        ],
    }
    passive_total = len(passive)
    union_total = len(union)
    # When does passive stop discovering?  Last discovery time.
    last_discovery = max(passive.first_seen.values(), default=0.0)
    metrics = {
        "passive_total": float(passive_total),
        "active_total": float(len(active)),
        "union_total": float(union_total),
        "passive_share_of_union_pct": percent(passive_total, union_total),
        "passive_last_discovery_day": last_discovery / days(1),
    }
    body = render_series(
        "Figure 10 -- Ten days of all-ports discovery (DTCPall)",
        series,
        x_label="days",
        y_label="service endpoints discovered",
    )
    return ExperimentResult(
        experiment_id="figure10",
        title="Figure 10: All-ports 10-day discovery (Section 5.4)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "passive_total": 131.0,
            "passive_share_of_union_pct": 52.0,
        },
        notes=[
            "Passive tops out at roughly half of all services on the "
            "lab subnet: NT/RPC and X11 services have no wide-area "
            "clients, so only active probing sees them.",
        ],
    )
