"""Seed-sweep robustness analysis.

A reproduction built on a synthetic population should say how much its
numbers wobble across realisations.  :func:`seed_sweep` reruns an
experiment over several master seeds and aggregates every metric into
mean / standard deviation / extremes; :func:`sweep_report` renders the
result, flagging metrics whose coefficient of variation exceeds a
threshold (those should be quoted as ranges, not point values).

Usage::

    python -m repro.experiments.robustness table2 --seeds 5 --scale 0.1
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass, field

from repro.core.report import TextTable
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import clear_caches


@dataclass(frozen=True)
class MetricSpread:
    """Distribution of one metric over a seed sweep."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        finite = [v for v in self.values if math.isfinite(v)]
        return sum(finite) / len(finite) if finite else float("nan")

    @property
    def stdev(self) -> float:
        finite = [v for v in self.values if math.isfinite(v)]
        if len(finite) < 2:
            return 0.0
        mu = sum(finite) / len(finite)
        return math.sqrt(sum((v - mu) ** 2 for v in finite) / (len(finite) - 1))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / |mean|); 0 for zero mean."""
        mu = self.mean
        if not mu or not math.isfinite(mu):
            return 0.0
        return self.stdev / abs(mu)


@dataclass
class SweepResult:
    """All metric spreads of one experiment across seeds."""

    experiment_id: str
    seeds: tuple[int, ...]
    scale: float
    spreads: dict[str, MetricSpread] = field(default_factory=dict)
    paper_values: dict[str, float] = field(default_factory=dict)

    def unstable_metrics(self, cv_threshold: float = 0.25) -> list[str]:
        """Metrics whose relative spread exceeds the threshold."""
        return sorted(
            name
            for name, spread in self.spreads.items()
            if spread.cv > cv_threshold
        )


def seed_sweep(
    experiment_name: str,
    seeds: tuple[int, ...],
    scale: float = 1.0,
    keep_caches: bool = False,
) -> SweepResult:
    """Run *experiment_name* once per seed and aggregate its metrics.

    Parameters
    ----------
    keep_caches:
        Leave the dataset caches warm afterwards (successive sweeps of
        experiments sharing a dataset can then reuse builds per seed).
    """
    from repro.experiments.runner import run_experiment

    if experiment_name not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_name!r}; known: {ALL_EXPERIMENTS}"
        )
    if not seeds:
        raise ValueError("need at least one seed")
    per_seed: dict[int, dict[str, float]] = {}
    paper: dict[str, float] = {}
    for seed in seeds:
        result = run_experiment(experiment_name, seed, scale)
        per_seed[seed] = dict(result.metrics)
        paper = dict(result.paper_values)
    if not keep_caches:
        clear_caches()
    names = sorted({name for metrics in per_seed.values() for name in metrics})
    spreads = {
        name: MetricSpread(
            name=name,
            values=tuple(
                per_seed[seed].get(name, float("nan")) for seed in seeds
            ),
        )
        for name in names
    }
    return SweepResult(
        experiment_id=experiment_name,
        seeds=tuple(seeds),
        scale=scale,
        spreads=spreads,
        paper_values=paper,
    )


def sweep_report(result: SweepResult, cv_threshold: float = 0.25) -> str:
    """Render a sweep as a Markdown table with stability flags."""
    table = TextTable(
        title=(
            f"Seed sweep: {result.experiment_id} over seeds "
            f"{list(result.seeds)} at scale {result.scale}"
        ),
        headers=["Metric", "Mean", "Stdev", "Min", "Max", "Paper", "Stable?"],
    )
    for name, spread in sorted(result.spreads.items()):
        paper = result.paper_values.get(name)
        table.add_row(
            name,
            f"{spread.mean:,.2f}",
            f"{spread.stdev:,.2f}",
            f"{spread.minimum:,.2f}",
            f"{spread.maximum:,.2f}",
            f"{paper:,.2f}" if paper is not None else "-",
            "yes" if spread.cv <= cv_threshold else f"no (cv={spread.cv:.2f})",
        )
    unstable = result.unstable_metrics(cv_threshold)
    if unstable:
        table.add_note(
            "Quote as ranges rather than point values: " + ", ".join(unstable)
        )
    return table.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=ALL_EXPERIMENTS)
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of seeds (0, 1, ..., n-1)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--cv-threshold", type=float, default=0.25)
    args = parser.parse_args(argv)
    result = seed_sweep(
        args.experiment, tuple(range(args.seeds)), scale=args.scale
    )
    print(sweep_report(result, args.cv_threshold))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
