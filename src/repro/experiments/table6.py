"""Table 6: discovery broken down by service type.

Per-service completeness over DTCP1-18d for Web, FTP, SSH and MySQL.
The headline asymmetry: active probing finds essentially all FTP/SSH
servers while passive lags (idle workstations, legacy FTP), and MySQL
splits almost in half because hidden MySQL servers drop external
probes (so external scans cannot unveil them for passive monitoring)
while answering the internal scanner.
"""

from __future__ import annotations

from repro.core.completeness import summarize_overlap
from repro.core.report import TextTable, format_count_pct
from repro.experiments.common import (
    ExperimentResult,
    endpoints_for_port,
    get_context,
)
from repro.net.ports import PORT_FTP, PORT_HTTP, PORT_MYSQL, PORT_SSH

SERVICES = (
    ("Web", PORT_HTTP),
    ("FTP", PORT_FTP),
    ("SSH", PORT_SSH),
    ("MySQL", PORT_MYSQL),
)

PAPER = {
    "Web": dict(union=2120, both=1428, active_only=497, passive_only=195,
                active_pct=91, passive_pct=77),
    "FTP": dict(union=815, both=566, active_only=241, passive_only=8,
                active_pct=99, passive_pct=70),
    "SSH": dict(union=925, both=701, active_only=221, passive_only=3,
                active_pct=100, passive_pct=76),
    "MySQL": dict(union=164, both=78, active_only=79, passive_only=7,
                  active_pct=96, passive_pct=52),
}


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    passive_timeline = context.passive_endpoint_timeline()
    active_timeline = context.active_endpoint_timeline()

    table = TextTable(
        title="Table 6 -- Server discovery by service type (DTCP1-18d)",
        headers=[
            "Service", "Union", "Both", "Active only", "Passive only",
            "Active", "Passive", "Paper Active", "Paper Passive",
        ],
    )
    metrics: dict[str, float] = {}
    for name, port in SERVICES:
        passive = endpoints_for_port(passive_timeline, port)
        active = endpoints_for_port(active_timeline, port)
        summary = summarize_overlap(passive, active)
        p = PAPER[name]
        table.add_row(
            name,
            f"{summary.union:,}",
            format_count_pct(summary.both, summary.both_pct),
            format_count_pct(summary.active_only, summary.active_only_pct),
            format_count_pct(summary.passive_only, summary.passive_only_pct),
            format_count_pct(summary.active_total, summary.active_pct),
            format_count_pct(summary.passive_total, summary.passive_pct),
            f"{p['active_pct']}%",
            f"{p['passive_pct']}%",
        )
        key = name.lower()
        metrics[f"{key}_union"] = float(summary.union)
        metrics[f"{key}_active_pct"] = summary.active_pct
        metrics[f"{key}_passive_pct"] = summary.passive_pct
    table.add_note(
        "The MySQL gap between methods reproduces the paper's hidden-"
        "MySQL effect: servers blocking external sources stay dark to "
        "passive monitoring but answer internal probes."
    )
    return ExperimentResult(
        experiment_id="table6",
        title="Table 6: Discovery by service type (Section 4.4.3)",
        body=table.render(),
        metrics=metrics,
        paper_values={
            f"{name.lower()}_{suffix}": float(value)
            for name, values in PAPER.items()
            for suffix, value in (
                ("union", values["union"]),
                ("active_pct", values["active_pct"]),
                ("passive_pct", values["passive_pct"]),
            )
        },
    )
