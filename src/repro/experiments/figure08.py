"""Figure 8: fixed-period sampling of the passive trace.

Section 5.3: keep only the first 2/5/10/30 minutes of every hour and
measure how much passive discovery survives.  The paper's relationship
is strongly non-linear -- 50 % of the data loses only ~5 % of servers,
16 % of the data loses ~11 % -- because external scans are short and
either land in a sample window or get caught by a later scan.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline, cumulative_curve
from repro.experiments.common import (
    ExperimentResult,
    get_context,
    percent,
    sampled_tables,
)
from repro.simkernel.clock import hours

SAMPLE_MINUTES: tuple[float, ...] = (2.0, 5.0, 10.0, 30.0)

PAPER_DROPS = {30.0: 5.0, 10.0: 11.0}


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    duration = context.dataset.duration
    baseline = context.passive_address_timeline()
    baseline_total = len(baseline)

    tables = sampled_tables(context, SAMPLE_MINUTES)
    series: dict[str, list[tuple[float, float]]] = {
        "no sampling": [
            (t / 86400.0, percent(v, baseline_total))
            for t, v in cumulative_curve(baseline, 0, duration, hours(12))
        ]
    }
    metrics: dict[str, float] = {"baseline_total": float(baseline_total)}
    for minutes_kept, table in sorted(tables.items()):
        timeline = DiscoveryTimeline.from_events(table.address_discovery_events())
        series[f"{minutes_kept:g} min of each hour"] = [
            (t / 86400.0, percent(v, baseline_total))
            for t, v in cumulative_curve(timeline, 0, duration, hours(12))
        ]
        found = len(timeline)
        drop = percent(baseline_total - found, baseline_total)
        metrics[f"drop_pct_{minutes_kept:g}min"] = drop
        metrics[f"found_{minutes_kept:g}min"] = float(found)

    body = render_series(
        "Figure 8 -- Passive discovery under fixed-period sampling "
        "(percent of continuous monitoring's total)",
        series,
        x_label="days",
        y_label="% of unsampled total",
    )
    return ExperimentResult(
        experiment_id="figure08",
        title="Figure 8: Sampled observations (Section 5.3)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "drop_pct_30min": 5.0,
            "drop_pct_10min": 11.0,
        },
        notes=[
            "The sampling/coverage relationship is non-linear: half the "
            "data costs only a few percent of the servers, because "
            "popular servers are heard in any window and scan-revealed "
            "servers get re-revealed by later scans.",
        ],
    )
