"""Figure 1: weighted and unweighted cumulative discovery over 12 hours.

Six curves: passive and active discovery, each unweighted, flow-
weighted and client-weighted.  Weights are measured over the full
DTCP1-18d duration (the paper's methodology: "when we first discover a
server, we add the number of clients this IP address serves throughout
the study").
"""

from __future__ import annotations

from repro.core.completeness import (
    curve_time_to_percent,
    unit_weights,
    weighted_discovery_curve,
)
from repro.core.report import render_series
from repro.core.timeline import DiscoveryTimeline
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import hours, minutes


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    window = min(hours(12), context.dataset.duration)

    passive = context.passive_address_timeline().before(window)
    first_scan = context.dataset.scan_reports[0]
    active = DiscoveryTimeline.from_events(
        (t, address) for t, address, _ in first_scan.opens
    )
    union = passive.items() | active.items()

    flow_weights = context.flow_weights_by_address()
    client_weights = context.client_weights_by_address()
    weightings = {
        "unweighted": unit_weights(union),
        "flow-weighted": flow_weights,
        "client-weighted": client_weights,
    }
    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    for method, timeline in (("passive", passive), ("active", active)):
        for label, weights in weightings.items():
            curve = weighted_discovery_curve(
                timeline, weights, 0.0, window, minutes(5), universe=union
            )
            series[f"{method} {label}"] = [(t / 3600.0, v) for t, v in curve]
            t99 = curve_time_to_percent(curve, 99.0)
            metrics[f"{method}_{label.replace('-', '_')}_t99_minutes"] = (
                t99 / 60.0 if t99 is not None else float("inf")
            )
    body = render_series(
        "Figure 1 -- Cumulative server discovery over 12 hours",
        series,
        x_label="hours",
        y_label="% of union found",
    )
    return ExperimentResult(
        experiment_id="figure01",
        title="Figure 1: Weighted and unweighted discovery over 12 hours (Section 4.1.2)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "passive_flow_weighted_t99_minutes": 5.0,
            "passive_client_weighted_t99_minutes": 14.0,
            "active_flow_weighted_t99_minutes": 60.0,
        },
        notes=[
            "Paper: passive finds 99% of flow-weighted servers in 5 "
            "minutes and client-weighted in 14; our simulated traffic "
            "volume is ~100x smaller, so the last percent of weight "
            "sits on relatively quieter servers and the 99% crossing "
            "lands tens of minutes in; the 95% crossings land within "
            "minutes as in the paper, and active still needs over an "
            "hour.",
        ],
    )
