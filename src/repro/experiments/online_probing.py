"""Online probing study: heartbeat vs periodic vs passive-only.

The paper's active side is an offline artifact -- twelve-hourly sweep
reports computed at build time.  The online prober
(:mod:`repro.probe`) moves that work into the stream: probes dispatch
inside the engine's event loop and their evidence lands the moment
each completes.  This experiment asks what that buys, across probe
budgets, on two axes:

* **Completeness** -- how much of the ground-truth server population
  each configuration discovers (passive alone, and the union with each
  probing policy).  Ground truth is a deliberate simulator peek
  (:meth:`~repro.campus.population.CampusPopulation.ground_truth_endpoints`);
  the paper can only compare methods against each other, we can grade
  them absolutely.
* **Evidence freshness** -- how stale each discovered address's most
  recent evidence (passive last-seen or probe last-open) is at stream
  end.  The Heartbeat policy's continuous low-rate probing exists
  precisely to bound this staleness; the 12-hour sweep bounds it at
  half a day plus sweep length; passive-only is unbounded.

Every row is one :class:`~repro.stream.StreamEngine` run over the same
prebuilt dataset with a different ``probe_policy``/``probe_rate``, so
the comparison is apples-to-apples: identical packet stream, identical
passive table, only the active side varies.  Deterministic in
``(dataset, seed, scale, days, rates)`` -- no wall clock anywhere.

Usage::

    python -m repro online_probing [DATASET] --scale 0.05 --days 4 \
        --rates 0.05 0.2 1.0

Not part of ``ALL_EXPERIMENTS``: like ``degradation`` this is an
extension study (its completeness is graded against a ground-truth
peek the paper-reproduction experiments must not use), so it is its
own command rather than a new EXPERIMENTS.md headline table.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.core.report import TextTable
from repro.experiments.common import percent

DEFAULT_DATASET = "DTCP1-18d"
DEFAULT_SCALE = 0.05
DEFAULT_DAYS = 4.0
DEFAULT_RATES = (0.05, 0.2, 1.0)
POLICIES = ("heartbeat", "periodic")


@dataclass(frozen=True)
class ProbingPoint:
    """One run's discovery and freshness outcome."""

    policy: str  # "passive", "heartbeat", or "periodic"
    rate: float  # probes per simulated second (0 for passive)
    probes_issued: int
    sweeps: int
    passive_addresses: int
    active_addresses: int
    union_addresses: int
    completeness_pct: float  # union vs ground truth
    freshness_mean_hours: float  # mean evidence age at stream end
    freshness_max_hours: float


@dataclass
class ProbingResult:
    """The whole comparison: passive baseline plus the policy grid."""

    dataset: str
    seed: int
    scale: float
    days: float
    truth_addresses: int
    baseline: ProbingPoint
    points: list[ProbingPoint] = field(default_factory=list)

    def rows(self) -> list[ProbingPoint]:
        return [self.baseline, *self.points]


def _truth_addresses(dataset) -> set[int]:
    """Ground-truth server addresses for the dataset's protocol."""
    from repro.net.packet import PROTO_TCP, PROTO_UDP

    population = dataset.population
    if dataset.tcp_ports is None or dataset.tcp_ports:
        endpoints = population.ground_truth_endpoints(PROTO_TCP)
    else:
        endpoints = population.ground_truth_endpoints(PROTO_UDP)
    return {address for address, _ in endpoints}


def _evidence_ages_hours(
    end: float,
    union: set[int],
    passive_last_seen: dict[int, float],
    active_last_open: dict[int, float],
) -> list[float]:
    """Age at stream end of each discovered address's newest evidence."""
    from repro.simkernel.clock import hours

    ages = []
    for address in union:
        latest = max(
            passive_last_seen.get(address, float("-inf")),
            active_last_open.get(address, float("-inf")),
        )
        ages.append((end - latest) / hours(1))
    return ages


def measure_point(
    dataset,
    dataset_name: str,
    seed: int,
    scale: float,
    end: float,
    policy: str | None,
    rate: float,
    truth: set[int],
) -> ProbingPoint:
    """Run one stream configuration and grade its evidence."""
    from repro.stream import StreamConfig, StreamEngine

    config = StreamConfig(
        dataset=dataset_name,
        seed=seed,
        scale=scale,
        shards=2,
        end=end,
        probe_policy=policy,
        probe_rate=rate if policy is not None else 0.0,
    )
    result = StreamEngine(config, dataset=dataset).run()
    passive_addresses = result.snapshot.server_addresses()
    passive_last_seen: dict[int, float] = {}
    for (address, _port, _proto), when in result.last_seen.items():
        if address in passive_addresses:
            current = passive_last_seen.get(address)
            if current is None or when > current:
                passive_last_seen[address] = when
    probes = result.snapshot.probes
    if probes is not None:
        active_last_open = dict(probes.last_open)
        probes_issued = probes.issued
        sweeps = len(probes.sweeps)
    else:
        active_last_open = {}
        probes_issued = 0
        sweeps = 0
    union = passive_addresses | set(active_last_open)
    ages = _evidence_ages_hours(
        end, union, passive_last_seen, active_last_open
    )
    return ProbingPoint(
        policy=policy if policy is not None else "passive",
        rate=rate if policy is not None else 0.0,
        probes_issued=probes_issued,
        sweeps=sweeps,
        passive_addresses=len(passive_addresses),
        active_addresses=len(active_last_open),
        union_addresses=len(union),
        completeness_pct=percent(len(union), len(truth)),
        freshness_mean_hours=(sum(ages) / len(ages)) if ages else 0.0,
        freshness_max_hours=max(ages) if ages else 0.0,
    )


def run_online_probing(
    dataset_name: str = DEFAULT_DATASET,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    days: float = DEFAULT_DAYS,
    rates: tuple[float, ...] = DEFAULT_RATES,
) -> ProbingResult:
    """The full comparison: one passive run plus policies x rates.

    The dataset builds once and every run replays the identical stream
    prefix over it; probe outcomes are pure functions of (address,
    port, time), so rows are independent and the whole result is
    deterministic in the arguments.
    """
    if not rates:
        raise ValueError("need at least one probe rate")
    if any(rate <= 0 for rate in rates):
        raise ValueError("probe rates must be positive (passive-only is "
                         "always measured as the baseline)")
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    from repro.datasets import build_dataset
    from repro.simkernel.clock import days as days_to_seconds

    dataset = build_dataset(dataset_name, seed=seed, scale=scale)
    end = min(days_to_seconds(days), dataset.duration)
    truth = _truth_addresses(dataset)
    baseline = measure_point(
        dataset, dataset_name, seed, scale, end, None, 0.0, truth
    )
    points = [
        measure_point(
            dataset, dataset_name, seed, scale, end, policy, rate, truth
        )
        for policy in POLICIES
        for rate in rates
    ]
    return ProbingResult(
        dataset=dataset_name,
        seed=seed,
        scale=scale,
        days=days,
        truth_addresses=len(truth),
        baseline=baseline,
        points=points,
    )


def online_probing_report(result: ProbingResult) -> str:
    """Render the comparison as a Markdown table."""
    table = TextTable(
        title=(
            f"Online probing: {result.dataset} (seed {result.seed}, "
            f"scale {result.scale:g}, first {result.days:g} days) -- "
            f"{result.truth_addresses} ground-truth server addresses"
        ),
        headers=[
            "Policy", "Rate", "Probes", "Sweeps",
            "Passive", "Active", "Union", "Complete",
            "Fresh mean", "Fresh max",
        ],
    )
    for point in result.rows():
        table.add_row(
            point.policy,
            f"{point.rate:g}/s" if point.rate else "-",
            f"{point.probes_issued:,}" if point.probes_issued else "-",
            str(point.sweeps) if point.sweeps else "-",
            str(point.passive_addresses),
            str(point.active_addresses),
            str(point.union_addresses),
            f"{point.completeness_pct:.1f}%",
            f"{point.freshness_mean_hours:.1f} h",
            f"{point.freshness_max_hours:.1f} h",
        )
    table.add_note(
        "Complete = union of passive and online-probe discovery versus "
        "the simulator's ground-truth server addresses (a deliberate "
        "peek the paper could not make).  Freshness is the age, at "
        "stream end, of each discovered address's newest evidence "
        "(passive last-seen or probe last-open): heartbeat's "
        "continuous probing bounds staleness at any rate, the periodic "
        "sweep bounds it at roughly the 12-hour period, passive-only "
        "is unbounded."
    )
    return table.render()


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the study's arguments (shared with ``python -m repro``)."""
    parser.add_argument("dataset", nargs="?", default=DEFAULT_DATASET)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument(
        "--days", type=float, default=DEFAULT_DAYS,
        help="measure only the first N simulated days (default %g)"
             % DEFAULT_DAYS,
    )
    parser.add_argument(
        "--rates", type=float, nargs="+",
        default=list(DEFAULT_RATES), metavar="PPS",
        help="probe budgets to sweep, in probes per simulated second",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the report to this file",
    )


def run_from_args(args: argparse.Namespace) -> int:
    result = run_online_probing(
        dataset_name=args.dataset,
        seed=args.seed,
        scale=args.scale,
        days=args.days,
        rates=tuple(args.rates),
    )
    report = online_probing_report(result)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
