"""Figure 3: 90-day vs 18-day passive discovery.

Extends passive monitoring to 90 days (DTCP1-90d carries no active
scans, matching the paper, whose active measurements cover only the
18-day window).  Over static addresses discovery nearly flattens -- one
new server every ~12 hours by the end -- while over all addresses
churn keeps the curve climbing.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import cumulative_curve, discovery_rate
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import days, hours


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    long_run = get_context("DTCP1-90d", seed, scale)
    short_run = get_context("DTCP1-18d", seed, scale)

    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    for label, context in (("90d", long_run), ("18d", short_run)):
        duration = context.dataset.duration
        space = context.dataset.population.topology.space
        passive = context.passive_address_timeline()
        static = passive.restrict(
            a for a in passive.items() if not space.is_transient(a)
        )
        step = hours(12)
        series[f"{label} (all hosts)"] = [
            (t / 86400.0, float(v)) for t, v in cumulative_curve(passive, 0, duration, step)
        ]
        series[f"{label} (static only)"] = [
            (t / 86400.0, float(v)) for t, v in cumulative_curve(static, 0, duration, step)
        ]
        last5 = max(duration - days(5), 0.0)
        metrics[f"{label}_total"] = float(len(passive))
        metrics[f"{label}_static_total"] = float(len(static))
        metrics[f"{label}_all_last5d_per_hour"] = discovery_rate(
            passive, last5, duration
        )
        metrics[f"{label}_static_last5d_per_hour"] = discovery_rate(
            static, last5, duration
        )

    body = render_series(
        "Figure 3 -- Passive discovery over 90 vs 18 days",
        series,
        x_label="days",
        y_label="server addresses discovered",
    )
    return ExperimentResult(
        experiment_id="figure03",
        title="Figure 3: Extended-duration passive monitoring (Section 4.2.2)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            # Paper: static discovery drops to ~1 per 12 hours
            # (0.083/hour) in the last five days of the 90-day run; all-
            # hosts discovery only drops to ~1 per 1.5 hours (0.67/hour).
            "90d_static_last5d_per_hour": 0.083,
            "90d_all_last5d_per_hour": 0.67,
        },
    )
