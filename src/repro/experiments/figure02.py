"""Figure 2: cumulative discovery over 18 days, all vs static addresses.

Four curves: passive and active discovery over all addresses and over
non-transient (static) addresses only.  The signature behaviours:
discovery over all addresses never levels off (address churn), while
static-only discovery nearly does; external scans produce visible
jumps in the passive curve.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import cumulative_curve, discovery_rate
from repro.experiments.common import ExperimentResult, get_context
from repro.simkernel.clock import days, hours


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    duration = context.dataset.duration
    space = context.dataset.population.topology.space

    passive = context.passive_address_timeline()
    active = context.active_address_timeline()
    static_passive = passive.restrict(
        a for a in passive.items() if not space.is_transient(a)
    )
    static_active = active.restrict(
        a for a in active.items() if not space.is_transient(a)
    )

    step = hours(6)
    series = {
        "passive (all hosts)": _to_days(cumulative_curve(passive, 0, duration, step)),
        "active (all hosts)": _to_days(cumulative_curve(active, 0, duration, step)),
        "passive (static only)": _to_days(
            cumulative_curve(static_passive, 0, duration, step)
        ),
        "active (static only)": _to_days(
            cumulative_curve(static_active, 0, duration, step)
        ),
    }
    last5_start = max(duration - days(5), 0.0)
    metrics = {
        "passive_total": float(len(passive)),
        "active_total": float(len(active)),
        "passive_static_total": float(len(static_passive)),
        "active_static_total": float(len(static_active)),
        "passive_all_last5d_per_hour": discovery_rate(passive, last5_start, duration),
        "passive_static_last5d_per_hour": discovery_rate(
            static_passive, last5_start, duration
        ),
        "active_first_scan_share": (
            len(context.dataset.scan_reports[0].open_addresses()) / len(active)
            if len(active)
            else 0.0
        ),
    }
    body = render_series(
        "Figure 2 -- Cumulative server discovery over 18 days",
        series,
        x_label="days",
        y_label="server addresses discovered",
    )
    return ExperimentResult(
        experiment_id="figure02",
        title="Figure 2: Discovery over 18 days, all vs static (Sections 4.2.1, 4.2.3)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            # Paper: ~1 new server/hour over all hosts in the last five
            # days, ~1 per 3 hours over static hosts; 62% of active
            # discoveries come from the first scan.
            "passive_all_last5d_per_hour": 1.0,
            "passive_static_last5d_per_hour": 0.33,
            "active_first_scan_share": 0.62,
        },
    )


def _to_days(points: list[tuple[float, int]]) -> list[tuple[float, float]]:
    return [(t / 86400.0, float(v)) for t, v in points]
