"""Table 5: web-server root-page content breakdown.

For every web server discovered in DTCP1-18d by either method, fetch
its root page within a day of discovery, classify the page with the
signature database, and cross-tabulate content category against which
method(s) found the server.
"""

from __future__ import annotations

from repro.campus.webpages import PageCategory
from repro.core.report import TextTable
from repro.experiments.common import (
    ExperimentResult,
    endpoints_for_port,
    get_context,
    percent,
)
from repro.net.ports import PORT_HTTP
from repro.webclassify.classifier import PageClassifier
from repro.webclassify.fetcher import FetchOutcome, WebFetcher

#: Row label per classification bucket; NO_RESPONSE is a fetch outcome.
ROWS = (
    ("Custom content", PageCategory.CUSTOM),
    ("Default content", PageCategory.DEFAULT),
    ("Minimal content", PageCategory.MINIMAL),
    ("Config/status pages", PageCategory.CONFIG_STATUS),
    ("Database interface", PageCategory.DATABASE),
    ("Restricted content", PageCategory.RESTRICTED),
    ("No response", None),
)

PAPER = {
    "Custom content": dict(total=170, both=151, active_only=0, passive_only=19),
    "Default content": dict(total=493, both=469, active_only=22, passive_only=2),
    "Minimal content": dict(total=11, both=10, active_only=1, passive_only=0),
    "Config/status pages": dict(total=683, both=212, active_only=327, passive_only=144),
    "Database interface": dict(total=61, both=61, active_only=0, passive_only=0),
    "Restricted content": dict(total=17, both=17, active_only=0, passive_only=0),
    "No response": dict(total=685, both=508, active_only=147, passive_only=30),
}


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    dataset = context.dataset

    passive_web = endpoints_for_port(context.passive_endpoint_timeline(), PORT_HTTP)
    active_web = endpoints_for_port(context.active_endpoint_timeline(), PORT_HTTP)
    union_web = passive_web | active_web

    # Discovery time per address = earliest of either method.
    passive_times = {
        item[0]: t
        for item, t in context.table.first_seen.items()
        if item[1] == PORT_HTTP
    }
    active_times: dict[int, float] = {}
    for report in dataset.scan_reports:
        for t, address, port in report.opens:
            if port == PORT_HTTP and (
                address not in active_times or t < active_times[address]
            ):
                active_times[address] = t
    discovery_time = {}
    for address in union_web:
        candidates = [
            t
            for t in (passive_times.get(address), active_times.get(address))
            if t is not None
        ]
        discovery_time[address] = min(candidates)

    fetcher = WebFetcher(dataset.population, seed=seed)
    classifier = PageClassifier()
    buckets: dict[str, dict[str, int]] = {
        label: {"both": 0, "active_only": 0, "passive_only": 0} for label, _ in ROWS
    }
    for address in union_web:
        result = fetcher.fetch_after_discovery(address, discovery_time[address])
        if result.outcome is FetchOutcome.NO_RESPONSE:
            label = "No response"
        else:
            category = classifier.classify(result.page or "")
            label = next(name for name, cat in ROWS if cat is category)
        if address in passive_web and address in active_web:
            buckets[label]["both"] += 1
        elif address in active_web:
            buckets[label]["active_only"] += 1
        else:
            buckets[label]["passive_only"] += 1

    table = TextTable(
        title="Table 5 -- Content served by detected web servers",
        headers=[
            "Page type", "Total", "Both", "Active only", "Passive only",
            "Paper total", "Paper both", "Paper active-only", "Paper passive-only",
        ],
    )
    metrics: dict[str, float] = {}
    for label, _ in ROWS:
        b = buckets[label]
        total = b["both"] + b["active_only"] + b["passive_only"]
        p = PAPER[label]
        table.add_row(
            label, total, b["both"], b["active_only"], b["passive_only"],
            p["total"], p["both"], p["active_only"], p["passive_only"],
        )
        key = label.lower().replace(" ", "_").replace("/", "_")
        metrics[f"{key}_total"] = float(total)
        metrics[f"{key}_passive_only"] = float(b["passive_only"])
        metrics[f"{key}_active_only"] = float(b["active_only"])

    custom = buckets["Custom content"]
    custom_total = sum(custom.values())
    metrics["custom_passive_pct"] = percent(
        custom["both"] + custom["passive_only"], custom_total
    )
    table.add_note(
        "Custom-content servers are the pages passive monitoring finds "
        "essentially completely (the paper reports 100%); the big "
        "'no response' row is dominated by transient addresses that "
        "left the network before the fetch."
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Table 5: Web root-page content breakdown (Section 4.4.1)",
        body=table.render(),
        metrics=metrics,
        paper_values={"custom_passive_pct": 100.0},
    )
