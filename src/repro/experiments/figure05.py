"""Figure 5: discovery grouped by address-block transience.

The DTCP1-18d-trans subset: DHCP, PPP and VPN address blocks analysed
separately, each method's curve expressed as a percentage of that
block class's own passive-union-active ground truth.  The paper's
signatures: DHCP behaves like the general population, PPP *inverts*
(passive ahead of active), and VPN services are found actively but
almost never passively.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.timeline import cumulative_curve
from repro.experiments.common import ExperimentResult, get_context, percent
from repro.net.addr import AddressClass
from repro.simkernel.clock import hours

CLASSES = (AddressClass.DHCP, AddressClass.PPP, AddressClass.VPN)


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCP1-18d", seed, scale)
    duration = context.dataset.duration
    space = context.dataset.population.topology.space

    passive = context.passive_address_timeline()
    active = context.active_address_timeline()

    series: dict[str, list[tuple[float, float]]] = {}
    metrics: dict[str, float] = {}
    step = hours(12)
    for address_class in CLASSES:
        passive_cls = passive.restrict(
            a for a in passive.items() if space.class_of(a) is address_class
        )
        active_cls = active.restrict(
            a for a in active.items() if space.class_of(a) is address_class
        )
        union = len(passive_cls.items() | active_cls.items())
        for method, timeline in (("passive", passive_cls), ("active", active_cls)):
            name = f"{method} {address_class.value.upper()}"
            series[name] = [
                (t / 86400.0, percent(v, union))
                for t, v in cumulative_curve(timeline, 0, duration, step)
            ]
            metrics[f"{method}_{address_class.value}"] = float(len(timeline))
        metrics[f"union_{address_class.value}"] = float(union)

    body = render_series(
        "Figure 5 -- Discovery by transience of address block "
        "(percent of per-class union)",
        series,
        x_label="days",
        y_label="% of class union found",
    )
    vpn_passive = metrics.get("passive_vpn", 0.0)
    vpn_active = metrics.get("active_vpn", 0.0)
    ppp_passive = metrics.get("passive_ppp", 0.0)
    ppp_active = metrics.get("active_ppp", 0.0)
    return ExperimentResult(
        experiment_id="figure05",
        title="Figure 5: Transient hosts (Section 4.4.2)",
        body=body,
        metrics=metrics,
        series=series,
        paper_values={
            "passive_vpn": 10.0,
            "active_vpn": 100.0,
        },
        notes=[
            f"VPN: active found {vpn_active:.0f}, passive {vpn_passive:.0f} "
            "(paper: ~100 vs ~10 -- VPN services are reached via the "
            "hosts' non-VPN addresses).",
            f"PPP: passive {ppp_passive:.0f} vs active {ppp_active:.0f} "
            "(paper: passive finds ~15% more on short-lived PPP hosts).",
        ],
    )
