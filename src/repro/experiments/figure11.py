"""Figure 11: scatter of open ports across lab-subnet hosts.

The paper plots (host, port) points for DTCPall, coloured by which
method found them.  A text report can't scatter-plot, so we reproduce
the underlying data two ways: the per-port discovery bands (how many
hosts had each service, by method) and summary metrics for the bands
the paper annotates (SSH/FTP found passively only via external scans;
epmap/NT services active-only; a few passive-only births and
ephemeral high ports).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.report import TextTable
from repro.experiments.common import ExperimentResult, get_context
from repro.net.ports import service_name


def run(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    context = get_context("DTCPall", seed, scale)
    passive = context.passive_endpoint_timeline()
    active = context.active_endpoint_timeline()

    per_port: dict[int, dict[str, set[int]]] = defaultdict(
        lambda: {"passive": set(), "active": set()}
    )
    for (address, port, *_rest) in passive.first_seen:
        per_port[port]["passive"].add(address)
    for (address, port) in active.first_seen:
        per_port[port]["active"].add(address)

    table = TextTable(
        title="Figure 11 -- Open ports by host count and method (DTCPall)",
        headers=[
            "Port", "Service", "Hosts (union)", "Active", "Passive",
            "Active only", "Passive only",
        ],
    )
    metrics: dict[str, float] = {}
    for port in sorted(per_port):
        sets = per_port[port]
        union = sets["passive"] | sets["active"]
        table.add_row(
            port,
            service_name(port),
            len(union),
            len(sets["active"]),
            len(sets["passive"]),
            len(sets["active"] - sets["passive"]),
            len(sets["passive"] - sets["active"]),
        )
    for port, label in ((22, "ssh"), (21, "ftp"), (135, "epmap"), (80, "web")):
        sets = per_port.get(port, {"passive": set(), "active": set()})
        union = sets["passive"] | sets["active"]
        metrics[f"{label}_union"] = float(len(union))
        metrics[f"{label}_passive"] = float(len(sets["passive"]))
        metrics[f"{label}_active"] = float(len(sets["active"]))
        metrics[f"{label}_passive_only"] = float(
            len(sets["passive"] - sets["active"])
        )
    high_ports_passive_only = sum(
        1
        for port, sets in per_port.items()
        if port > 1024 and port not in (3306, 6000, 7100)
        and sets["passive"] and not sets["active"]
    )
    metrics["high_port_passive_only"] = float(high_ports_passive_only)
    table.add_note(
        "SSH and FTP columns show passive catching up with active "
        "thanks to external scans; the epmap/NT band is active-only "
        "(local services); passive-only web rows are servers born "
        "after the single scan."
    )
    return ExperimentResult(
        experiment_id="figure11",
        title="Figure 11: Open-port scatter, DTCPall (Section 5.4)",
        body=table.render(),
        metrics=metrics,
        paper_values={
            "web_passive_only": 6.0,   # six web servers born after the scan
            "epmap_passive": 0.0,
        },
    )
