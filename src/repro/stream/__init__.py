"""Online streaming discovery: sharded ingestion, watermarks, checkpoints.

The batch pipeline answers "what did we know at hour H" by replaying
the whole trace from zero; this subsystem answers it *live*.  Records
flow through a sharded pipeline partitioned by campus server address
(:mod:`.shard`), a bounded-queue ingestor keeps memory flat regardless
of trace length (:mod:`.ingest`), periodic watermarks expose windowed
completeness mid-stream (:mod:`.watermark`), and versioned atomic
checkpoints make a killed run resumable (:mod:`.checkpoint`).  The
engine (:mod:`.engine`) ties the pieces together and merges shard
states into the ordinary report structures -- byte-identical to the
batch path on the same (seed, scale, faults) configuration.

With ``StreamConfig.probe_policy`` set, the engine (and the process
fabric) also run the active side online: a
:class:`repro.probe.ProbeScheduler` dispatches seeded probes inside
the event loop, and watermarks, checkpoints, snapshots and the final
report read its live evidence instead of build-time scan reports.

Entry point: ``python -m repro stream DATASET --shards N``
(``--probe-policy periodic|heartbeat --probe-rate R`` for online
probing).
"""

from repro.stream.checkpoint import (
    STREAM_CHECKPOINT_VERSION,
    CheckpointCorrupt,
    CheckpointError,
    RestorePlan,
    ShardCheckpointStore,
    ShardRestore,
    checkpoint_config,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.engine import (
    StreamConfig,
    StreamEngine,
    StreamResult,
    batch_survey_report,
    finalize_result,
)
from repro.stream.fabric import (
    FabricConfig,
    FabricDegradedError,
    FabricError,
    FabricSupervisor,
)
from repro.stream.ingest import (
    DEFAULT_MAX_QUEUE_CHUNKS,
    IngestStallError,
    ShardWorkerError,
    StreamIngestor,
)
from repro.stream.membership import Member, Membership
from repro.stream.shard import (
    ShardState,
    merge_shards,
    merged_last_seen,
    owning_address,
    shard_of,
    split_batch,
)
from repro.stream.watermark import (
    ActiveTimeline,
    Watermark,
    emit_schedule,
    windowed_summary,
)

__all__ = [
    "ActiveTimeline",
    "CheckpointCorrupt",
    "CheckpointError",
    "DEFAULT_MAX_QUEUE_CHUNKS",
    "FabricConfig",
    "FabricDegradedError",
    "FabricError",
    "FabricSupervisor",
    "IngestStallError",
    "Member",
    "Membership",
    "RestorePlan",
    "STREAM_CHECKPOINT_VERSION",
    "ShardCheckpointStore",
    "ShardRestore",
    "ShardState",
    "ShardWorkerError",
    "StreamConfig",
    "StreamEngine",
    "StreamIngestor",
    "StreamResult",
    "Watermark",
    "batch_survey_report",
    "checkpoint_config",
    "emit_schedule",
    "finalize_result",
    "load_checkpoint",
    "merge_shards",
    "merged_last_seen",
    "owning_address",
    "save_checkpoint",
    "shard_of",
    "split_batch",
    "windowed_summary",
]
