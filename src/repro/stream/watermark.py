"""Watermarks: windowed completeness read off a live stream.

A *watermark* is the engine's statement that every record with
``time <= t`` has been folded into shard state.  Because the border
stream is time-ordered and the engine drains its shard queues before
emitting, the merged passive state at a watermark is exactly the state
a batch replay truncated at ``t`` would have produced -- so the paper's
"what did we know at hour H" questions (the Figure 2 / Table 2 curves)
can be answered mid-stream without replaying from zero.

Active-scan results are materialised at build time (as the paper's
Nmap logs were), so the active side of a windowed summary is a pure
function of time: :class:`ActiveTimeline` pre-sorts every endpoint's
first-open probe time and advances an index as watermarks move
forward, O(new events) per emission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.active.results import ScanReport, UdpScanReport, first_open_times
from repro.core.completeness import CompletenessSummary, summarize_overlap


class ActiveTimeline:
    """Incremental view of active discovery up to a moving watermark.

    Feeds on the dataset's scan reports once; ``addresses_by(t)`` then
    returns the set of addresses actively discovered by time *t*.
    Watermarks are monotone, so the timeline keeps a cursor into its
    sorted event list and only folds in newly passed events.
    """

    def __init__(
        self,
        scan_reports: list[ScanReport],
        udp_report: UdpScanReport | None = None,
    ) -> None:
        first = first_open_times(scan_reports)
        if udp_report is not None:
            # The generic UDP sweep records endpoints, not probe times;
            # its findings exist from the sweep's end.
            for endpoint in udp_report.open_endpoints():
                when = udp_report.end
                if endpoint not in first or when < first[endpoint]:
                    first[endpoint] = when
        self._events = sorted(
            (when, address) for (address, _port), when in first.items()
        )
        self._cursor = 0
        self._known: set[int] = set()

    def addresses_by(self, t: float) -> set[int]:
        """Addresses with an active-scan open discovered at or before *t*."""
        events = self._events
        cursor = self._cursor
        known = self._known
        while cursor < len(events) and events[cursor][0] <= t:
            known.add(events[cursor][1])
            cursor += 1
        self._cursor = cursor
        return known

    @property
    def total_addresses(self) -> int:
        return len({address for _, address in self._events})


@dataclass(frozen=True)
class Watermark:
    """One emitted completeness reading.

    Attributes
    ----------
    time:
        Stream time the mark covers (every record at or before it is in).
    records:
        Records delivered to the shards so far (post-fault-filter).
    summary:
        Passive/active overlap at this instant, the same structure the
        final report renders.
    """

    time: float
    records: int
    summary: CompletenessSummary

    def render(self) -> str:
        """One-line progress form, stable for logs and smoke greps."""
        s = self.summary
        return (
            f"watermark t={self.time / 3600.0:.1f}h records={self.records:,} "
            f"union={s.union} both={s.both} "
            f"active_only={s.active_only} passive_only={s.passive_only}"
        )


def emit_schedule(duration: float, every_seconds: float) -> list[float]:
    """The watermark times for a stream of *duration* seconds.

    Marks fall every *every_seconds* with the stream end always
    included, so the last watermark coincides with the final report.
    """
    if every_seconds <= 0:
        raise ValueError("emission interval must be positive")
    marks: list[float] = []
    t = every_seconds
    while t < duration:
        marks.append(t)
        t += every_seconds
    marks.append(duration)
    return marks


def windowed_summary(
    passive_addresses: set[int],
    active: ActiveTimeline,
    t: float,
) -> CompletenessSummary:
    """Overlap summary at watermark time *t* (passive state is live)."""
    return summarize_overlap(passive_addresses, set(active.addresses_by(t)))
