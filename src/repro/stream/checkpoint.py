"""Versioned, atomic, integrity-checked checkpoints of stream state.

A checkpoint captures everything a killed stream run needs to resume
*bit-identically*: the raw source offset (records read, always a batch
boundary), per-shard discovery state, the fault filter's per-link loss
processes, and the watermark emission cursor.  Snapshots are plain
pickled dicts -- shard state is exported via ``state_dict()`` rather
than pickling live objects, since the passive table's campus predicate
is an unpicklable closure (and reconstructing from config keeps old
checkpoints loadable as code evolves).

Two durability layers protect every artifact this module writes:

* **Atomic, fsynced writes.**  Data goes to a tmp file that is fsynced
  and ``os.replace``d into place, and then the *parent directory* is
  fsynced too -- the rename itself is metadata, and a crash right after
  ``os.replace`` could otherwise roll the directory entry back to the
  old (or no) file on power loss.
* **A length + CRC32 trailer.**  Every file ends with an 8-byte
  ``(payload length, crc32)`` trailer checked before unpickling, so a
  truncated or bit-flipped checkpoint surfaces as a clear
  :class:`CheckpointCorrupt` naming the file instead of a raw
  ``UnpicklingError``/``EOFError`` from deep inside pickle.

Beyond the single-file snapshot the threaded engine writes
(:func:`save_checkpoint` / :func:`load_checkpoint`), this module
provides the fabric's **per-shard checkpoint store**
(:class:`ShardCheckpointStore`): each worker process writes its own
``shard-SSS.gen-GGGGGG.ckpt`` file, and the supervisor commits a
``manifest.gen-GGGGGG.ckpt`` naming the generation only after every
shard acked -- so a generation is either fully committed or invisible.
The store retains the last ``keep_generations`` committed generations;
a corrupt file in the newest generation falls back to the previous
good one (the caller replays the wider source gap to catch up).

The format carries a version field; loaders reject unknown versions
and config mismatches loudly instead of resuming a stream they cannot
faithfully continue.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

#: Bump when the snapshot layout changes incompatibly.  Version 2 added
#: the length+CRC32 integrity trailer (version-1 files, having no
#: trailer, now read as corrupt -- checkpoints are ephemeral run state,
#: never long-lived artifacts).
STREAM_CHECKPOINT_VERSION = 2

#: Integrity trailer: little-endian (payload length, CRC32 of payload).
_TRAILER = struct.Struct("<II")

_SHARD_FILE = "shard-{shard:03d}.gen-{generation:06d}.ckpt"
_MANIFEST_FILE = "manifest.gen-{generation:06d}.ckpt"
_MANIFEST_RE = re.compile(r"^manifest\.gen-(\d{6})\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used to resume this run."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed its integrity check (names the file)."""

    def __init__(self, path: "str | Path", detail: str) -> None:
        super().__init__(f"checkpoint {path} is corrupt: {detail}")
        self.path = Path(path)
        self.detail = detail


def checkpoint_config(
    dataset: str, seed: int, scale: float, shards: int, fault_digest: str | None,
    probe: dict | None = None,
) -> dict:
    """The identity a checkpoint is only valid for (compared on load).

    *probe* is the online-probing identity (policy name, rate, port
    list) when the run probes online; it joins the identity only then,
    so passive checkpoints keep their existing shape and an online
    checkpoint can never resume a passive run (or vice versa, or an
    online run under a different probe schedule).
    """
    identity = {
        "dataset": dataset,
        "seed": seed,
        "scale": repr(scale),
        "shards": shards,
        "fault_digest": fault_digest,
    }
    if probe is not None:
        identity["probe"] = probe
    return identity


# ---- framing and durable writes ---------------------------------------


def _frame(data: bytes) -> bytes:
    """Append the length+CRC32 integrity trailer to *data*."""
    return data + _TRAILER.pack(len(data), zlib.crc32(data))


def _unframe(raw: bytes, path: "str | Path") -> bytes:
    """Strip and verify the trailer; raise :class:`CheckpointCorrupt`."""
    if len(raw) < _TRAILER.size:
        raise CheckpointCorrupt(
            path, f"only {len(raw)} bytes, shorter than the integrity trailer"
        )
    data = raw[: -_TRAILER.size]
    length, crc = _TRAILER.unpack(raw[-_TRAILER.size:])
    if length != len(data):
        raise CheckpointCorrupt(
            path,
            f"trailer says {length} payload bytes but file holds "
            f"{len(data)} (truncated or torn write)",
        )
    if crc != zlib.crc32(data):
        raise CheckpointCorrupt(path, "CRC32 mismatch (bit flip or torn write)")
    return data


def fsync_directory(directory: "str | Path") -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_atomic(path: "str | Path", data: bytes) -> int:
    """Durably write *data* to *path*: tmp + fsync + rename + dir fsync.

    The temporary file lives next to the target so ``os.replace`` is a
    same-filesystem rename (atomic on POSIX); fsyncing the parent
    directory afterwards makes the rename itself durable -- without it
    a crash right after the rename can lose the new directory entry
    even though the file's blocks hit the platter.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fileobj:
        fileobj.write(data)
        fileobj.flush()
        os.fsync(fileobj.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return len(data)


def _dump(payload: dict) -> bytes:
    return _frame(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _load_payload(path: "str | Path") -> dict:
    """Read, integrity-check, and unpickle one checkpoint file."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    data = _unframe(raw, path)
    try:
        payload = pickle.loads(data)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointCorrupt(
            path, f"payload passed CRC but does not unpickle: {exc!r}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointCorrupt(
            path, f"payload is {type(payload).__name__}, expected dict"
        )
    return payload


def _validate(payload: dict, path: "str | Path", config: dict | None) -> dict:
    version = payload.get("version")
    if version != STREAM_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; "
            f"this build reads version {STREAM_CHECKPOINT_VERSION}"
        )
    if config is not None:
        saved = payload.get("config")
        if saved != config:
            raise CheckpointError(
                f"checkpoint {path} was taken under a different run identity: "
                f"saved {saved!r}, current {config!r}"
            )
    return payload


# ---- the single-file snapshot (threaded engine) -----------------------


def save_checkpoint(path: "str | Path", payload: dict) -> int:
    """Atomically write *payload* as the new checkpoint; return its size."""
    payload = dict(payload, version=STREAM_CHECKPOINT_VERSION)
    return write_atomic(path, _dump(payload))


def load_checkpoint(path: "str | Path", config: dict) -> dict:
    """Load and validate a checkpoint against this run's *config*.

    Raises :class:`CheckpointCorrupt` when the file fails its
    length/CRC32 trailer or does not unpickle, and the broader
    :class:`CheckpointError` when its version is unknown or it was
    taken under a different (dataset, seed, scale, shards, faults)
    identity.
    """
    return _validate(_load_payload(path), path, config)


# ---- the per-shard store (fabric) -------------------------------------


@dataclass(frozen=True)
class ShardRestore:
    """Where one shard's state can be restored from.

    ``state`` is the shard's ``state_dict`` snapshot (``None`` means no
    usable checkpoint survives: start fresh).  ``records_read`` is the
    global source offset the state corresponds to and ``faults`` the
    capture filter's state at that offset -- together they let the
    supervisor replay exactly the gap ``[records_read, now)`` from the
    trace to catch the shard up.
    """

    shard: int
    state: dict | None
    records_read: int
    faults: dict | None

    @property
    def fresh(self) -> bool:
        return self.state is None


@dataclass(frozen=True)
class RestorePlan:
    """A full supervisor restore: the resume point plus per-shard bases.

    ``manifest`` is the newest committed manifest (run progress resumes
    from it); each entry of ``shards`` may sit at an older generation
    (its newest file was corrupt) or at generation zero (fresh), in
    which case the supervisor replays the source gap up to the
    manifest's offset before resuming the live stream.
    """

    generation: int
    manifest: dict
    shards: tuple[ShardRestore, ...]


class ShardCheckpointStore:
    """Per-shard checkpoint files plus generation manifests, in one dir.

    Layout::

        <root>/shard-003.gen-000007.ckpt   one file per shard per generation
        <root>/manifest.gen-000007.ckpt    commit record for generation 7

    Workers write their own shard files (the supervisor never touches
    shard state); the supervisor writes the manifest last, so the
    manifest's existence *is* the commit.  ``keep_generations``
    committed generations are retained, giving corruption fallback one
    generation of slack by default.
    """

    def __init__(self, root: "str | Path", keep_generations: int = 2) -> None:
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.root = Path(root)
        self.keep_generations = keep_generations

    # ---- paths --------------------------------------------------------

    def shard_path(self, shard: int, generation: int) -> Path:
        return self.root / _SHARD_FILE.format(shard=shard, generation=generation)

    def manifest_path(self, generation: int) -> Path:
        return self.root / _MANIFEST_FILE.format(generation=generation)

    def generations(self) -> list[int]:
        """Committed (manifest-bearing) generations, newest first."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            match = _MANIFEST_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found, reverse=True)

    # ---- writes -------------------------------------------------------

    def save_shard(
        self, shard: int, generation: int, config: dict, state: dict
    ) -> Path:
        """Write one shard's snapshot for *generation* (worker side)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(shard, generation)
        payload = {
            "version": STREAM_CHECKPOINT_VERSION,
            "config": config,
            "shard": shard,
            "generation": generation,
            "state": state,
        }
        write_atomic(path, _dump(payload))
        return path

    def save_manifest(
        self, generation: int, config: dict, progress: dict
    ) -> Path:
        """Commit *generation*: write its manifest, then prune old ones.

        Call only after every shard of the generation acked its file;
        the manifest carries the run-level progress (source offset,
        delivered count, stream time, watermarks, fault-filter state)
        that defines what the shard files are a consistent cut of.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.manifest_path(generation)
        payload = {
            "version": STREAM_CHECKPOINT_VERSION,
            "config": config,
            "generation": generation,
        }
        payload.update(progress)
        write_atomic(path, _dump(payload))
        self.prune(generation)
        return path

    def prune(self, newest_generation: int) -> None:
        """Drop generations older than the retained window (best effort)."""
        keep_from = newest_generation - self.keep_generations + 1
        if not self.root.is_dir():
            return
        for entry in list(self.root.iterdir()):
            match = re.search(r"\.gen-(\d{6})\.ckpt$", entry.name)
            if match and int(match.group(1)) < keep_from:
                try:
                    entry.unlink()
                except OSError:
                    pass
            elif entry.name.endswith(".tmp"):
                # Torn write from a killed worker; never referenced.
                try:
                    entry.unlink()
                except OSError:
                    pass

    def clear(self) -> None:
        """Remove every checkpoint artifact (the clean-finish path)."""
        if not self.root.is_dir():
            return
        for entry in list(self.root.iterdir()):
            if entry.name.endswith((".ckpt", ".tmp")):
                try:
                    entry.unlink()
                except OSError:
                    pass
        try:
            self.root.rmdir()
        except OSError:
            pass  # directory shared or not empty: leave it

    # ---- reads --------------------------------------------------------

    def load_manifest(self, generation: int, config: dict | None) -> dict:
        path = self.manifest_path(generation)
        payload = _validate(_load_payload(path), path, config)
        if payload.get("generation") != generation:
            raise CheckpointCorrupt(
                path,
                f"manifest claims generation {payload.get('generation')!r}",
            )
        return payload

    def load_shard(self, shard: int, generation: int, config: dict | None) -> dict:
        path = self.shard_path(shard, generation)
        payload = _validate(_load_payload(path), path, config)
        if payload.get("shard") != shard or payload.get("generation") != generation:
            raise CheckpointCorrupt(
                path,
                f"file claims shard {payload.get('shard')!r} generation "
                f"{payload.get('generation')!r}",
            )
        return payload

    def restore_shard(
        self, shard: int, config: dict, upto_generation: int
    ) -> ShardRestore:
        """The newest usable snapshot of *shard* at or below a generation.

        Walks committed generations newest-first; a corrupt shard file
        (or corrupt manifest) falls back to the previous good
        generation, and when nothing survives the shard restarts fresh
        from offset zero -- the supervisor replays the difference.
        """
        for generation in self.generations():
            if generation > upto_generation:
                continue
            try:
                manifest = self.load_manifest(generation, config)
                payload = self.load_shard(shard, generation, config)
            except CheckpointError:
                continue
            return ShardRestore(
                shard=shard,
                state=payload["state"],
                records_read=int(manifest["records_read"]),
                faults=manifest.get("faults"),
            )
        return ShardRestore(shard=shard, state=None, records_read=0, faults=None)

    def plan_restore(self, config: dict) -> RestorePlan | None:
        """The full restore for a resumed supervisor, or ``None``.

        Picks the newest committed generation whose manifest loads and
        matches *config* as the resume point, then restores each shard
        from the newest generation (at or below it) whose files
        verify.  Returns ``None`` when no usable manifest exists --
        the caller cold-starts.
        """
        shards = int(config["shards"])
        for generation in self.generations():
            try:
                manifest = self.load_manifest(generation, config)
            except CheckpointError:
                continue
            return RestorePlan(
                generation=generation,
                manifest=manifest,
                shards=tuple(
                    self.restore_shard(shard, config, generation)
                    for shard in range(shards)
                ),
            )
        return None
