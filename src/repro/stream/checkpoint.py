"""Versioned, atomic checkpoints of a stream run's state.

A checkpoint captures everything a killed stream run needs to resume
*bit-identically*: the raw source offset (records read, always a batch
boundary), per-shard discovery state, the fault filter's per-link loss
processes, and the watermark emission cursor.  Snapshots are plain
pickled dicts -- shard state is exported via ``state_dict()`` rather
than pickling live objects, since the passive table's campus predicate
is an unpicklable closure (and reconstructing from config keeps old
checkpoints loadable as code evolves).

Writes are atomic (tmp file + ``os.replace`` in the same directory),
so a SIGKILL mid-write leaves the previous checkpoint intact -- the
kill/resume smoke test fires signals at arbitrary points and must
always find either the old or the new snapshot, never a torn one.

The format carries a version field; :func:`load_checkpoint` rejects
unknown versions and config mismatches loudly instead of resuming a
stream it cannot faithfully continue.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

#: Bump when the snapshot layout changes incompatibly.
STREAM_CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used to resume this run."""


def checkpoint_config(
    dataset: str, seed: int, scale: float, shards: int, fault_digest: str | None
) -> dict:
    """The identity a checkpoint is only valid for (compared on load)."""
    return {
        "dataset": dataset,
        "seed": seed,
        "scale": repr(scale),
        "shards": shards,
        "fault_digest": fault_digest,
    }


def save_checkpoint(path: str | Path, payload: dict) -> int:
    """Atomically write *payload* as the new checkpoint; return its size.

    The temporary file lives next to the target so ``os.replace`` is a
    same-filesystem rename (atomic on POSIX).
    """
    path = Path(path)
    payload = dict(payload, version=STREAM_CHECKPOINT_VERSION)
    tmp = path.with_name(path.name + ".tmp")
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    with open(tmp, "wb") as fileobj:
        fileobj.write(data)
        fileobj.flush()
        os.fsync(fileobj.fileno())
    os.replace(tmp, path)
    return len(data)


def load_checkpoint(path: str | Path, config: dict) -> dict:
    """Load and validate a checkpoint against this run's *config*.

    Raises :class:`CheckpointError` when the file is unreadable, its
    version is unknown, or it was taken under a different
    (dataset, seed, scale, shards, faults) identity.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fileobj:
            payload = pickle.load(fileobj)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    version = payload.get("version")
    if version != STREAM_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; "
            f"this build reads version {STREAM_CHECKPOINT_VERSION}"
        )
    saved = payload.get("config")
    if saved != config:
        raise CheckpointError(
            f"checkpoint {path} was taken under a different run identity: "
            f"saved {saved!r}, current {config!r}"
        )
    return payload
