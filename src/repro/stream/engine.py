"""The streaming discovery engine: run loop, resume, and final merge.

:class:`StreamEngine` consumes a dataset's border capture as an
unbounded stream of record batches -- from the record-once trace cache
when a recording exists (:func:`repro.trace.format.read_records_chunked`
with a seek past the resume offset), regenerated from the traffic model
otherwise -- and drives the sharded pipeline end to end:

1. the driving thread reads one batch, applies the run's fault filter
   (capture loss and monitor outages, in stream order -- the same drop
   pattern the batch path produces), routes it with
   :func:`repro.stream.shard.split_batch`, and hands the parts to the
   :class:`repro.stream.ingest.StreamIngestor`;
2. when stream time crosses an emission mark, the engine drains the
   shard queues and emits a :class:`repro.stream.watermark.Watermark`
   -- windowed completeness without replay;
3. when stream time crosses a checkpoint mark, it drains and writes an
   atomic versioned snapshot (:mod:`repro.stream.checkpoint`), so a
   killed run resumes from the last checkpoint and converges to the
   identical final report;
4. at end of stream the shard states merge into one ordinary
   :class:`~repro.passive.monitor.PassiveServiceTable` and the final
   report renders through the same function as ``python -m repro
   survey`` -- byte-identical to the batch path on the same
   (seed, scale, faults).

Memory is flat in trace length: the engine holds one decoded batch
plus the bounded shard queues; nothing retains the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator

from repro.active.results import union_open_endpoints
from repro.core.completeness import CompletenessSummary, summarize_overlap
from repro.core.report import survey_table
from repro.net.packet import PacketRecord
from repro.passive.monitor import Endpoint, PassiveServiceTable
from repro.probe import POLICY_NAMES, build_prober
from repro.query.snapshot import DiscoverySnapshot, snapshot_states
from repro.stream.checkpoint import (
    checkpoint_config,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.ingest import DEFAULT_MAX_QUEUE_CHUNKS, StreamIngestor
from repro.stream.shard import (
    ShardState,
    merge_shards,
    merged_last_seen,
    split_batch,
    split_columns,
)
from repro.stream.watermark import ActiveTimeline, Watermark, emit_schedule
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.telemetry.tracing import tracer as _tracer
from repro.trace.cache import default_trace_cache
from repro.trace.columnar import read_trace_columns
from repro.trace.format import DEFAULT_BATCH_RECORDS, read_records_chunked


@dataclass(frozen=True)
class StreamConfig:
    """Everything one stream run is a function of.

    ``emit_every`` and ``checkpoint_every`` are in dataset seconds
    (the CLI converts from sim-hours); ``None`` disables periodic
    emission (a final watermark at end of stream is always produced)
    or checkpointing respectively.  ``end`` truncates the stream (the
    memory-flatness test compares 1x vs 4x duration); ``None`` streams
    the dataset's full observation.
    """

    dataset: str
    seed: int = 0
    scale: float = 1.0
    shards: int = 1
    batch_records: int = DEFAULT_BATCH_RECORDS
    emit_every: float | None = None
    checkpoint_every: float | None = None
    checkpoint_path: str | None = None
    max_queue_chunks: int = DEFAULT_MAX_QUEUE_CHUNKS
    faults: object | None = None
    end: float | None = None
    #: Publish a query snapshot every this many dataset seconds (needs a
    #: ``publisher`` passed to :meth:`StreamEngine.run`).  Like
    #: ``emit_every`` this is outside the checkpoint identity: it only
    #: controls how often read-side copies are taken, never the result.
    snapshot_every: float | None = None
    #: Consume the cached trace as zero-copy column batches (vectorised
    #: routing and shard folding).  Off, the engine decodes
    #: ``PacketRecord`` lists as before; results are byte-identical
    #: either way, so this is purely a throughput switch.
    columnar: bool = True
    #: Online probing policy (``"periodic"`` or ``"heartbeat"``); None
    #: streams passively against build-time scan reports, exactly as
    #: before.  With a policy set, the run's active side comes
    #: exclusively from the in-stream :class:`repro.probe.ProbeScheduler`
    #: -- watermarks, the final report, and published snapshots all
    #: read its live evidence.
    probe_policy: str | None = None
    #: Probes per second: the heartbeat's uniform rate, the periodic
    #: sweep's polite-timing cap.  0 (the default) schedules no probes
    #: -- an online run at rate 0 is byte-identical to the passive path.
    probe_rate: float = 0.0
    #: Ports to probe; None means the dataset's watched port list.
    probe_ports: tuple | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.snapshot_every is not None and self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        if self.probe_policy is not None and self.probe_policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown probe policy {self.probe_policy!r}; "
                f"expected one of {POLICY_NAMES}"
            )
        if self.probe_rate < 0:
            raise ValueError("probe_rate must be >= 0")
        if self.probe_ports is not None and not self.probe_ports:
            raise ValueError("probe_ports must be None or non-empty")

    def probe_identity(self) -> dict | None:
        """The online-probing part of the checkpoint identity.

        Everything the probe schedule is a pure function of (beyond
        the dataset/seed/scale already in the identity): policy, rate
        (keyed by ``repr`` like the scale), and the explicit port list.
        ``None`` when probing is off, keeping passive checkpoint
        identities exactly as they were.
        """
        if self.probe_policy is None:
            return None
        return {
            "policy": self.probe_policy,
            "rate": repr(float(self.probe_rate)),
            "ports": (
                sorted(self.probe_ports)
                if self.probe_ports is not None
                else None
            ),
        }


@dataclass
class StreamResult:
    """What a stream run produced.

    ``finished`` is False only for runs stopped early via
    ``stop_after_records`` (the in-process kill simulation); such
    results carry progress counters but no report.
    """

    finished: bool
    records_read: int
    records_delivered: int
    checkpoints_written: int
    resumed: bool
    watermarks: list[Watermark] = field(default_factory=list)
    summary: CompletenessSummary | None = None
    report: str | None = None
    table: PassiveServiceTable | None = None
    last_seen: dict[Endpoint, float] = field(default_factory=dict)
    #: The final merged state as the query path's snapshot structure --
    #: the same object type the live service answers from, so a query
    #: response and this result cannot disagree.
    snapshot: DiscoverySnapshot | None = None


def finalize_result(
    config: StreamConfig,
    dataset,
    states: list[ShardState],
    watermarks: list[Watermark],
    records_read: int,
    records_delivered: int,
    checkpoints_written: int,
    resumed: bool,
    now: float = 0.0,
    probes=None,
) -> StreamResult:
    """Merge drained shard states and render the final report.

    The single funnel every streaming front-end finishes through --
    the threaded engine and the process fabric both call this, so
    "byte-identical to batch" is one code path, not a convention.
    The completeness summary is computed from the *query snapshot's*
    view of the merged state (:func:`snapshot_states`), so the rendered
    report and an exhaustive ``/services`` query share one aggregation.

    *probes* is the run's :class:`~repro.probe.ProbeScheduler` when it
    probed online (advanced to the stream end by the caller); its live
    evidence then replaces the build-time scan reports as the report's
    active side, and the scan count is the sweeps it completed.
    """
    merged = merge_shards(
        states,
        PassiveServiceTable(
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
        ),
    )
    snapshot = snapshot_states(
        states, now=now, records=records_delivered, watermarks=watermarks,
        probes=probes.view() if probes is not None else None,
    )
    if probes is not None:
        active_addresses = probes.open_addresses()
        scans = probes.sweeps_recorded()
    else:
        active_addresses = {
            address for address, _ in union_open_endpoints(dataset.scan_reports)
        }
        if dataset.udp_report is not None:
            active_addresses |= {
                address for address, _ in dataset.udp_report.open_endpoints()
            }
        scans = len(dataset.scan_reports)
    summary = summarize_overlap(snapshot.server_addresses(), active_addresses)
    report = survey_table(
        config.dataset, config.scale, config.seed,
        records_delivered, scans, summary,
    ).render()
    return StreamResult(
        finished=True,
        records_read=records_read,
        records_delivered=records_delivered,
        checkpoints_written=checkpoints_written,
        resumed=resumed,
        watermarks=watermarks,
        summary=summary,
        report=report,
        table=merged,
        last_seen=merged_last_seen(states),
        snapshot=snapshot,
    )


def _batched(
    stream: Iterator[PacketRecord], size: int
) -> Iterator[list[PacketRecord]]:
    """Chunk a record iterator into lists of *size* (last may be short)."""
    batch: list[PacketRecord] = []
    append = batch.append
    for record in stream:
        append(record)
        if len(batch) >= size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


class StreamEngine:
    """Drive one streaming discovery run (see the module docstring)."""

    def __init__(self, config: StreamConfig, dataset=None) -> None:
        self.config = config
        plan = config.faults
        if plan is not None and getattr(plan, "is_null", False):
            plan = None
        self.plan = plan
        if dataset is None:
            from repro.datasets import build_dataset

            dataset = build_dataset(
                config.dataset, seed=config.seed, scale=config.scale,
                faults=plan,
            )
        self.dataset = dataset

    # ---- identity & sources -------------------------------------------

    def _identity(self) -> dict:
        digest = None
        if self.plan is not None:
            from repro.telemetry.manifest import fault_plan_digest

            digest = fault_plan_digest(self.plan)
        config = self.config
        return checkpoint_config(
            config.dataset, config.seed, config.scale, config.shards, digest,
            probe=config.probe_identity(),
        )

    def _effective_end(self) -> float:
        duration = self.dataset.duration
        if self.config.end is None:
            return duration
        return min(self.config.end, duration)

    def _source_batches(self, skip: int, end: float) -> Iterator:
        """Record batches starting *skip* records into the stream.

        Full-duration runs read the cached trace when one exists (the
        resume offset is a single seek -- records are fixed width);
        partial runs and cache misses regenerate the stream and skip
        the prefix, which is cheap because skipped records feed no
        observers.  Either way the records are identical, so a resumed
        run continues the exact stream the killed run was consuming.

        With ``config.columnar`` (the default) cached traces are served
        as :class:`repro.trace.columnar.RecordColumns` batches --
        zero-copy views over the mapped file -- and the run loop,
        fault filter, router, and shard workers all take their
        vectorised paths.  Regenerated streams are always scalar (the
        traffic model produces records one at a time).
        """
        config = self.config
        dataset = self.dataset
        if end >= dataset.duration:
            cache = default_trace_cache()
            if cache.enabled:
                cached = cache.lookup(dataset.trace_cache_key)
                if cached is not None:
                    if config.columnar:
                        yield from read_trace_columns(
                            cached,
                            chunk_records=config.batch_records,
                            skip_records=skip,
                        )
                        return
                    yield from read_records_chunked(
                        cached, config.batch_records, skip_records=skip
                    )
                    return
        stream = dataset._generate_stream(end)
        if skip:
            next(islice(stream, skip - 1, skip), None)
        yield from _batched(stream, config.batch_records)

    # ---- watermarks & checkpoints --------------------------------------

    def _watermark(
        self,
        mark: float,
        records: int,
        states: list[ShardState],
        active: ActiveTimeline,
    ) -> Watermark:
        """Completeness at *mark* from live (drained) shard state.

        The current batch may straddle the mark, so passive state is
        filtered by evidence time: an endpoint counts iff its first
        evidence is at or before the mark, exactly the set a batch
        replay truncated at the mark would report.
        """
        passive = {
            address
            for state in states
            for (address, _port, _proto), seen in state.table.first_seen.items()
            if seen <= mark
        }
        summary = summarize_overlap(passive, set(active.addresses_by(mark)))
        return Watermark(time=mark, records=records, summary=summary)

    def _save_checkpoint(
        self,
        path: Path,
        identity: dict,
        states: list[ShardState],
        faults,
        progress: dict,
    ) -> None:
        payload = {
            "config": identity,
            "faults": faults.state_dict() if faults is not None else None,
            "shards": [state.state_dict() for state in states],
        }
        payload.update(progress)
        started = perf_counter()
        size = save_checkpoint(path, payload)
        elapsed = perf_counter() - started
        reg = _telemetry_registry()
        if reg.enabled:
            reg.counter(
                "repro_stream_checkpoints_total",
                "Checkpoints written by stream runs.",
            ).inc()
            reg.histogram(
                "repro_stream_checkpoint_bytes",
                "Size of each written stream checkpoint.",
            ).observe(size)
            reg.histogram(
                "repro_stream_checkpoint_seconds",
                "Wall time to serialise and atomically write a checkpoint.",
            ).observe(elapsed)

    # ---- the run loop ---------------------------------------------------

    def run(
        self,
        resume: bool = False,
        stop_after_records: int | None = None,
        progress: Callable[[Watermark], None] | None = None,
        publisher=None,
    ) -> StreamResult:
        """Stream the dataset to completion (or resume a killed run).

        With ``resume=True`` and an existing checkpoint at
        ``config.checkpoint_path``, the run restores shard state, the
        fault filter's per-link loss processes, and the source offset,
        then continues -- converging to the same final report as an
        uninterrupted run.  ``stop_after_records`` aborts the run
        after roughly that many records *without* a final checkpoint
        (simulating a kill for the recovery tests).  *progress* is
        called with each emitted watermark.

        On ``KeyboardInterrupt`` (the CLI maps SIGTERM onto it) the
        engine drains, writes a checkpoint when a path is configured,
        and re-raises -- the graceful half of kill/resume.

        *publisher* is a :class:`repro.query.state.QueryState` (or
        anything with ``publish(snapshot)``); when set together with
        ``config.snapshot_every``, the engine drains at each snapshot
        mark and publishes a copy-on-publish
        :class:`~repro.query.snapshot.DiscoverySnapshot` of the merged
        shard state.  The final snapshot is always published so the
        service keeps answering after the stream ends.
        """
        config = self.config
        dataset = self.dataset
        end = self._effective_end()
        identity = self._identity()
        ckpt_path = (
            Path(config.checkpoint_path) if config.checkpoint_path else None
        )

        def fresh_table() -> PassiveServiceTable:
            return PassiveServiceTable(
                is_campus=dataset.is_campus,
                tcp_ports=dataset.tcp_ports,
                udp_ports=dataset.udp_ports,
            )

        states = [ShardState(index, fresh_table()) for index in range(config.shards)]
        faults = (
            self.plan.capture_filter(dataset.duration)
            if self.plan is not None
            else None
        )
        prober = build_prober(
            dataset, config.probe_policy, config.probe_rate,
            config.probe_ports, config.seed, end,
        )
        # With online probing, the scheduler IS the active side: its
        # live evidence feeds watermarks (same addresses_by contract)
        # instead of the build-time scan timeline.
        active = (
            prober
            if prober is not None
            else ActiveTimeline(dataset.scan_reports, dataset.udp_report)
        )
        marks = (
            emit_schedule(end, config.emit_every)
            if config.emit_every
            else [end]
        )
        snap_marks = (
            emit_schedule(end, config.snapshot_every)
            if publisher is not None and config.snapshot_every
            else []
        )
        snap_index = 0

        records_read = 0
        records_delivered = 0
        now = 0.0
        emitted_index = 0
        watermarks: list[Watermark] = []
        checkpoints_written = 0
        resumed = False

        if resume:
            if ckpt_path is None:
                raise ValueError("resume requires config.checkpoint_path")
            if ckpt_path.exists():
                payload = load_checkpoint(ckpt_path, identity)
                records_read = int(payload["records_read"])
                records_delivered = int(payload["records_delivered"])
                now = float(payload["now"])
                emitted_index = int(payload["emitted_index"])
                watermarks = list(payload["watermarks"])
                for state, saved in zip(states, payload["shards"]):
                    state.restore_state(saved)
                if faults is not None and payload.get("faults") is not None:
                    faults.restore_state(payload["faults"])
                if prober is not None and payload.get("probes") is not None:
                    prober.restore_state(payload["probes"])
                resumed = True

        next_checkpoint = None
        if config.checkpoint_every is not None and ckpt_path is not None:
            next_checkpoint = config.checkpoint_every
            while next_checkpoint <= now:
                next_checkpoint += config.checkpoint_every

        read_at_start = records_read
        delivered_at_start = records_delivered
        loss_at_start = faults.stats.dropped_loss if faults is not None else 0
        outage_at_start = faults.stats.dropped_outage if faults is not None else 0
        reg = _telemetry_registry()
        tap = None
        if reg.enabled:
            from repro.telemetry.tap import ReplayTap

            tap = ReplayTap()
        is_campus = dataset.is_campus
        shards = config.shards

        def snapshot_progress() -> dict:
            return {
                "records_read": records_read,
                "records_delivered": records_delivered,
                "now": now,
                "emitted_index": emitted_index,
                "watermarks": list(watermarks),
                "probes": (
                    prober.state_dict() if prober is not None else None
                ),
            }

        ingestor = StreamIngestor(states, max_queue_chunks=config.max_queue_chunks)
        interrupted = False
        trc = _tracer()
        trc.event(
            "stream.start", shards=shards, records=records_read,
            resumed=resumed,
        )
        wall_start = perf_counter()
        try:
            for batch in self._source_batches(records_read, end):
                # The source yields either PacketRecord lists or
                # RecordColumns batches; both define len(), and every
                # consumer below has a columnar counterpart.
                columnar = not isinstance(batch, list)
                records_read += len(batch)
                if faults is not None:
                    if columnar:
                        mask = faults.keep_mask(
                            batch.time.tolist(),
                            batch.link.tolist(),
                            batch.link_names,
                        )
                        if not mask.all():
                            batch = batch.compress(mask)
                    else:
                        batch = faults.filter_batch(batch)
                records_delivered += len(batch)
                if len(batch):
                    last_time = (
                        float(batch.time[-1]) if columnar else batch[-1].time
                    )
                    if last_time > now:
                        now = last_time
                    if tap is not None:
                        if columnar:
                            tap.observe_columns(batch)
                        else:
                            tap.observe_batch(batch)
                    if columnar:
                        ingestor.dispatch(
                            split_columns(batch, is_campus, shards)
                        )
                    else:
                        ingestor.dispatch(split_batch(batch, is_campus, shards))
                    if trc.enabled:
                        trc.note("engine.batch", records=records_read)
                if prober is not None:
                    # Interleave: fire every probe the policy scheduled
                    # at or before the stream's new instant, so the
                    # watermark/checkpoint below see its evidence.
                    prober.advance(now)
                while emitted_index < len(marks) and now >= marks[emitted_index]:
                    ingestor.drain()
                    mark = marks[emitted_index]
                    watermark = self._watermark(
                        mark, records_delivered, states, active
                    )
                    watermarks.append(watermark)
                    emitted_index += 1
                    if trc.enabled:
                        trc.event(
                            "stream.watermark", mark=mark,
                            records=records_delivered,
                        )
                    if reg.enabled:
                        reg.counter(
                            "repro_stream_watermarks_total",
                            "Watermarks emitted by stream runs.",
                        ).inc()
                        reg.histogram(
                            "repro_stream_watermark_lag_seconds",
                            "Stream-time lag between a mark and its emission.",
                        ).observe(max(0.0, now - mark))
                    if progress is not None:
                        progress(watermark)
                if snap_index < len(snap_marks) and now >= snap_marks[snap_index]:
                    # Catch up past every satisfied mark but copy state
                    # only once -- queues drained, so the snapshot is a
                    # consistent stream prefix.
                    while (
                        snap_index < len(snap_marks)
                        and now >= snap_marks[snap_index]
                    ):
                        snap_index += 1
                    ingestor.drain()
                    publisher.publish(
                        snapshot_states(
                            states,
                            now=now,
                            records=records_delivered,
                            watermarks=list(watermarks),
                            probes=(
                                prober.view() if prober is not None else None
                            ),
                        )
                    )
                    if trc.enabled:
                        trc.event(
                            "stream.snapshot", records=records_delivered
                        )
                    if reg.enabled:
                        reg.counter(
                            "repro_stream_snapshots_total",
                            "Query snapshots published by stream runs.",
                        ).inc()
                if next_checkpoint is not None and now >= next_checkpoint:
                    ingestor.drain()
                    with trc.span("stream.checkpoint", records=records_read):
                        self._save_checkpoint(
                            ckpt_path, identity, states, faults,
                            snapshot_progress(),
                        )
                    checkpoints_written += 1
                    while next_checkpoint <= now:
                        next_checkpoint += config.checkpoint_every
                if (
                    stop_after_records is not None
                    and records_read >= stop_after_records
                ):
                    interrupted = True
                    break
        except KeyboardInterrupt:
            ingestor.drain()
            if ckpt_path is not None:
                self._save_checkpoint(
                    ckpt_path, identity, states, faults, snapshot_progress()
                )
            raise
        finally:
            ingestor.close()
            if reg.enabled:
                if tap is not None:
                    tap.flush_into(reg)
                ingestor.flush_telemetry(reg)
                elapsed = perf_counter() - wall_start
                reg.counter(
                    "repro_stream_read_records_total",
                    "Records pulled from the stream source this run.",
                ).inc(records_read - read_at_start)
                reg.counter(
                    "repro_stream_records_total",
                    "Records delivered to the shards this run (post-faults).",
                ).inc(records_delivered - delivered_at_start)
                reg.counter(
                    "repro_stream_seconds_total",
                    "Wall time spent inside stream run loops.",
                ).inc(elapsed)
                if faults is not None:
                    drops = faults.stats
                    reg.counter(
                        "repro_passive_dropped_total",
                        "Records the monitors failed to capture, by cause.",
                        cause="loss",
                    ).inc(drops.dropped_loss - loss_at_start)
                    reg.counter(
                        "repro_passive_dropped_total",
                        "Records the monitors failed to capture, by cause.",
                        cause="outage",
                    ).inc(drops.dropped_outage - outage_at_start)
                if elapsed > 0:
                    reg.gauge(
                        "repro_stream_records_per_sec",
                        "Source throughput of the most recent stream run.",
                    ).set((records_read - read_at_start) / elapsed)

        if interrupted:
            return StreamResult(
                finished=False,
                records_read=records_read,
                records_delivered=records_delivered,
                checkpoints_written=checkpoints_written,
                resumed=resumed,
                watermarks=watermarks,
            )

        if prober is not None:
            # The stream is drained; fire everything scheduled through
            # its end (probes can outlast the last packet) so the final
            # marks and report carry the complete active evidence.
            prober.advance(end)

        while emitted_index < len(marks):
            # Marks at or past the last record's timestamp (always at
            # least the final one) are emitted once the source drains.
            watermark = self._watermark(
                marks[emitted_index], records_delivered, states, active
            )
            watermarks.append(watermark)
            emitted_index += 1
            if reg.enabled:
                reg.counter(
                    "repro_stream_watermarks_total",
                    "Watermarks emitted by stream runs.",
                ).inc()
            if progress is not None:
                progress(watermark)

        if ckpt_path is not None and ckpt_path.exists():
            # Clean finish: a stale checkpoint must not hijack the next run.
            ckpt_path.unlink()
        trc.event(
            "stream.end", records=records_read, watermarks=len(watermarks)
        )
        result = finalize_result(
            config, dataset, states, watermarks,
            records_read, records_delivered, checkpoints_written, resumed,
            now=now, probes=prober,
        )
        if publisher is not None and result.snapshot is not None:
            publisher.publish(result.snapshot)
        return result


def batch_survey_report(config: StreamConfig, dataset=None) -> str:
    """The batch path's report for *config* -- the equivalence oracle.

    Builds the dataset, replays it through one monolithic passive table
    (with the same fault plan a stream run would apply), and renders
    through the shared :func:`repro.core.report.survey_table`.  Tests
    assert ``StreamEngine(config).run().report == batch_survey_report(config)``
    byte for byte, at any shard count.
    """
    plan = config.faults
    if plan is not None and getattr(plan, "is_null", False):
        plan = None
    if dataset is None:
        from repro.datasets import build_dataset

        dataset = build_dataset(
            config.dataset, seed=config.seed, scale=config.scale, faults=plan
        )
    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
    )
    faults = plan.capture_filter(dataset.duration) if plan is not None else None
    records = dataset.replay(table, faults=faults)
    active_addresses = {
        address for address, _ in union_open_endpoints(dataset.scan_reports)
    }
    if dataset.udp_report is not None:
        active_addresses |= {
            address for address, _ in dataset.udp_report.open_endpoints()
        }
    summary = summarize_overlap(table.server_addresses(), active_addresses)
    return survey_table(
        config.dataset, config.scale, config.seed,
        records, len(dataset.scan_reports), summary,
    ).render()
