"""The distributed shard fabric: supervised worker processes.

The threaded engine (:mod:`repro.stream.engine`) shards across worker
*threads*, so folding throughput is GIL-bound and any crash kills the
whole run.  This module promotes shards to shared-nothing worker
**processes**: a :class:`FabricSupervisor` reads the source stream,
applies the run's fault filter (once, in stream order -- the drop
pattern is decided before any process boundary, so it cannot depend on
worker scheduling or deaths), routes each batch with the existing
split functions, and ships per-shard sub-batches over bounded
``multiprocessing`` queues to workers that do nothing but fold them
into their own :class:`~repro.stream.shard.ShardState`.

**Membership and liveness.**  Workers join with a registration
handshake and then heartbeat on their own clock; the supervisor's
:class:`~repro.stream.membership.Membership` table declares a worker
dead after ``miss_budget`` missed intervals (or a blown join timeout),
on process exit, or when its queue stays full past the stall budget.
Every worker message carries an incarnation number, so traffic from a
declared-dead process that lingers in a queue is discarded.

**Failover.**  A dead shard is dropped and reassigned: the supervisor
SIGKILLs the old process, restores the shard from the newest good
per-shard checkpoint generation (:class:`ShardCheckpointStore`),
replays the gap from the trace via the source's ``skip_records`` seek
through a scratch fault filter restored to the checkpoint's state (so
the replayed drop pattern is bit-identical to what the dead worker
saw), and resumes -- with bounded retries and exponential backoff.
Exhausting ``max_restarts`` raises :class:`FabricDegradedError`
("degraded: shard N restarted K times") instead of hanging.

**Consistency.**  Watermark and checkpoint requests travel *in band*
on the same FIFO queues as data, so a worker answers them only after
folding everything that preceded them -- the distributed analogue of
the threaded engine's ``drain()`` barrier.  A checkpoint generation is
committed by the supervisor's manifest write, which happens only after
every shard acked its own file: generations are all-or-nothing, and a
failover mid-generation simply aborts it (the orphan shard files are
never referenced and later pruned).

The invariant all of this machinery serves: the final report is
**byte-identical** to the single-process batch path at any worker
count -- including under injected worker crashes, stalls, dropped
heartbeats, and a SIGKILL'd supervisor resumed from the manifest --
because the merge is the same order-independent shard union and every
replayed record is filtered by the same deterministic RNG streams.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, perf_counter
from typing import Callable

from repro.core.completeness import summarize_overlap
from repro.faults.worker import WorkerFaultEvents, WorkerFaultPlan
from repro.passive.monitor import PassiveServiceTable
from repro.probe import build_prober
from repro.query.snapshot import merge_snapshot_payloads, shard_snapshot_payload
from repro.stream.checkpoint import (
    ShardCheckpointStore,
    ShardRestore,
)
from repro.stream.engine import StreamConfig, StreamEngine, StreamResult, finalize_result
from repro.stream.membership import Membership
from repro.stream.shard import ShardState, split_batch, split_columns
from repro.stream.watermark import ActiveTimeline, Watermark, emit_schedule
from repro.telemetry.metrics import MetricRegistry, set_registry
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.telemetry.spans import span as _span
from repro.telemetry.tracing import Tracer, set_tracer
from repro.telemetry.tracing import tracer as _tracer


class FabricError(RuntimeError):
    """The fabric could not complete the run."""


class FabricDegradedError(FabricError):
    """A shard exhausted its restart budget; the run fails structurally.

    Raised instead of hanging or silently dropping the shard: a report
    missing one shard's endpoints would be *wrong*, not late, so the
    degraded contract is fail-stop with a machine-readable reason.
    """

    def __init__(self, shard: int, restarts: int, reason: str) -> None:
        super().__init__(
            f"degraded: shard {shard} restarted {restarts} times ({reason})"
        )
        self.shard = shard
        self.restarts = restarts
        self.reason = reason


@dataclass(frozen=True)
class FabricConfig:
    """Supervision knobs, separate from the stream identity.

    Nothing here affects the report's bytes -- heartbeat cadence,
    restart budgets, and fault injection change *when* failovers happen,
    never what the merged shard states contain -- so none of it enters
    the checkpoint identity.
    """

    heartbeat_interval: float = 0.25
    miss_budget: int = 8
    join_timeout: float = 30.0
    max_restarts: int = 3
    restart_backoff: float = 0.05
    restart_backoff_max: float = 2.0
    put_timeout: float = 0.1
    stall_timeout: float = 10.0
    keep_generations: int = 2
    worker_faults: WorkerFaultPlan | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.miss_budget < 1:
            raise ValueError("miss_budget must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.put_timeout <= 0 or self.stall_timeout <= 0:
            raise ValueError("put_timeout and stall_timeout must be > 0")


# ---- the worker process -----------------------------------------------


def _shard_worker(
    shard: int,
    incarnation: int,
    dataset,
    identity: dict,
    store_root,
    keep_generations: int,
    initial_state: dict | None,
    work_queue,
    results_queue,
    heartbeat_interval: float,
    events: WorkerFaultEvents,
    trace_config: dict | None = None,
) -> None:
    """Child main: fold sub-batches, answer markers, heartbeat.

    Runs under the ``fork`` start method, so arguments (including the
    dataset with its closure-based campus predicate) arrive by memory
    inheritance, never pickling.  The worker owns its shard's state
    exclusively; the only shared surfaces are the two queues.  Exits
    via ``os._exit`` on injected crashes (no atexit, no queue flush --
    indistinguishable from SIGKILL) and when orphaned by a dead
    supervisor.

    Every in-band work item carries the supervisor's trace context as
    its trailing element; with tracing on, the worker's own events
    parent on it, which is what stitches a failover into one causal
    chain across the process boundary.  The inherited parent tracer and
    registry must never be written from the child: the tracer is
    replaced first thing (a fresh per-incarnation one, or the null
    tracer), and a fresh metric registry is swapped in iff telemetry is
    enabled, its snapshot shipped home on the ``done`` message.
    """
    parent = os.getppid()
    if trace_config is not None:
        trc = set_tracer(
            Tracer(
                trace_config["directory"],
                trace_id=trace_config["trace_id"],
                process=f"shard{shard}-i{incarnation}",
                flight_limit=trace_config["flight_limit"],
            )
        )
        trc.event(
            "worker.start",
            parent=trace_config["parent"],
            shard=shard,
            incarnation=incarnation,
        )
    else:
        trc = set_tracer(None)
    snapshot_home = _telemetry_registry().enabled
    if snapshot_home:
        # The forked registry holds the parent's counts; a fresh one
        # isolates this worker's contribution for the merge at "done".
        set_registry(MetricRegistry())
    state = ShardState(
        shard,
        PassiveServiceTable(
            is_campus=dataset.is_campus,
            tcp_ports=dataset.tcp_ports,
            udp_ports=dataset.udp_ports,
        ),
    )
    if initial_state is not None:
        state.restore_state(initial_state)
    store = (
        ShardCheckpointStore(store_root, keep_generations)
        if store_root is not None
        else None
    )
    suppress_beats = 0
    drop_armed = events.drop_heartbeats_at is not None
    last_beat = monotonic()
    results_queue.put(("join", shard, incarnation, os.getpid()))
    try:
        while True:
            if os.getppid() != parent:
                os._exit(2)  # supervisor died; no one will reap us
            tick = monotonic()
            if tick - last_beat >= heartbeat_interval:
                last_beat = tick
                if suppress_beats > 0:
                    suppress_beats -= 1
                else:
                    results_queue.put(("beat", shard, incarnation))
            try:
                item = work_queue.get(timeout=heartbeat_interval / 2)
            except queue.Empty:
                continue
            kind = item[0]
            if kind == "batch":
                part = item[1]
                with _span("fabric.worker.batch"):
                    if isinstance(part, list):
                        state.observe_batch(part)
                    else:
                        state.observe_columns(part)
                if trc.enabled:
                    trc.note("worker.batch", parent=item[2],
                             records=state.records)
                if events.crash_at is not None and state.records >= events.crash_at:
                    if trc.enabled:
                        trc.event("worker.crash", parent=item[2], shard=shard,
                                  incarnation=incarnation,
                                  records=state.records)
                        trc.dump_flight(
                            "crash",
                            f"injected crash at {state.records} records",
                        )
                    os._exit(137)  # injected crash: as abrupt as SIGKILL
                if events.stall_at is not None and state.records >= events.stall_at:
                    # Injected stall: stop consuming *and* beating, so the
                    # supervisor's miss budget is what ends us.
                    if trc.enabled:
                        trc.event("worker.stall", parent=item[2], shard=shard,
                                  incarnation=incarnation,
                                  records=state.records)
                        trc.dump_flight(
                            "stall",
                            f"injected stall at {state.records} records",
                        )
                    while True:
                        time.sleep(heartbeat_interval)
                        if os.getppid() != parent:
                            os._exit(2)
                if drop_armed and state.records >= events.drop_heartbeats_at:
                    drop_armed = False
                    suppress_beats = events.drop_heartbeats
            elif kind == "mark":
                _, index, mark, ctx = item
                with _span("fabric.worker.mark"), \
                        trc.span("worker.mark", parent=ctx, index=index,
                                 records=state.records):
                    owned = sorted(
                        {
                            address
                            for (address, _p, _pr), seen
                            in state.table.first_seen.items()
                            if seen <= mark
                        }
                    )
                results_queue.put(
                    ("mark_ack", shard, incarnation, index, tuple(owned))
                )
            elif kind == "ckpt":
                generation = item[1]
                with _span("fabric.worker.ckpt"), \
                        trc.span("worker.ckpt", parent=item[2],
                                 generation=generation,
                                 records=state.records):
                    store.save_shard(
                        shard, generation, identity, state.state_dict()
                    )
                results_queue.put(("ckpt_ack", shard, incarnation, generation))
            elif kind == "snap":
                # In-band like marks: the payload covers exactly the
                # records fed before the request -- a consistent cut.
                with trc.span("worker.snap", parent=item[2], index=item[1],
                              records=state.records):
                    payload = shard_snapshot_payload(state)
                results_queue.put(
                    ("snap_ack", shard, incarnation, item[1], payload)
                )
            elif kind == "stop":
                if trc.enabled:
                    trc.event("worker.done", parent=item[1], shard=shard,
                              incarnation=incarnation, records=state.records)
                    trc.close()
                results_queue.put(
                    ("done", shard, incarnation, state.state_dict(),
                     _telemetry_registry().snapshot() if snapshot_home else None)
                )
                return  # clean exit flushes the queue feeder
    except KeyboardInterrupt:
        os._exit(130)
    except BaseException as exc:  # noqa: BLE001 - reported, then hard exit
        try:
            if trc.enabled:
                trc.event("worker.error", shard=shard,
                          incarnation=incarnation, error=repr(exc))
                trc.dump_flight("error", repr(exc))
            results_queue.put(("error", shard, incarnation, repr(exc)))
            results_queue.close()
            results_queue.join_thread()
        finally:
            os._exit(1)


# ---- the supervisor ---------------------------------------------------


@dataclass
class _PendingMark:
    """A watermark request sent to the workers but not yet emitted."""

    index: int
    mark: float
    records: int
    acks: dict[int, tuple] = field(default_factory=dict)


class FabricSupervisor:
    """Run one stream as a fleet of supervised shard worker processes.

    Wraps a :class:`~repro.stream.engine.StreamEngine` for everything
    that defines the run (identity, source batches, dataset) and
    replaces its in-process ingest with the process fabric.  ``shards``
    in the stream config is the worker count; since the checkpoint
    identity already includes it, fabric and threaded checkpoints can
    never cross-contaminate a resume.
    """

    def __init__(
        self,
        config: StreamConfig,
        fabric: FabricConfig | None = None,
        dataset=None,
    ) -> None:
        self.engine = StreamEngine(config, dataset)
        self.config = config
        self.fabric = fabric or FabricConfig()
        self.dataset = self.engine.dataset
        self.plan = self.engine.plan
        worker_faults = self.fabric.worker_faults
        if worker_faults is not None and worker_faults.is_null:
            worker_faults = None
        self._worker_faults = worker_faults
        self.store = (
            ShardCheckpointStore(
                Path(config.checkpoint_path), self.fabric.keep_generations
            )
            if config.checkpoint_path
            else None
        )
        # The dataset's campus predicate is a closure, so workers must
        # inherit it by fork; spawn would have to pickle it and fail.
        self._ctx = multiprocessing.get_context("fork")

    # ---- small helpers ------------------------------------------------

    @staticmethod
    def _wall() -> float:
        return monotonic()

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _store_root(self):
        return self.store.root if self.store is not None else None

    # ---- worker lifecycle ---------------------------------------------

    def _spawn(self, shard: int, initial_state: dict | None) -> int:
        incarnation = self.membership.launch(shard, self._wall())
        # A fresh queue per incarnation: the dead worker's queue may
        # hold unfolded batches and a feeder mid-write; never reuse it.
        self._queues[shard] = self._ctx.Queue(
            maxsize=self.config.max_queue_chunks
        )
        events = (
            self._worker_faults.events_for(shard, incarnation)
            if self._worker_faults is not None
            else WorkerFaultEvents()
        )
        trc = _tracer()
        if trc.enabled:
            # Flush so the child's inherited file buffer is empty, and
            # hand it the current span as the parent of worker.start.
            trc.flush()
            trace_config = {
                "directory": str(trc.directory),
                "trace_id": trc.trace_id,
                "parent": trc.current_ids(),
                "flight_limit": trc.flight.limit,
            }
        else:
            trace_config = None
        process = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard, incarnation, self.dataset, self._identity,
                self._store_root(), self.fabric.keep_generations,
                initial_state, self._queues[shard], self._results,
                self.fabric.heartbeat_interval, events, trace_config,
            ),
            name=f"repro-fabric-shard-{shard}",
            daemon=True,
        )
        process.start()
        self.membership.members[shard].pid = process.pid
        self._procs[shard] = process
        reg = _telemetry_registry()
        if reg.enabled:
            reg.counter(
                "repro_fabric_launches_total",
                "Worker processes launched (first launches and restarts).",
            ).inc()
        trc.event(
            "fabric.launch", shard=shard, incarnation=incarnation,
            worker_pid=process.pid,
        )
        self._event(
            f"fabric: launch shard={shard} incarnation={incarnation} "
            f"pid={process.pid}"
        )
        return incarnation

    def _kill_worker(self, shard: int) -> None:
        process = self._procs[shard]
        if process is None:
            return
        old_queue = self._queues[shard]
        try:
            if process.is_alive():
                process.kill()
            process.join(timeout=5.0)
        finally:
            self._procs[shard] = None
        if old_queue is not None:
            # The abandoned queue's feeder may be blocked on a full
            # pipe; cancel it so it cannot wedge interpreter exit.
            old_queue.close()
            old_queue.cancel_join_thread()

    def _kill_all(self) -> None:
        for shard in range(self.config.shards):
            try:
                self._kill_worker(shard)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    # ---- message pump & liveness --------------------------------------

    def _pump(self, timeout: float = 0.0) -> None:
        """Drain worker messages into membership/ack state."""
        block = timeout
        while True:
            try:
                if block > 0:
                    message = self._results.get(timeout=block)
                else:
                    message = self._results.get_nowait()
            except queue.Empty:
                return
            block = 0.0
            kind, shard, incarnation = message[0], message[1], message[2]
            if not self.membership.is_current(shard, incarnation):
                continue  # stale incarnation; its process is already dead
            if kind == "join":
                self.membership.join(shard, incarnation, self._wall(),
                                     pid=message[3])
                reg = _telemetry_registry()
                if reg.enabled:
                    reg.counter(
                        "repro_fabric_joins_total",
                        "Registration handshakes completed by workers.",
                    ).inc()
                _tracer().event(
                    "fabric.join", shard=shard, incarnation=incarnation,
                    worker_pid=message[3],
                )
                self._event(
                    f"fabric: join shard={shard} incarnation={incarnation} "
                    f"pid={message[3]}"
                )
            elif kind == "beat":
                self.membership.heartbeat(shard, incarnation, self._wall())
                self._heartbeats += 1
            elif kind == "mark_ack":
                pending = self._pending_marks.get(message[3])
                if pending is not None:
                    pending.acks[shard] = message[4]
            elif kind == "ckpt_ack":
                self._ckpt_acks.add((shard, message[3]))
            elif kind == "snap_ack":
                if message[3] == self._snap_index:
                    self._snap_acks[shard] = message[4]
            elif kind == "done":
                self._done[shard] = message[3]
                if len(message) > 4 and message[4] is not None:
                    reg = _telemetry_registry()
                    if reg.enabled:
                        reg.merge_snapshot(message[4], process=f"shard{shard}")
            elif kind == "error":
                self._worker_errors[shard] = message[3]

    def _dead_reason(self, shard: int) -> str | None:
        """Why *shard* must be declared dead right now, or ``None``."""
        if shard in self._done:
            return None
        error = self._worker_errors.pop(shard, None)
        if error is not None:
            return f"worker error: {error}"
        process = self._procs[shard]
        if process is not None and not process.is_alive():
            return f"process exited with code {process.exitcode}"
        if self.membership.overdue(shard, self._wall()):
            age = self.membership.heartbeat_age(shard, self._wall())
            return f"heartbeat overdue by {age:.2f}s"
        return None

    def _reap(self) -> None:
        """Declare and fail over every currently-dead shard."""
        reg = _telemetry_registry()
        for shard in range(self.config.shards):
            if reg.enabled and shard not in self._done:
                reg.gauge(
                    "repro_fabric_heartbeat_age_seconds",
                    "Seconds since each shard worker last proved liveness.",
                    shard=str(shard),
                ).set(self.membership.heartbeat_age(shard, self._wall()))
            reason = self._dead_reason(shard)
            if reason is not None:
                self._failover(shard, reason)
        if self._on_health is not None:
            # _reap runs per batch; throttle pushes so the serving side
            # sees fresh-enough membership without per-batch overhead.
            now = monotonic()
            if now - self._last_health_push >= 0.25:
                self._last_health_push = now
                self._on_health(self.membership.health(self._wall()))

    # ---- data movement ------------------------------------------------

    def _put(self, shard: int, item, abandon_on_failover: bool = False) -> bool:
        """Enqueue to a shard's current worker; never deadlocks.

        Bounded-timeout puts give backpressure; each timeout re-checks
        liveness across the fleet.  When the *target* shard is failed
        over mid-put, ``abandon_on_failover=True`` returns ``False``
        without enqueueing (for items the failover's own catch-up and
        marker resend already cover); otherwise the item is retried
        into the replacement's fresh queue.
        """
        waited = 0.0
        while True:
            incarnation = self.membership.members[shard].incarnation
            try:
                self._queues[shard].put(item, timeout=self.fabric.put_timeout)
                return True
            except queue.Full:
                waited += self.fabric.put_timeout
                self._backpressure_timeouts += 1
            self._pump()
            self._reap()
            if waited >= self.fabric.stall_timeout and self.membership.is_current(
                shard, incarnation
            ):
                self._failover(
                    shard, f"queue stayed full for {waited:.1f}s"
                )
            if not self.membership.is_current(shard, incarnation):
                if abandon_on_failover:
                    return False
                waited = 0.0  # fresh queue, fresh stall budget

    def _feed_catchup(
        self,
        shard: int,
        incarnation: int,
        base: int,
        target: int,
        faults_state: dict | None,
    ) -> bool:
        """Replay source records ``[base, target)`` into one shard.

        A scratch fault filter restored to *faults_state* (the filter's
        state at offset *base*, from the same manifest the shard state
        came from) reproduces the primary pass's drop pattern exactly,
        so the replacement folds the identical sub-stream the dead
        worker saw.  Returns ``False`` when a nested failover replaced
        *incarnation* mid-feed -- that failover's own catch-up covered
        the rest.
        """
        if target <= base:
            return True
        scratch = None
        if self.plan is not None:
            scratch = self.plan.capture_filter(self.dataset.duration)
            if faults_state is not None:
                scratch.restore_state(faults_state)
        is_campus = self.dataset.is_campus
        shards = self.config.shards
        fed = 0
        for batch in self.engine._source_batches(base, self._end):
            # Heartbeats are timestamped at pump time, so a long replay
            # without pumping would make every *healthy* worker look
            # overdue and cascade into spurious failovers.
            self._pump()
            take = min(len(batch), target - base - fed)
            if take <= 0:
                break
            if take < len(batch):
                batch = (
                    batch[:take]
                    if isinstance(batch, list)
                    else batch.slice(0, take)
                )
            fed += take
            columnar = not isinstance(batch, list)
            if scratch is not None:
                if columnar:
                    mask = scratch.keep_mask(
                        batch.time.tolist(), batch.link.tolist(),
                        batch.link_names,
                    )
                    if not mask.all():
                        batch = batch.compress(mask)
                else:
                    batch = scratch.filter_batch(batch)
            if len(batch):
                parts = (
                    split_columns(batch, is_campus, shards)
                    if columnar
                    else split_batch(batch, is_campus, shards)
                )
                part = parts[shard]
                if part:
                    if not self._put(
                        shard,
                        ("batch", part, _tracer().current_ids()),
                        abandon_on_failover=True,
                    ):
                        return False
            if not self.membership.is_current(shard, incarnation):
                return False
            if fed >= target - base:
                break
        self._catchup_records += fed
        reg = _telemetry_registry()
        if reg.enabled:
            reg.counter(
                "repro_fabric_catchup_records_total",
                "Source records replayed to restore failed-over shards.",
            ).inc(fed)
        return True

    # ---- failover -----------------------------------------------------

    def _failover(self, shard: int, reason: str) -> None:
        """Drop a dead shard's worker and reassign the shard.

        Kill, back off, restore from the newest good committed
        generation, relaunch, replay the gap, re-send unanswered
        watermark requests.  Any checkpoint generation in flight is
        aborted (its manifest is never written).  Exhausting the
        restart budget raises :class:`FabricDegradedError` after
        tearing the fleet down.
        """
        restarts = self.membership.note_restart(shard)
        self._ckpt_abort = True
        self._snap_abort = True
        reg = _telemetry_registry()
        if reg.enabled:
            reg.counter(
                "repro_fabric_restarts_total",
                "Shard failovers performed, by shard.",
                shard=str(shard),
            ).inc()
        trc = _tracer()
        trc.event("fabric.dead", shard=shard, restarts=restarts, reason=reason)
        # Every induced death gets a post-mortem ring dump; the key is
        # unique per (shard, restart) so repeat failovers each get one.
        trc.dump_flight(f"failover-shard{shard}-r{restarts}", reason)
        self._event(
            f"fabric: dead shard={shard} restarts={restarts} reason={reason!r}"
        )
        if restarts > self.fabric.max_restarts:
            trc.event(
                "fabric.degraded", shard=shard, restarts=restarts - 1,
                reason=reason,
            )
            trc.dump_flight(
                "degraded",
                f"shard {shard} restarted {restarts - 1} times ({reason})",
            )
            self._kill_all()
            raise FabricDegradedError(shard, restarts - 1, reason)
        started = perf_counter()
        with _span("fabric.reassign"), trc.span(
            "fabric.reassign", shard=shard, restarts=restarts
        ):
            self._kill_worker(shard)
            backoff = min(
                self.fabric.restart_backoff * (2 ** (restarts - 1)),
                self.fabric.restart_backoff_max,
            )
            time.sleep(backoff)
            if self.store is not None:
                restore = self.store.restore_shard(
                    shard, self._identity, self._committed
                )
            else:
                restore = ShardRestore(
                    shard=shard, state=None, records_read=0, faults=None
                )
            incarnation = self._spawn(shard, restore.state)
            trc.event(
                "fabric.restore", shard=shard, incarnation=incarnation,
                from_records=restore.records_read,
                records=self._records_fed[shard],
            )
            self._event(
                f"fabric: reassign shard={shard} incarnation={incarnation} "
                f"from_records={restore.records_read} "
                f"to_records={self._records_fed[shard]}"
            )
            caught_up = self._feed_catchup(
                shard, incarnation, restore.records_read,
                self._records_fed[shard], restore.faults,
            )
            if caught_up:
                # Unanswered watermark requests must reach the
                # replacement; already-acked ones stay valid (the dead
                # worker answered them from the same deterministic
                # prefix the replacement now holds).
                for index in sorted(self._pending_marks):
                    pending = self._pending_marks[index]
                    if shard not in pending.acks:
                        if not self._put(
                            shard,
                            ("mark", pending.index, pending.mark,
                             trc.current_ids()),
                            abandon_on_failover=True,
                        ):
                            break
        if reg.enabled:
            reg.histogram(
                "repro_fabric_reassign_seconds",
                "Wall time to restore, relaunch, and catch up a shard.",
            ).observe(perf_counter() - started)

    # ---- watermarks ---------------------------------------------------

    def _send_mark(self, index: int, mark: float, records: int) -> None:
        self._pending_marks[index] = _PendingMark(
            index=index, mark=mark, records=records
        )
        ctx = _tracer().current_ids()
        for shard in range(self.config.shards):
            # On failover the marker resend inside _failover covers it.
            self._put(
                shard, ("mark", index, mark, ctx), abandon_on_failover=True
            )

    def _emit_ready_marks(
        self, progress: Callable[[Watermark], None] | None
    ) -> None:
        """Emit, in order, every fully-acked pending watermark."""
        reg = _telemetry_registry()
        while self._emitted_index in self._pending_marks:
            pending = self._pending_marks[self._emitted_index]
            if len(pending.acks) < self.config.shards:
                return
            passive: set[int] = set()
            for addresses in pending.acks.values():
                passive.update(addresses)
            summary = summarize_overlap(
                passive, set(self._active.addresses_by(pending.mark))
            )
            watermark = Watermark(
                time=pending.mark, records=pending.records, summary=summary
            )
            self._watermarks.append(watermark)
            del self._pending_marks[self._emitted_index]
            self._emitted_index += 1
            if reg.enabled:
                reg.counter(
                    "repro_stream_watermarks_total",
                    "Watermarks emitted by stream runs.",
                ).inc()
            if progress is not None:
                progress(watermark)

    def _await_marks(
        self, progress: Callable[[Watermark], None] | None
    ) -> None:
        """Block until every sent watermark has been emitted."""
        while self._pending_marks:
            self._pump(0.02)
            self._reap()
            self._emit_ready_marks(progress)

    # ---- checkpoints --------------------------------------------------

    def _commit_checkpoint(
        self,
        faults,
        progress: Callable[[Watermark], None] | None,
    ) -> None:
        """Run one checkpoint generation to a committed manifest.

        Pending watermarks drain first so the manifest's emission
        cursor matches its watermark list.  Then every worker is asked
        to write its shard file for a fresh generation; the manifest --
        the commit record -- is written only once all acks arrive.  A
        failover anywhere in between aborts the generation and retries
        with the next one (the restart budget bounds the retries).
        """
        self._await_marks(progress)
        reg = _telemetry_registry()
        while True:
            self._generation = max(self._generation, self._committed) + 1
            generation = self._generation
            self._ckpt_abort = False
            aborted = False
            ctx = _tracer().current_ids()
            for shard in range(self.config.shards):
                if not self._put(
                    shard, ("ckpt", generation, ctx), abandon_on_failover=True
                ):
                    aborted = True
                    break
            started = perf_counter()
            while not aborted:
                if self._ckpt_abort:
                    aborted = True
                    break
                acked = sum(
                    1
                    for shard in range(self.config.shards)
                    if (shard, generation) in self._ckpt_acks
                )
                if acked >= self.config.shards:
                    break
                self._pump(0.02)
                self._reap()
            if aborted:
                continue
            payload = {
                "records_read": self._records_read,
                "records_delivered": self._records_delivered,
                "now": self._now,
                "emitted_index": self._emitted_index,
                "watermarks": list(self._watermarks),
                "faults": faults.state_dict() if faults is not None else None,
                "probes": (
                    self._prober.state_dict()
                    if self._prober is not None
                    else None
                ),
            }
            path = self.store.save_manifest(generation, self._identity, payload)
            self._committed = generation
            self._checkpoints += 1
            _tracer().event(
                "fabric.manifest", generation=generation,
                records=self._records_read,
            )
            if reg.enabled:
                reg.counter(
                    "repro_stream_checkpoints_total",
                    "Checkpoints written by stream runs.",
                ).inc()
                reg.histogram(
                    "repro_stream_checkpoint_seconds",
                    "Wall time to serialise and atomically write a checkpoint.",
                ).observe(perf_counter() - started)
            self._event(
                f"fabric: manifest generation={generation} "
                f"records={self._records_read} path={path}"
            )
            return

    # ---- query snapshots ----------------------------------------------

    def _publish_snapshot(self, publisher) -> None:
        """Collect per-worker payloads and publish one merged snapshot.

        The request travels in band, so each worker's payload covers
        exactly the batches fed before it -- and the supervisor feeds
        every shard from one source cursor, so the payloads form a
        consistent stream prefix.  A failover anywhere in the round
        aborts it: this boundary is simply skipped (queries keep
        answering from the previous snapshot; the next boundary
        publishes a fresh one).
        """
        self._snap_index += 1
        index = self._snap_index
        self._snap_acks = {}
        self._snap_abort = False
        ctx = _tracer().current_ids()
        for shard in range(self.config.shards):
            if not self._put(
                shard, ("snap", index, ctx), abandon_on_failover=True
            ):
                return
        while not self._snap_abort:
            if len(self._snap_acks) >= self.config.shards:
                publisher.publish(
                    merge_snapshot_payloads(
                        self._snap_acks.values(),
                        now=self._now,
                        records=self._records_delivered,
                        watermarks=list(self._watermarks),
                        probes=(
                            self._prober.view()
                            if self._prober is not None
                            else None
                        ),
                    )
                )
                reg = _telemetry_registry()
                if reg.enabled:
                    reg.counter(
                        "repro_stream_snapshots_total",
                        "Query snapshots published by stream runs.",
                    ).inc()
                return
            self._pump(0.02)
            self._reap()

    # ---- finish -------------------------------------------------------

    def _collect_states(self) -> list[ShardState]:
        """Stop every worker and gather final shard state dicts."""
        stop_sent: dict[int, int] = {}
        while len(self._done) < self.config.shards:
            for shard in range(self.config.shards):
                if shard in self._done:
                    continue
                incarnation = self.membership.members[shard].incarnation
                if stop_sent.get(shard) != incarnation:
                    item = ("stop", _tracer().current_ids())
                    if self._put(shard, item, abandon_on_failover=True):
                        stop_sent[shard] = incarnation
            self._pump(0.02)
            self._reap()
        states = []
        for shard in range(self.config.shards):
            state = ShardState(
                shard,
                PassiveServiceTable(
                    is_campus=self.dataset.is_campus,
                    tcp_ports=self.dataset.tcp_ports,
                    udp_ports=self.dataset.udp_ports,
                ),
            )
            state.restore_state(self._done[shard])
            states.append(state)
        return states

    # ---- the run loop -------------------------------------------------

    def run(
        self,
        resume: bool = False,
        progress: Callable[[Watermark], None] | None = None,
        on_event: Callable[[str], None] | None = None,
        publisher=None,
        on_health: Callable[[list[dict]], None] | None = None,
    ) -> StreamResult:
        """Stream the dataset through the worker fleet to completion.

        With ``resume=True`` and a committed manifest in the checkpoint
        store, the run restores run-level progress from the newest
        manifest, per-shard state from each shard's newest good
        generation (catching stragglers up by source replay), and
        continues -- converging to the identical final report.
        *on_event* receives human-readable fabric lifecycle lines
        (launch/join/dead/reassign/manifest).  *publisher* plus
        ``config.snapshot_every`` publishes merged query snapshots
        aggregated from per-worker payloads (see
        :meth:`_publish_snapshot`), exactly like the threaded engine's
        ``publisher`` hook.  *on_health* receives throttled
        :meth:`~repro.stream.membership.Membership.health` summaries
        (per-shard heartbeat age / incarnation / restarts) so a serving
        layer can expose fabric liveness on ``/healthz``.

        On ``KeyboardInterrupt`` the fleet is torn down and the
        interrupt re-raised; resume picks up from the last committed
        manifest, which is why ``checkpoint_every`` matters in
        production runs.
        """
        config = self.config
        dataset = self.dataset
        self._identity = self.engine._identity()
        self._end = self.engine._effective_end()
        self._on_event = on_event
        self._on_health = on_health
        self._last_health_push = 0.0
        faults = (
            self.plan.capture_filter(dataset.duration)
            if self.plan is not None
            else None
        )
        self._prober = build_prober(
            dataset, config.probe_policy, config.probe_rate,
            config.probe_ports, config.seed, self._end,
        )
        # Online probing runs supervisor-side: the scheduler replaces
        # the build-time timeline as the watermarks' active side, its
        # state rides in the commit manifest, and -- because it never
        # lives in a worker -- shard failover cannot perturb it.
        self._active = (
            self._prober
            if self._prober is not None
            else ActiveTimeline(dataset.scan_reports, dataset.udp_report)
        )
        marks = (
            emit_schedule(self._end, config.emit_every)
            if config.emit_every
            else [self._end]
        )
        snap_marks = (
            emit_schedule(self._end, config.snapshot_every)
            if publisher is not None and config.snapshot_every
            else []
        )
        snap_cursor = 0

        self.membership = Membership(
            shards=config.shards,
            heartbeat_interval=self.fabric.heartbeat_interval,
            miss_budget=self.fabric.miss_budget,
            join_timeout=self.fabric.join_timeout,
        )
        self._procs: list = [None] * config.shards
        self._queues: list = [None] * config.shards
        self._results = self._ctx.Queue()
        self._pending_marks: dict[int, _PendingMark] = {}
        self._ckpt_acks: set[tuple[int, int]] = set()
        self._done: dict[int, dict] = {}
        self._worker_errors: dict[int, str] = {}
        self._watermarks: list[Watermark] = []
        self._records_read = 0
        self._records_delivered = 0
        self._now = 0.0
        self._emitted_index = 0
        self._generation = 0
        self._committed = 0
        self._checkpoints = 0
        self._backpressure_timeouts = 0
        self._catchup_records = 0
        self._heartbeats = 0
        self._ckpt_abort = False
        self._snap_acks: dict[int, dict] = {}
        self._snap_index = 0
        self._snap_abort = False
        self._records_fed = [0] * config.shards
        resumed = False

        restores: list[ShardRestore | None] = [None] * config.shards
        if resume:
            if self.store is None:
                raise ValueError("resume requires config.checkpoint_path")
            plan = self.store.plan_restore(self._identity)
            if plan is not None:
                manifest = plan.manifest
                self._records_read = int(manifest["records_read"])
                self._records_delivered = int(manifest["records_delivered"])
                self._now = float(manifest["now"])
                self._emitted_index = int(manifest["emitted_index"])
                self._watermarks = list(manifest["watermarks"])
                if faults is not None and manifest.get("faults") is not None:
                    faults.restore_state(manifest["faults"])
                if (
                    self._prober is not None
                    and manifest.get("probes") is not None
                ):
                    self._prober.restore_state(manifest["probes"])
                self._generation = plan.generation
                self._committed = plan.generation
                for restore in plan.shards:
                    restores[restore.shard] = restore
                resumed = True

        next_checkpoint = None
        if config.checkpoint_every is not None and self.store is not None:
            next_checkpoint = config.checkpoint_every
            while next_checkpoint <= self._now:
                next_checkpoint += config.checkpoint_every

        reg = _telemetry_registry()
        trc = _tracer()
        trc.event(
            "fabric.start", shards=config.shards,
            records=self._records_read, resumed=resumed,
        )
        read_at_start = self._records_read
        is_campus = dataset.is_campus
        shards = config.shards
        wall_start = perf_counter()
        try:
            for shard in range(shards):
                restore = restores[shard]
                incarnation = self._spawn(
                    shard, restore.state if restore is not None else None
                )
                if restore is not None:
                    # This shard's newest good generation may lag the
                    # manifest we resumed from; replay the difference.
                    self._records_fed[shard] = self._records_read
                    self._feed_catchup(
                        shard, incarnation, restore.records_read,
                        self._records_read, restore.faults,
                    )
                else:
                    self._records_fed[shard] = self._records_read

            for batch in self.engine._source_batches(
                self._records_read, self._end
            ):
                columnar = not isinstance(batch, list)
                self._records_read += len(batch)
                if faults is not None:
                    if columnar:
                        mask = faults.keep_mask(
                            batch.time.tolist(), batch.link.tolist(),
                            batch.link_names,
                        )
                        if not mask.all():
                            batch = batch.compress(mask)
                    else:
                        batch = faults.filter_batch(batch)
                self._records_delivered += len(batch)
                if len(batch):
                    last_time = (
                        float(batch.time[-1]) if columnar else batch[-1].time
                    )
                    if last_time > self._now:
                        self._now = last_time
                    parts = (
                        split_columns(batch, is_campus, shards)
                        if columnar
                        else split_batch(batch, is_campus, shards)
                    )
                    ctx = trc.current_ids()
                    for shard, part in enumerate(parts):
                        if part:
                            self._put(shard, ("batch", part, ctx))
                        self._records_fed[shard] = self._records_read
                    if trc.enabled:
                        trc.note(
                            "supervisor.batch", records=self._records_read
                        )
                if self._prober is not None:
                    # Interleave probe dispatch with feeding, so marks
                    # and manifests below see the live evidence.
                    self._prober.advance(self._now)
                self._pump()
                self._reap()
                self._emit_ready_marks(progress)
                while (
                    self._emitted_index + len(self._pending_marks) < len(marks)
                    and self._now
                    >= marks[self._emitted_index + len(self._pending_marks)]
                ):
                    index = self._emitted_index + len(self._pending_marks)
                    self._send_mark(
                        index, marks[index], self._records_delivered
                    )
                self._emit_ready_marks(progress)
                if snap_cursor < len(snap_marks) and self._now >= snap_marks[snap_cursor]:
                    while (
                        snap_cursor < len(snap_marks)
                        and self._now >= snap_marks[snap_cursor]
                    ):
                        snap_cursor += 1
                    self._publish_snapshot(publisher)
                if next_checkpoint is not None and self._now >= next_checkpoint:
                    self._commit_checkpoint(faults, progress)
                    while next_checkpoint <= self._now:
                        next_checkpoint += config.checkpoint_every

            # End of stream: emit every remaining scheduled mark (at
            # least the final one), then gather shard states.
            if self._prober is not None:
                # Probes can outlast the last packet; fire everything
                # scheduled through the stream end first.
                self._prober.advance(self._end)
            while self._emitted_index + len(self._pending_marks) < len(marks):
                index = self._emitted_index + len(self._pending_marks)
                self._send_mark(index, marks[index], self._records_delivered)
            self._await_marks(progress)
            states = self._collect_states()
            trc.event(
                "fabric.end", records=self._records_read,
                watermarks=len(self._watermarks),
            )
        except KeyboardInterrupt:
            self._kill_all()
            raise
        except BaseException:
            self._kill_all()
            raise
        finally:
            self._kill_all()
            if reg.enabled:
                elapsed = perf_counter() - wall_start
                read = self._records_read - read_at_start
                reg.counter(
                    "repro_stream_read_records_total",
                    "Records pulled from the stream source this run.",
                ).inc(read)
                reg.counter(
                    "repro_stream_backpressure_timeouts_total",
                    "Bounded-put timeouts while shard queues were full.",
                ).inc(self._backpressure_timeouts)
                reg.counter(
                    "repro_fabric_heartbeats_total",
                    "Heartbeats accepted from current worker incarnations.",
                ).inc(self._heartbeats)
                reg.counter(
                    "repro_stream_seconds_total",
                    "Wall time spent inside stream run loops.",
                ).inc(elapsed)
                if elapsed > 0:
                    reg.gauge(
                        "repro_stream_records_per_sec",
                        "Source throughput of the most recent stream run.",
                    ).set(read / elapsed)

        result = finalize_result(
            config, dataset, states, self._watermarks,
            self._records_read, self._records_delivered,
            self._checkpoints, resumed,
            now=self._now, probes=self._prober,
        )
        if publisher is not None and result.snapshot is not None:
            publisher.publish(result.snapshot)
        if self.store is not None:
            # Clean finish: stale generations must not hijack the next run.
            self.store.clear()
        return result
