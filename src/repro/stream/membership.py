"""In-process membership and liveness tracking for fabric workers.

The fabric's supervisor is the single coordinator, so membership is a
bookkeeping table rather than a gossip protocol: each shard slot holds
the **incarnation** currently expected to serve it, when that
incarnation was launched, whether it completed the join handshake, and
when it last heartbeat.  Workers include their incarnation number on
every message; the table's :meth:`Membership.is_current` check lets the
supervisor discard stale traffic from a prior incarnation that lingered
in a queue after its process was declared dead.

Liveness is pull-based from the supervisor's side: workers beat every
``heartbeat_interval`` seconds on their own wall clock, and
:meth:`Membership.overdue` declares a member dead once its heartbeat
age exceeds ``miss_budget`` intervals (or, before the join handshake
completes, once ``join_timeout`` passes -- a worker that never joins is
as dead as one that stops beating).  All decisions take ``now`` as an
argument so tests drive the clock explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Member:
    """One shard slot's current incarnation and its liveness evidence."""

    shard: int
    incarnation: int = -1
    pid: int | None = None
    launched_at: float = 0.0
    joined_at: float | None = None
    last_heartbeat: float | None = None
    restarts: int = 0
    heartbeats: int = 0

    @property
    def joined(self) -> bool:
        return self.joined_at is not None


@dataclass
class Membership:
    """The supervisor's view of which worker serves each shard.

    ``heartbeat_interval`` is the cadence workers are told to beat at;
    ``miss_budget`` is how many consecutive intervals may elapse without
    a beat before :meth:`overdue` declares the member dead.
    """

    shards: int
    heartbeat_interval: float
    miss_budget: int
    join_timeout: float
    members: dict[int, Member] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for shard in range(self.shards):
            self.members.setdefault(shard, Member(shard=shard))

    # ---- lifecycle ----------------------------------------------------

    def launch(self, shard: int, now: float, pid: int | None = None) -> int:
        """Record a (re)launch of *shard*; returns the new incarnation.

        Resets the join/heartbeat evidence -- the new process has not
        proven liveness yet -- while preserving the restart counter.
        """
        member = self.members[shard]
        member.incarnation += 1
        member.pid = pid
        member.launched_at = now
        member.joined_at = None
        member.last_heartbeat = None
        return member.incarnation

    def join(self, shard: int, incarnation: int, now: float,
             pid: int | None = None) -> bool:
        """Complete the registration handshake; False when stale."""
        member = self.members[shard]
        if incarnation != member.incarnation:
            return False
        member.joined_at = now
        member.last_heartbeat = now
        if pid is not None:
            member.pid = pid
        return True

    def heartbeat(self, shard: int, incarnation: int, now: float) -> bool:
        """Record a heartbeat; False (ignored) when from a stale incarnation."""
        member = self.members[shard]
        if incarnation != member.incarnation or not member.joined:
            return False
        member.last_heartbeat = now
        member.heartbeats += 1
        return True

    def note_restart(self, shard: int) -> int:
        """Count a restart decision; returns the total for the shard."""
        member = self.members[shard]
        member.restarts += 1
        return member.restarts

    # ---- queries ------------------------------------------------------

    def is_current(self, shard: int, incarnation: int) -> bool:
        return self.members[shard].incarnation == incarnation

    def restarts(self, shard: int) -> int:
        return self.members[shard].restarts

    def heartbeat_age(self, shard: int, now: float) -> float:
        """Seconds since the member last proved liveness.

        Before the join completes this measures from launch, so a
        worker stuck in startup accrues age like a silent one.
        """
        member = self.members[shard]
        basis = member.last_heartbeat
        if basis is None:
            basis = member.launched_at
        return max(0.0, now - basis)

    def overdue(self, shard: int, now: float) -> bool:
        """True when the member must be declared dead and reassigned."""
        member = self.members[shard]
        if member.incarnation < 0:
            return False  # never launched
        if not member.joined:
            return now - member.launched_at > self.join_timeout
        assert member.last_heartbeat is not None
        return now - member.last_heartbeat > self.miss_budget * self.heartbeat_interval

    def overdue_shards(self, now: float) -> list[int]:
        return [s for s in range(self.shards) if self.overdue(s, now)]

    def health(self, now: float) -> list[dict]:
        """Per-shard liveness summary, JSON-ready for ``/healthz``.

        One dict per shard: current incarnation, pid, whether the join
        handshake completed, restart count, heartbeat age in seconds,
        and accepted-heartbeat total.
        """
        summary = []
        for shard in range(self.shards):
            member = self.members[shard]
            summary.append(
                {
                    "shard": shard,
                    "incarnation": member.incarnation,
                    "pid": member.pid,
                    "joined": member.joined,
                    "restarts": member.restarts,
                    "heartbeat_age": round(self.heartbeat_age(shard, now), 3),
                    "heartbeats": member.heartbeats,
                }
            )
        return summary
