"""Per-shard discovery state and the shard routing function.

The streaming engine partitions the record stream by *campus server
address*: every record is routed to the shard that owns whatever
passive-table state the record could touch.  The passive rules
(Section 3.2) key all evidence by the campus side of a conversation:

* a TCP SYN-ACK is evidence about its **source** (the campus server
  answering), and seeds handshake-confirmation state under the source;
* a bare TCP ACK updates flow/client accounting (and completes a
  pending handshake) for its **destination**;
* a UDP datagram leaving campus is evidence about its **source**; an
  inbound datagram feeds request tracking for its **destination**.

Because the owning address is a pure function of the record, shard
states are disjoint and merging them is a dict union -- results are
identical at any shard count, which the equivalence tests assert at
1, 2, and 8 shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord
from repro.passive.monitor import Endpoint, PassiveServiceTable

#: Fibonacci-style multiplier spreading contiguous campus addresses
#: across shards (addresses within one /24 would otherwise all land on
#: the same few shards under plain modulo).
_HASH_MULTIPLIER = 0x9E3779B1


def owning_address(record: PacketRecord, is_campus: Callable[[int], bool]) -> int:
    """The address whose shard owns any state this record can touch."""
    proto = record.proto
    if proto == PROTO_TCP:
        flags = record.flags._value_
        if flags & 0x02 and flags & 0x10:  # SYN-ACK: about the sender
            return record.src
        return record.dst
    if proto == PROTO_UDP:
        return record.src if is_campus(record.src) else record.dst
    return record.dst


def shard_of(address: int, shards: int) -> int:
    """Deterministic shard index for an owning address."""
    if shards <= 1:
        return 0
    return ((address * _HASH_MULTIPLIER) & 0xFFFFFFFF) % shards


def split_columns(cols, is_campus: Callable[[int], bool], shards: int) -> list:
    """Columnar :func:`split_batch`: one vectorised scatter per batch.

    The owning-address rule is evaluated with ``np.where`` over the
    whole batch, hashed with the same multiplier, and the batch is
    permuted once with a *stable* argsort so each shard's sub-batch
    preserves stream order -- the invariant the per-link fault and
    handshake state machines rely on.
    """
    import numpy as np

    from repro.passive.monitor import _campus_params

    if shards <= 1:
        return [cols]
    src = cols.src
    dst = cols.dst
    proto = cols.proto
    params = _campus_params(is_campus)
    if params is not None:
        network, mask = params
        src_campus = (src & mask) == network
    else:
        src_campus = np.fromiter(
            (is_campus(address) for address in src.tolist()),
            dtype=bool, count=len(cols),
        )
    tcp = proto == PROTO_TCP
    synack = tcp & ((cols.flags & 0x12) == 0x12)
    udp_out = (proto == PROTO_UDP) & src_campus
    owning = np.where(synack | udp_out, src, dst)
    shard_index = (
        (owning.astype(np.uint64) * np.uint64(_HASH_MULTIPLIER))
        & np.uint64(0xFFFFFFFF)
    ) % np.uint64(shards)
    order = np.argsort(shard_index, kind="stable")
    routed = cols.take(order)
    counts = np.bincount(shard_index, minlength=shards)
    bounds = np.concatenate(([0], np.cumsum(counts))).tolist()
    return [
        routed.slice(bounds[index], bounds[index + 1])
        for index in range(shards)
    ]


def split_batch(
    records: list[PacketRecord],
    is_campus: Callable[[int], bool],
    shards: int,
) -> list[list[PacketRecord]]:
    """Partition one record batch into per-shard sub-batches (in order)."""
    if shards <= 1:
        return [records]
    parts: list[list[PacketRecord]] = [[] for _ in range(shards)]
    appends = [part.append for part in parts]
    for record in records:
        appends[shard_of(owning_address(record, is_campus), shards)](record)
    return parts


@dataclass
class ShardState:
    """One shard's long-lived discovery state.

    Wraps a real :class:`PassiveServiceTable` (so folding a record is
    exactly the batch-replay code path) plus the streaming extras: a
    per-endpoint *last-seen* timeline and a processed-record counter.
    Both update in O(1) per record.
    """

    index: int
    table: PassiveServiceTable
    #: endpoint -> latest evidence time (first_seen lives in the table).
    last_seen: dict[Endpoint, float] = field(default_factory=dict)
    records: int = 0

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Fold one routed sub-batch into the shard state."""
        table = self.table
        table.observe_batch(records)
        self.records += len(records)
        # Last-seen maintenance mirrors the table's evidence filter for
        # the two signals that stamp first_seen on the default rules
        # (SYN-ACK, UDP source port); it is supplementary state and
        # never feeds the completeness report.
        is_campus = table.is_campus
        tcp_ports = table.tcp_ports
        udp_ports = table.udp_ports
        exclude = table.exclude_sources
        last_seen = self.last_seen
        for record in records:
            proto = record.proto
            if proto == PROTO_TCP:
                flags = record.flags._value_
                if not (flags & 0x02 and flags & 0x10):
                    continue
                port = record.sport
                if tcp_ports is not None and port not in tcp_ports:
                    continue
            elif proto == PROTO_UDP:
                port = record.sport
                if port not in udp_ports:
                    continue
            else:
                continue
            if not is_campus(record.src) or is_campus(record.dst):
                continue
            if record.dst in exclude:
                continue
            endpoint = (record.src, port, proto)
            previous = last_seen.get(endpoint)
            if previous is None or record.time > previous:
                last_seen[endpoint] = record.time

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: table fast path plus a
        group-max update of the last-seen timeline."""
        import numpy as np

        from repro.passive.monitor import _campus_params

        table = self.table
        params = _campus_params(table.is_campus)
        if params is None:
            self.observe_batch(cols.to_records())
            return
        table.observe_columns(cols)
        self.records += len(cols)
        network, mask = params
        proto = cols.proto
        sport = cols.sport
        evidence = (proto == PROTO_TCP) & ((cols.flags & 0x12) == 0x12)
        if table.tcp_ports is not None:
            tcp_ports = np.array(sorted(table.tcp_ports), dtype=np.uint16)
            evidence &= np.isin(sport, tcp_ports)
        if table.udp_ports:
            udp_ports = np.array(sorted(table.udp_ports), dtype=np.uint16)
            evidence |= (proto == PROTO_UDP) & np.isin(sport, udp_ports)
        src = cols.src
        dst = cols.dst
        evidence &= (src & mask) == network
        evidence &= (dst & mask) != network
        exclude = table.exclude_sources
        if exclude:
            evidence &= ~np.isin(dst, np.fromiter(exclude, dtype=np.uint32))
        index = np.flatnonzero(evidence)
        if not index.size:
            return
        src_e = src[index]
        sport_e = sport[index]
        proto_e = proto[index]
        times = cols.time[index]
        keys = (
            (src_e.astype(np.uint64) << np.uint64(24))
            | (sport_e.astype(np.uint64) << np.uint64(8))
            | proto_e
        )
        order = np.lexsort((times, keys))
        sorted_keys = keys[order]
        group_last = order[np.r_[sorted_keys[1:] != sorted_keys[:-1], True]]
        last_seen = self.last_seen
        for address, port, proto_value, time in zip(
            src_e[group_last].tolist(),
            sport_e[group_last].tolist(),
            proto_e[group_last].tolist(),
            times[group_last].tolist(),
        ):
            endpoint = (address, port, proto_value)
            previous = last_seen.get(endpoint)
            if previous is None or time > previous:
                last_seen[endpoint] = time

    # ---- checkpointing ------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot of every mutable field (picklable)."""
        table = self.table
        return {
            "index": self.index,
            "records": self.records,
            "first_seen": dict(table.first_seen),
            "flow_counts": dict(table.flow_counts),
            "clients": {k: set(v) for k, v in table.clients.items()},
            "pending_handshake": dict(table._pending_handshake),
            "udp_requests": set(table._udp_requests),
            "last_seen": dict(self.last_seen),
        }

    def restore_state(self, payload: dict) -> None:
        """Load a :meth:`state_dict` snapshot (table config unchanged)."""
        table = self.table
        table.first_seen = dict(payload["first_seen"])
        table.flow_counts = dict(payload["flow_counts"])
        table.clients = {k: set(v) for k, v in payload["clients"].items()}
        table._pending_handshake = dict(payload["pending_handshake"])
        table._udp_requests = set(payload["udp_requests"])
        self.last_seen = dict(payload["last_seen"])
        self.records = int(payload["records"])


def merge_shards(
    states: list[ShardState], merged: PassiveServiceTable
) -> PassiveServiceTable:
    """Union every shard's table state into *merged* (a fresh table).

    Shard key spaces are disjoint by construction, so the union is a
    plain dict update per field -- the merged table is indistinguishable
    from one that observed the whole stream itself, which is what makes
    streamed reports byte-identical to batch reports.
    """
    for state in states:
        table = state.table
        merged.first_seen.update(table.first_seen)
        merged.flow_counts.update(table.flow_counts)
        merged.clients.update(table.clients)
        merged._pending_handshake.update(table._pending_handshake)
        merged._udp_requests.update(table._udp_requests)
    return merged


def merged_last_seen(states: list[ShardState]) -> dict[Endpoint, float]:
    """Union of every shard's last-seen timeline (disjoint keys)."""
    out: dict[Endpoint, float] = {}
    for state in states:
        out.update(state.last_seen)
    return out
