"""The stream ingestor: bounded fan-out of record batches to shards.

:class:`StreamIngestor` owns one worker thread and one bounded queue
per shard.  The driving thread routes each decoded batch
(:func:`repro.stream.shard.split_batch`) and enqueues the per-shard
sub-batches; workers fold them into their :class:`ShardState` in
arrival order.

Memory stays flat regardless of trace length because nothing in the
pipeline buffers unboundedly: the source yields fixed-size batches, the
queues hold at most ``max_queue_chunks`` sub-batches each (an
over-full queue *blocks the producer* -- backpressure, not growth), and
shard state is keyed by endpoints, whose count is bounded by the
population rather than the observation length.

:meth:`StreamIngestor.drain` is the synchronisation barrier the engine
uses before watermark emission and checkpoints: it returns only when
every queued batch has been folded in, so a snapshot taken after a
drain is a consistent prefix of the stream.
"""

from __future__ import annotations

import queue
import threading
from time import perf_counter

from repro.net.packet import PacketRecord
from repro.stream.shard import ShardState

#: Default bound on queued sub-batches per shard.  With the default
#: 8192-record read batches this caps in-flight records at
#: ``shards * 8 * 8192`` regardless of how long the stream runs.
DEFAULT_MAX_QUEUE_CHUNKS = 8

#: How long one ``put`` attempt waits before re-checking worker health.
DEFAULT_PUT_TIMEOUT = 0.05

#: Total time a single enqueue may stay blocked before the producer
#: gives up and raises :class:`IngestStallError` instead of deadlocking
#: on a queue nobody will ever drain.
DEFAULT_STALL_TIMEOUT = 60.0

_STOP = object()


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the shard index and original error."""

    def __init__(self, index: int, error: BaseException) -> None:
        super().__init__(f"shard {index} worker failed: {error!r}")
        self.index = index
        self.error = error


class IngestStallError(RuntimeError):
    """A shard queue stayed full past the stall budget.

    Raised by the producer when bounded ``put`` retries exhaust
    ``stall_timeout`` seconds without the consumer making room -- the
    structured alternative to blocking forever on a queue whose worker
    has died or wedged.
    """

    def __init__(self, index: int, waited: float, timeouts: int) -> None:
        super().__init__(
            f"shard {index} queue stayed full for {waited:.1f}s "
            f"({timeouts} put timeouts): consumer dead or stalled"
        )
        self.index = index
        self.waited = waited
        self.timeouts = timeouts


class StreamIngestor:
    """Fan record batches out to per-shard workers with backpressure.

    Parameters
    ----------
    states:
        One :class:`ShardState` per shard; workers mutate them.
    max_queue_chunks:
        Bound on queued sub-batches per shard; a full queue blocks
        :meth:`dispatch` until the worker catches up.
    """

    def __init__(
        self,
        states: list[ShardState],
        max_queue_chunks: int = DEFAULT_MAX_QUEUE_CHUNKS,
        put_timeout: float = DEFAULT_PUT_TIMEOUT,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
    ) -> None:
        if not states:
            raise ValueError("at least one shard is required")
        if max_queue_chunks < 1:
            raise ValueError("max_queue_chunks must be >= 1")
        if put_timeout <= 0 or stall_timeout <= 0:
            raise ValueError("put_timeout and stall_timeout must be > 0")
        self.states = states
        self.put_timeout = put_timeout
        self.stall_timeout = stall_timeout
        self.put_timeouts = 0
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=max_queue_chunks) for _ in states
        ]
        self._errors: list[ShardWorkerError] = []
        self._closed = False
        # Observability accumulators (flushed once, at close).
        self.max_queued_records = 0
        self._queued_records = [0] * len(states)
        self._queued_lock = threading.Lock()
        self.shard_records = [0] * len(states)
        self.shard_seconds = [0.0] * len(states)
        self.batches_dispatched = 0
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(index,),
                name=f"repro-stream-shard-{index}",
                daemon=True,
            )
            for index in range(len(states))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def shards(self) -> int:
        return len(self.states)

    def _worker(self, index: int) -> None:
        state = self.states[index]
        work = self._queues[index]
        while True:
            item = work.get()
            if item is _STOP:
                work.task_done()
                return
            started = perf_counter()
            try:
                if isinstance(item, list):
                    state.observe_batch(item)
                else:  # RecordColumns sub-batch from split_columns
                    state.observe_columns(item)
            except BaseException as exc:  # noqa: BLE001 - surfaced on drain
                self._errors.append(ShardWorkerError(index, exc))
                work.task_done()
                return
            self.shard_seconds[index] += perf_counter() - started
            self.shard_records[index] += len(item)
            with self._queued_lock:
                self._queued_records[index] -= len(item)
            work.task_done()

    def _raise_pending(self) -> None:
        if self._errors:
            raise self._errors[0]

    def _put_bounded(self, index: int, part) -> None:
        """Enqueue with timeout + bounded retries instead of blocking forever.

        Each timeout re-checks worker health (a dead worker's pending
        error surfaces immediately rather than after a deadlock) and
        counts toward the stall budget; exhausting the budget raises
        :class:`IngestStallError` naming the wedged shard.
        """
        waited = 0.0
        timeouts = 0
        while True:
            try:
                self._queues[index].put(part, timeout=self.put_timeout)
                return
            except queue.Full:
                timeouts += 1
                self.put_timeouts += 1
                waited += self.put_timeout
                self._raise_pending()
                if waited >= self.stall_timeout:
                    from repro.telemetry.tracing import tracer

                    trc = tracer()
                    if trc.enabled:
                        trc.event(
                            "stream.ingest_stall", shard=index,
                            waited=round(waited, 3), timeouts=timeouts,
                        )
                        trc.dump_flight(
                            f"ingest-stall-shard{index}",
                            f"shard {index} queue full for {waited:.1f}s",
                        )
                    raise IngestStallError(index, waited, timeouts) from None

    def dispatch(self, parts: list) -> None:
        """Enqueue one routed batch (backpressure-blocks, never deadlocks).

        Each part is either a ``list[PacketRecord]`` sub-batch from
        :func:`repro.stream.shard.split_batch` or a
        :class:`repro.trace.columnar.RecordColumns` sub-batch from
        :func:`repro.stream.shard.split_columns`; workers dispatch on
        the type, so the two can even be mixed within one run.

        A full shard queue applies backpressure through the bounded
        retry loop in :meth:`_put_bounded`; a queue that stays full for
        ``stall_timeout`` seconds raises :class:`IngestStallError`.
        """
        if self._closed:
            raise RuntimeError("ingestor already closed")
        self._raise_pending()
        for index, part in enumerate(parts):
            if not part:
                continue
            with self._queued_lock:
                self._queued_records[index] += len(part)
                in_flight = sum(self._queued_records)
                if in_flight > self.max_queued_records:
                    self.max_queued_records = in_flight
            try:
                self._put_bounded(index, part)
            except BaseException:
                with self._queued_lock:
                    self._queued_records[index] -= len(part)
                raise
        self.batches_dispatched += 1

    def drain(self) -> None:
        """Block until every enqueued batch has been folded into state."""
        for work in self._queues:
            work.join()
        self._raise_pending()

    def close(self) -> None:
        """Drain, stop the workers, and join the threads (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for work in self._queues:
            work.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._raise_pending()

    def flush_telemetry(self, registry) -> None:
        """Fold the ingestor's accumulated counters into *registry*."""
        registry.gauge(
            "repro_stream_queue_peak_records",
            "Peak records in flight across all shard queues.",
        ).set(self.max_queued_records)
        registry.counter(
            "repro_stream_batches_total",
            "Routed batches dispatched to shard workers.",
        ).inc(self.batches_dispatched)
        registry.counter(
            "repro_stream_backpressure_timeouts_total",
            "Bounded-put timeouts while shard queues were full.",
        ).inc(self.put_timeouts)
        for index in range(self.shards):
            registry.counter(
                "repro_stream_shard_records_total",
                "Records folded into each shard's state.",
                shard=str(index),
            ).inc(self.shard_records[index])
            registry.counter(
                "repro_stream_shard_seconds_total",
                "Wall time each shard worker spent folding records.",
                shard=str(index),
            ).inc(self.shard_seconds[index])
