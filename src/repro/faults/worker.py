"""Seeded worker-process fault plans for deterministic chaos runs.

Where :class:`~repro.faults.plan.FaultPlan` degrades the *data* (capture
loss, outages, lossy probes), :class:`WorkerFaultPlan` degrades the
*machinery*: it tells a fabric shard worker to crash at a specific
record count, stall (stop consuming and beating) so the supervisor's
miss budget fires, or silently drop a run of heartbeats so the
supervisor declares a perfectly healthy worker dead.  All three exercise
the same failover path; the heartbeat-drop case additionally proves the
fabric survives *false positives* -- killing and replacing a live
worker must still yield a byte-identical report.

Determinism works the same way as the capture plans: every decision is
drawn from :func:`~repro.faults.plan.derive_seed` streams keyed by
``(seed, shard, incarnation)``, so a chaos run replays exactly, and a
*restarted* worker (next incarnation) rolls fresh dice -- with the
per-shard event caps left at their defaults of one, the replacement
runs clean and the run converges instead of crash-looping forever.
Raising the caps (or ``max_restarts`` on the fabric side) turns the
same plan into a restart-budget-exhaustion test.

Trigger points are expressed in *records folded by the shard*, not
global offsets, so a plan is meaningful at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .plan import derive_seed


@dataclass(frozen=True)
class WorkerFaultEvents:
    """The concrete fault schedule for one (shard, incarnation)."""

    crash_at: int | None = None
    stall_at: int | None = None
    drop_heartbeats_at: int | None = None
    drop_heartbeats: int = 0

    @property
    def is_null(self) -> bool:
        return (
            self.crash_at is None
            and self.stall_at is None
            and self.drop_heartbeats_at is None
        )


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Seeded schedule of process-level faults for fabric shard workers.

    Rates are per-(shard, incarnation) probabilities that the fault
    fires at all; when it does, the trigger record index is uniform in
    ``[1, horizon_records]``.  ``*_per_shard`` cap how many incarnations
    of a shard may draw each fault kind -- the default of one means a
    replacement worker always runs clean, so identity tests terminate.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    heartbeat_drop_rate: float = 0.0
    horizon_records: int = 50_000
    crashes_per_shard: int = 1
    stalls_per_shard: int = 1
    drops_per_shard: int = 1
    heartbeat_drop_beats: int = 64

    @property
    def is_null(self) -> bool:
        return (
            self.crash_rate <= 0.0
            and self.stall_rate <= 0.0
            and self.heartbeat_drop_rate <= 0.0
        )

    def _draw(
        self, kind: str, rate: float, cap: int, shard: int, incarnation: int
    ) -> int | None:
        if rate <= 0.0 or incarnation >= cap:
            return None
        rng = np.random.default_rng(
            derive_seed(self.seed, f"faults.worker.{kind}.{shard}.{incarnation}")
        )
        if rng.random() >= rate:
            return None
        return int(rng.integers(1, max(2, self.horizon_records + 1)))

    def events_for(self, shard: int, incarnation: int) -> WorkerFaultEvents:
        """The deterministic fault schedule for one worker incarnation."""
        return WorkerFaultEvents(
            crash_at=self._draw(
                "crash", self.crash_rate, self.crashes_per_shard,
                shard, incarnation,
            ),
            stall_at=self._draw(
                "stall", self.stall_rate, self.stalls_per_shard,
                shard, incarnation,
            ),
            drop_heartbeats_at=self._draw(
                "hbdrop", self.heartbeat_drop_rate, self.drops_per_shard,
                shard, incarnation,
            ),
            drop_heartbeats=self.heartbeat_drop_beats,
        )
