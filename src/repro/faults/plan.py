"""The fault plan: one immutable, seeded description of what fails.

A :class:`FaultPlan` is configuration, not state.  Consumers ask it for
fresh stateful fault models (:meth:`FaultPlan.capture_filter`,
:meth:`FaultPlan.probe_faults`) per measurement pass; the plan itself
can be shared, pickled across worker processes, and reused.

Seeding contract
----------------
Every random stream a plan hands out is derived as
``derive_seed(plan.seed, "faults.<component>.<instance>")``:

* ``faults.capture.<link>`` -- per-link capture loss (i.i.d. + bursts);
* ``faults.outage.<link>`` -- per-link maintenance window placement;
* ``faults.probe.<scan_id>.<machine>`` -- per-scanner-machine probe and
  response transmission loss;
* ``faults.downtime.<scan_id>.<machine>`` -- per-machine outage windows;
* ``faults.cache.<key>`` -- trace-cache corruption rolls.

Streams are consumed in deterministic order (record order on a link,
probe order on a machine), so a fixed ``(seed, rates)`` plan produces
identical faults in every process -- two runs, or ``--jobs 1`` versus
``--jobs 4``, degrade the measurement in exactly the same places.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, replace
from pathlib import Path

from repro.simkernel.rng import derive_seed

#: Fraction of a trace file chopped off when cache corruption strikes.
_TRUNCATION_FRACTION = 0.5

_RATE_FIELDS = (
    "capture_loss_rate",
    "burst_loss_rate",
    "outage_fraction",
    "probe_loss_rate",
    "response_loss_rate",
    "prober_downtime_fraction",
    "cache_corruption_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every injected measurement failure.

    Attributes
    ----------
    seed:
        Root of every fault stream (see the module docstring).  Derive
        it from the experiment's master seed so fault realisations are
        reproducible alongside the population/traffic realisation.
    capture_loss_rate:
        Per-record i.i.d. probability a captured header is dropped at
        the link tap (LANDER losing packets under load).
    burst_loss_rate:
        Per-record probability of *entering* a loss burst (a
        Gilbert-style bad state that swallows whole runs of records,
        as interface buffer overruns do).
    burst_mean_length:
        Mean number of consecutive records a burst swallows
        (geometric).
    outage_fraction:
        Fraction of each monitored link's time spent in scheduled
        maintenance outages; capture on that link sees nothing inside
        an outage window.
    outage_count:
        Number of maintenance windows the outage fraction is split
        into per link.
    probe_loss_rate:
        Probability a single SYN probe transmission never reaches the
        target.
    response_loss_rate:
        Probability a target's answer (SYN-ACK or RST) is lost on the
        way back.
    probe_retries:
        Nmap-style retransmit budget: silent probes are retried up to
        this many extra times with exponential backoff.
    retry_backoff_seconds:
        Backoff before the first retransmit; doubles per attempt, and
        shifts the *observed* discovery time of answers that needed
        retries.
    prober_downtime_fraction:
        Fraction of each sweep during which a scanning machine is down
        (crashed prober host); its probes in that span are never sent.
    cache_corruption_rate:
        Probability a freshly committed trace-cache entry is truncated
        on disk, exercising the damaged-entry eviction path end to
        end.
    """

    seed: int = 0
    # -- passive capture ------------------------------------------------
    capture_loss_rate: float = 0.0
    burst_loss_rate: float = 0.0
    burst_mean_length: float = 50.0
    # -- monitor outages ------------------------------------------------
    outage_fraction: float = 0.0
    outage_count: int = 1
    # -- active probing -------------------------------------------------
    probe_loss_rate: float = 0.0
    response_loss_rate: float = 0.0
    probe_retries: int = 2
    retry_backoff_seconds: float = 1.0
    prober_downtime_fraction: float = 0.0
    # -- storage --------------------------------------------------------
    cache_corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.burst_mean_length < 1.0:
            raise ValueError(
                f"burst_mean_length must be >= 1, got {self.burst_mean_length}"
            )
        if self.outage_count < 1:
            raise ValueError(f"outage_count must be >= 1, got {self.outage_count}")
        if self.probe_retries < 0:
            raise ValueError(f"probe_retries must be >= 0, got {self.probe_retries}")
        if self.retry_backoff_seconds < 0:
            raise ValueError(
                "retry_backoff_seconds must be >= 0, got "
                f"{self.retry_backoff_seconds}"
            )

    # ---- construction -------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The inert plan: every consumer takes its pristine code path."""
        return cls()

    @classmethod
    def seeded(cls, master_seed: int, **rates) -> "FaultPlan":
        """A plan whose fault streams derive from an experiment seed."""
        return cls(seed=derive_seed(master_seed, "faultplan"), **rates)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # ---- classification ----------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when no fault of any kind can fire."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    @property
    def has_capture_faults(self) -> bool:
        return (
            self.capture_loss_rate > 0.0
            or self.burst_loss_rate > 0.0
            or self.outage_fraction > 0.0
        )

    @property
    def has_probe_faults(self) -> bool:
        return (
            self.probe_loss_rate > 0.0
            or self.response_loss_rate > 0.0
            or self.prober_downtime_fraction > 0.0
        )

    # ---- fault-model factories ----------------------------------------

    def capture_filter(self, duration: float) -> "CaptureFilter | None":
        """A fresh capture-loss filter for one pass over a trace.

        Returns ``None`` when the plan injects no capture faults, so
        callers can hand the result straight to the ``faults=``
        parameters of the replay machinery (``None`` means the
        pristine path).  A filter instance carries per-link RNG state
        and must see each pass's records exactly once; build a new one
        per pass.
        """
        if not self.has_capture_faults:
            return None
        from repro.faults.capture import CaptureFilter

        return CaptureFilter(plan=self, duration=duration)

    def probe_faults(
        self, scan_id: int, start: float, duration: float
    ) -> "ProbeFaults | None":
        """A fresh probe-fault model for one active sweep.

        ``None`` when the plan injects no active-measurement faults.
        """
        if not self.has_probe_faults:
            return None
        from repro.faults.active import ProbeFaults

        return ProbeFaults(
            plan=self, scan_id=scan_id, start=start, duration=duration
        )

    # ---- pure derivations ---------------------------------------------

    def outage_windows(
        self, link: str, duration: float
    ) -> tuple[tuple[float, float], ...]:
        """Scheduled maintenance windows for *link* over ``[0, duration)``.

        The outage fraction is split into ``outage_count`` equal
        windows, one placed uniformly at random inside each equal
        segment of the observation, so windows never overlap and the
        realised dark time is exactly ``outage_fraction * duration``.
        A pure function of ``(seed, link, duration)``.
        """
        if self.outage_fraction <= 0.0 or duration <= 0.0:
            return ()
        rng = random.Random(derive_seed(self.seed, f"faults.outage.{link}"))
        segment = duration / self.outage_count
        width = self.outage_fraction * segment
        windows = []
        for index in range(self.outage_count):
            offset = rng.uniform(0.0, segment - width)
            start = index * segment + offset
            windows.append((start, start + width))
        return tuple(windows)

    # ---- storage faults -----------------------------------------------

    def maybe_corrupt_trace(self, path: str | Path, key: tuple) -> bool:
        """Roll for cache corruption and truncate *path* on a hit.

        Called by the dataset builder right after a trace-cache entry
        commits.  Truncation chops the tail of the file, leaving a
        damaged entry whose record payload no longer matches the
        header -- exactly the shape ``TraceCache.lookup`` must detect,
        evict, and regenerate.  Returns whether corruption fired.
        The roll is a pure function of ``(seed, key)``, so every
        worker that writes the same entry corrupts it identically.
        """
        if self.cache_corruption_rate <= 0.0:
            return False
        rng = random.Random(derive_seed(self.seed, f"faults.cache.{key!r}"))
        if rng.random() >= self.cache_corruption_rate:
            return False
        path = Path(path)
        size = path.stat().st_size
        keep = max(1, int(size * (1.0 - _TRUNCATION_FRACTION)))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        return True
