"""Active-measurement faults: lossy probes and crashing prober machines.

The scanner's view degrades in two ways:

* **Transmission loss** -- a SYN never reaches the target
  (``probe_loss_rate``) or the target's SYN-ACK/RST is lost on the
  return path (``response_loss_rate``).  Silence triggers Nmap-style
  retransmits: up to ``probe_retries`` extra attempts, each preceded by
  an exponentially growing backoff, so a recovered answer is *observed
  late* and an unlucky open port is misclassified as filtered.
* **Machine downtime** -- one scanning machine is down for a contiguous
  slice of the sweep (``prober_downtime_fraction``); probes it should
  have sent in that span are never sent at all.

All randomness is drawn from per-``(scan_id, machine)`` streams in
probe order, so a fixed plan degrades a sweep identically in every
process.  A :class:`ProbeFaults` instance is single-sweep: build a
fresh one per scan (:meth:`repro.faults.plan.FaultPlan.probe_faults`).
"""

from __future__ import annotations

import random

from repro.campus.host import ProbeOutcome
from repro.simkernel.rng import derive_seed


class _MachineState:
    """Fault state for one scanning machine within one sweep."""

    __slots__ = ("rng", "down_start", "down_end")

    def __init__(
        self, seed: int, scan_id: int, machine: int,
        start: float, duration: float, downtime_fraction: float,
    ) -> None:
        self.rng = random.Random(
            derive_seed(seed, f"faults.probe.{scan_id}.{machine}")
        )
        if downtime_fraction > 0.0 and duration > 0.0:
            width = downtime_fraction * duration
            placement = random.Random(
                derive_seed(seed, f"faults.downtime.{scan_id}.{machine}")
            )
            offset = placement.uniform(0.0, duration - width)
            self.down_start = start + offset
            self.down_end = self.down_start + width
        else:
            self.down_start = self.down_end = 0.0


class ProbeFaults:
    """Per-sweep fault model consulted by :class:`HalfOpenScanner`.

    Parameters
    ----------
    plan:
        The fault plan supplying rates and the seed.
    scan_id:
        Identifier of the sweep (each scheduled scan degrades
        independently).
    start, duration:
        The sweep's time span; machine downtime windows are placed
        inside it.
    """

    def __init__(self, plan, scan_id: int, start: float, duration: float) -> None:
        self.plan = plan
        self.scan_id = scan_id
        self.start = start
        self.duration = duration
        self._machines: dict[int, _MachineState] = {}
        self._probe_loss = plan.probe_loss_rate
        self._response_loss = plan.response_loss_rate
        self._attempts = 1 + plan.probe_retries
        self._backoff = plan.retry_backoff_seconds
        #: Plain-int tallies for telemetry: extra transmissions sent and
        #: probes that ended in silence.  The scanner folds them into
        #: the metric registry once per sweep.
        self.retransmits = 0
        self.timeouts = 0

    def _machine(self, machine: int) -> _MachineState:
        state = self._machines.get(machine)
        if state is None:
            state = _MachineState(
                self.plan.seed, self.scan_id, machine,
                self.start, self.duration, self.plan.prober_downtime_fraction,
            )
            self._machines[machine] = state
        return state

    def machine_down(self, machine: int, t: float) -> bool:
        """Whether scanning machine *machine* is down at time *t*."""
        state = self._machine(machine)
        return state.down_start <= t < state.down_end

    def downtime_window(self, machine: int) -> tuple[float, float] | None:
        """The machine's downtime span, or None when it never crashes."""
        state = self._machine(machine)
        if state.down_start == state.down_end:
            return None
        return (state.down_start, state.down_end)

    def transmit(
        self, machine: int, outcome: ProbeOutcome
    ) -> tuple[ProbeOutcome, float]:
        """Push one probe through the lossy path with retransmits.

        *outcome* is what the target would answer (resolved by the
        host state machine); the return value is what the scanner
        *observes* and how many seconds of backoff it spent getting
        it.  A probe whose every transmission went unanswered is
        observed as :data:`ProbeOutcome.NOTHING` -- indistinguishable
        from a firewall, which is precisely the confusion the
        degradation experiment measures.
        """
        rng_random = self._machine(machine).rng.random
        answers = outcome is not ProbeOutcome.NOTHING
        delay = 0.0
        for attempt in range(self._attempts):
            if attempt:
                delay += self._backoff * (2.0 ** (attempt - 1))
                self.retransmits += 1
            if self._probe_loss > 0.0 and rng_random() < self._probe_loss:
                continue  # SYN lost in flight; silence, retransmit
            if not answers:
                continue  # target genuinely silent; retransmit anyway
            if self._response_loss > 0.0 and rng_random() < self._response_loss:
                continue  # answer lost on the return path
            return outcome, delay
        self.timeouts += 1
        return ProbeOutcome.NOTHING, delay
