"""Seeded measurement-fault injection.

The paper's measurements were themselves lossy: LANDER capture drops
packets under load, the peering-link monitors went down for
maintenance, and probe responses were silently eaten by firewalls and
congested paths.  This package models those failures as a single
seeded, deterministic :class:`~repro.faults.plan.FaultPlan` so the
sensitivity of every completeness result to measurement failure can be
*measured* instead of hand-waved (see
:mod:`repro.experiments.degradation`).

The seeding contract (DESIGN.md section 9): every stochastic fault
decision derives from ``FaultPlan.seed`` through
:func:`repro.simkernel.rng.derive_seed` with a component-scoped stream
name, and is consumed in deterministic stream order, so a fixed plan
produces bit-identical faults across processes, runs, and
``--jobs N`` fan-out.  ``FaultPlan.none()`` is inert: every consumer
short-circuits to its pristine code path, so analyses without faults
stay byte-identical to a build that never imported this package.
"""

from repro.faults.active import ProbeFaults
from repro.faults.capture import CaptureFilter
from repro.faults.plan import FaultPlan
from repro.faults.worker import WorkerFaultEvents, WorkerFaultPlan

__all__ = [
    "CaptureFilter",
    "FaultPlan",
    "ProbeFaults",
    "WorkerFaultEvents",
    "WorkerFaultPlan",
]
