"""Capture loss and monitor outages at the border taps.

A :class:`CaptureFilter` decides, record by record, whether the
monitoring infrastructure actually *saw* a captured header.  Three
failure modes compose, checked in order:

1. **Scheduled outages** -- the link's monitor is down for maintenance;
   every record on that link inside an outage window is invisible.
   Pure function of ``(plan seed, link, time)``.
2. **Loss bursts** -- a Gilbert-style bad state entered with
   ``burst_loss_rate`` per record and lasting a geometric number of
   records (buffer overruns swallow runs of packets, not singletons).
3. **i.i.d. loss** -- independent per-record drops at
   ``capture_loss_rate`` (steady-state overload).

Loss state is kept *per link* and advanced only by records on that
link, so the drop pattern a link experiences is a pure function of the
sequence of records crossing it -- identical whether the pass is
generated fresh, streamed from the trace cache, consumed record by
record or in batches, or replayed in a different worker process.

A filter instance is single-pass: it must see each record of the pass
exactly once.  Build a fresh one per pass
(:meth:`repro.faults.plan.FaultPlan.capture_filter`).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.net.packet import PacketRecord
from repro.simkernel.rng import derive_seed


class _LinkState:
    """Loss-process state for one link."""

    __slots__ = ("rng", "burst_remaining", "outage_starts", "outage_ends")

    def __init__(
        self,
        seed: int,
        link: str,
        windows: tuple[tuple[float, float], ...],
    ) -> None:
        self.rng = random.Random(derive_seed(seed, f"faults.capture.{link}"))
        self.burst_remaining = 0
        self.outage_starts = [start for start, _ in windows]
        self.outage_ends = [end for _, end in windows]

    def in_outage(self, t: float) -> bool:
        index = bisect_right(self.outage_starts, t) - 1
        return index >= 0 and t < self.outage_ends[index]


@dataclass
class CaptureStats:
    """What one pass's filter did, for degradation reporting."""

    kept: int = 0
    dropped_loss: int = 0
    dropped_outage: int = 0

    @property
    def seen(self) -> int:
        return self.kept + self.dropped_loss + self.dropped_outage

    @property
    def dropped(self) -> int:
        return self.dropped_loss + self.dropped_outage

    @property
    def drop_fraction(self) -> float:
        seen = self.seen
        return self.dropped / seen if seen else 0.0


class CaptureFilter:
    """Single-pass, per-link record filter for one replay.

    Parameters
    ----------
    plan:
        The fault plan supplying rates and the seed.
    duration:
        Length of the observation; outage windows are laid out over
        ``[0, duration)``.
    """

    def __init__(self, plan, duration: float) -> None:
        self.plan = plan
        self.duration = duration
        self.stats = CaptureStats()
        self._links: dict[str, _LinkState] = {}
        # Hoisted rates: keep() sits on the per-record hot path.
        self._loss = plan.capture_loss_rate
        self._burst = plan.burst_loss_rate
        self._burst_continue = (
            1.0 - 1.0 / plan.burst_mean_length if self._burst > 0.0 else 0.0
        )
        self._has_outages = plan.outage_fraction > 0.0

    def _state(self, link: str) -> _LinkState:
        state = self._links.get(link)
        if state is None:
            windows = self.plan.outage_windows(link, self.duration)
            state = _LinkState(self.plan.seed, link, windows)
            self._links[link] = state
        return state

    def outage_windows_for(self, link: str) -> tuple[tuple[float, float], ...]:
        """The maintenance windows this filter applies to *link*."""
        return self.plan.outage_windows(link, self.duration)

    def keep(self, record: PacketRecord) -> bool:
        """Whether the monitors see *record*; advances the loss state."""
        return self._keep(record.link, record.time)

    def _keep(self, link: str, time: float) -> bool:
        """The decision core: pure function of the (link, time) stream."""
        state = self._state(link)
        if self._has_outages and state.in_outage(time):
            # The monitor is off: the record never reaches the capture
            # stack, so it does not advance the loss process either.
            self.stats.dropped_outage += 1
            return False
        if state.burst_remaining > 0:
            state.burst_remaining -= 1
            self.stats.dropped_loss += 1
            return False
        rng_random = state.rng.random
        if self._burst > 0.0 and rng_random() < self._burst:
            # Enter a bad state: this record and a geometric run of
            # followers are lost.  Mean run length = burst_mean_length.
            length = 1
            while rng_random() < self._burst_continue:
                length += 1
            state.burst_remaining = length - 1
            self.stats.dropped_loss += 1
            return False
        if self._loss > 0.0 and rng_random() < self._loss:
            self.stats.dropped_loss += 1
            return False
        self.stats.kept += 1
        return True

    def filter_batch(self, records: list[PacketRecord]) -> list[PacketRecord]:
        """Batch counterpart of :meth:`keep` (same decisions, in order)."""
        keep = self.keep
        return [record for record in records if keep(record)]

    def keep_mask(self, times: list[float], link_indices: list[int],
                  link_names: tuple[str, ...]):
        """Columnar counterpart of :meth:`keep`: a boolean keep mask.

        *times* and *link_indices* are parallel per-record sequences
        (a :class:`repro.trace.columnar.RecordColumns` batch's ``time``
        and ``link`` columns, as lists); *link_names* decodes the
        indices.  The decision loop is the exact scalar core --
        per-link RNG streams advance record by record in stream order
        -- so the drop pattern is bit-identical to filtering the same
        records through :meth:`filter_batch`, without materialising a
        single ``PacketRecord``.
        """
        import numpy as np

        keep = self._keep
        return np.fromiter(
            (keep(link_names[index], time)
             for time, index in zip(times, link_indices)),
            dtype=bool, count=len(times),
        )

    # ---- checkpoint support -------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the filter's mutable state (picklable plain data).

        A filter is single-pass, so a resumed stream run cannot build a
        fresh one -- it must continue the *same* per-link loss processes
        (RNG position, any in-progress burst) or the post-resume drop
        pattern would diverge from an uninterrupted run.  Outage windows
        are pure functions of the plan and are not stored.
        """
        return {
            "stats": {
                "kept": self.stats.kept,
                "dropped_loss": self.stats.dropped_loss,
                "dropped_outage": self.stats.dropped_outage,
            },
            "links": {
                link: {
                    "rng_state": state.rng.getstate(),
                    "burst_remaining": state.burst_remaining,
                }
                for link, state in self._links.items()
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh filter.

        The filter must have been built from the same plan and duration
        the snapshot was taken under; per-link states not present in
        the snapshot stay lazily initialised as usual.
        """
        stats = payload.get("stats", {})
        self.stats.kept = int(stats.get("kept", 0))
        self.stats.dropped_loss = int(stats.get("dropped_loss", 0))
        self.stats.dropped_outage = int(stats.get("dropped_outage", 0))
        self._links.clear()
        for link, saved in payload.get("links", {}).items():
            state = self._state(link)
            state.rng.setstate(saved["rng_state"])
            state.burst_remaining = int(saved["burst_remaining"])
