"""Lightweight tracing spans.

``span(name)`` times a block of work with both a monotonic wall clock
(:func:`time.perf_counter`) and the process CPU clock
(:func:`time.process_time`), and accumulates the result into the active
registry's per-phase aggregates.  Spans nest: the aggregate key is the
``/``-joined path of the open spans, so ``survey/build`` and
``survey/replay`` are separate phases under one ``survey`` root::

    from repro.telemetry import span

    with span("survey"):
        with span("build"):
            dataset = build_dataset(...)
        with span("replay"):
            dataset.replay(table)

Aggregation, not event logging: each path keeps count, total wall and
CPU seconds, and min/max wall time (:class:`.metrics.SpanAggregate`) --
enough for "where did the time go" without an unbounded trace buffer.
With telemetry disabled, ``span()`` returns a shared no-op context
manager, so an instrumented block costs two trivial calls.
"""

from __future__ import annotations

from time import perf_counter, process_time

from repro.telemetry.metrics import MetricRegistry, SpanAggregate, registry


class SpanTimer:
    """Context manager timing one span on a specific registry."""

    __slots__ = ("_registry", "_name", "path", "_wall0", "_cpu0")

    def __init__(self, owner: MetricRegistry, name: str) -> None:
        self._registry = owner
        self._name = name
        self.path = name

    def __enter__(self) -> "SpanTimer":
        stack = self._registry._span_stack
        stack.append(self._name)
        self.path = "/".join(stack)
        self._wall0 = perf_counter()
        self._cpu0 = process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = perf_counter() - self._wall0
        cpu = process_time() - self._cpu0
        owner = self._registry
        if owner._span_stack and owner._span_stack[-1] == self._name:
            owner._span_stack.pop()
        aggregate = owner.spans.get(self.path)
        if aggregate is None:
            aggregate = owner.spans[self.path] = SpanAggregate(name=self.path)
        aggregate.add(wall, cpu)


def span(name: str):
    """Open a timing span on the active registry (no-op when disabled)."""
    return registry().span(name)
