"""Replay tap: a counting observer for instrumented passive passes.

When telemetry is enabled, the dataset replay chokepoint
(:meth:`repro.datasets.builder.BuiltDataset.replay`) appends a
:class:`ReplayTap` to the observer list.  The tap rides the same pass
as the real observers -- it sees exactly the records they see,
including under fault filters -- and counts what the paper's passive
analysis is made of: records per peering link, protocol mix, and
SYN-ACKs (the service-evidence signal of Section 3.2).

The tap is an *additional* observer: it never mutates records and never
changes what the other observers of the pass receive, so enabling it
cannot perturb any experiment result.  Counts accumulate in plain local
dicts during the pass and are folded into the active registry once at
the end (:meth:`ReplayTap.flush_into`), keeping the per-record cost to
a few dict operations.
"""

from __future__ import annotations

from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketRecord

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}


class ReplayTap:
    """Counts records flowing through one replay pass."""

    __slots__ = ("records", "synacks", "by_link", "by_proto")

    def __init__(self) -> None:
        self.records = 0
        self.synacks = 0
        self.by_link: dict[str, int] = {}
        self.by_proto: dict[int, int] = {}

    def observe(self, record: PacketRecord) -> None:
        self.observe_batch([record])

    def observe_batch(self, records: list[PacketRecord]) -> None:
        self.records += len(records)
        by_link = self.by_link
        by_proto = self.by_proto
        synacks = 0
        for record in records:
            link = record.link
            by_link[link] = by_link.get(link, 0) + 1
            proto = record.proto
            by_proto[proto] = by_proto.get(proto, 0) + 1
            if proto == PROTO_TCP and record.flags._value_ & 0x12 == 0x12:
                synacks += 1
        self.synacks += synacks

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: three bincounts, no records."""
        import numpy as np

        count = len(cols)
        self.records += count
        if not count:
            return
        by_link = self.by_link
        link_counts = np.bincount(cols.link, minlength=len(cols.link_names))
        for index, link_count in enumerate(link_counts.tolist()):
            if link_count:
                link = cols.link_names[index]
                by_link[link] = by_link.get(link, 0) + link_count
        by_proto = self.by_proto
        proto_values, proto_counts = np.unique(cols.proto, return_counts=True)
        for proto, proto_count in zip(
            proto_values.tolist(), proto_counts.tolist()
        ):
            by_proto[proto] = by_proto.get(proto, 0) + proto_count
        tcp = cols.proto == PROTO_TCP
        self.synacks += int(((cols.flags & 0x12) == 0x12)[tcp].sum())

    def flush_into(self, registry) -> None:
        """Fold this pass's counts into *registry* (once, at pass end)."""
        registry.counter(
            "repro_passive_records_total",
            "Packet records delivered to passive observers.",
        ).inc(self.records)
        registry.counter(
            "repro_passive_synacks_total",
            "SYN-ACK records seen by passive observers (service evidence).",
        ).inc(self.synacks)
        for link, count in self.by_link.items():
            registry.counter(
                "repro_passive_link_records_total",
                "Packet records per peering link.",
                link=link or "unknown",
            ).inc(count)
        for proto, count in self.by_proto.items():
            registry.counter(
                "repro_passive_protocol_records_total",
                "Packet records per IP protocol.",
                proto=_PROTO_NAMES.get(proto, str(proto)),
            ).inc(count)
