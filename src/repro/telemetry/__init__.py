"""Zero-overhead-by-default observability for the repro pipeline.

The subsystem has four pieces:

* :mod:`.metrics` -- ``Counter`` / ``Gauge`` / ``Histogram`` primitives
  in a :class:`MetricRegistry`, with a module-level *active* registry
  that defaults to a shared no-op :class:`NullRegistry`;
* :mod:`.spans` -- ``span(name)`` context-manager tracing with nested
  per-phase wall/CPU aggregates;
* :mod:`.manifest` -- :class:`RunManifest` snapshots of what ran under
  what configuration (dataset, seed, scale, fault digest, git SHA);
* :mod:`.export` -- Prometheus text and JSON-lines exporters, written
  per run into a ``--telemetry DIR`` directory and read back by
  ``python -m repro stats``.

Instrumentation contract: enabling telemetry must never change any
experiment result -- only record what happened.  With telemetry off
(the default) instrumented code pays at most one no-op call per
aggregate update, and hot paths are gated on ``registry().enabled``.
"""

from repro.telemetry.export import (
    JSONL_FILE,
    MANIFEST_FILE,
    PROMETHEUS_FILE,
    jsonl_text,
    load_metrics,
    load_run,
    prometheus_text,
    write_exports,
)
from repro.telemetry.manifest import (
    RunManifest,
    fault_plan_digest,
    git_sha,
    load_manifest,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    SpanAggregate,
    disable,
    enable,
    registry,
    set_registry,
    telemetry_enabled,
)
from repro.telemetry.spans import SpanTimer, span
from repro.telemetry.tap import ReplayTap

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "SpanAggregate",
    "SpanTimer",
    "ReplayTap",
    "RunManifest",
    "DEFAULT_TIME_BUCKETS",
    "JSONL_FILE",
    "MANIFEST_FILE",
    "PROMETHEUS_FILE",
    "disable",
    "enable",
    "fault_plan_digest",
    "git_sha",
    "jsonl_text",
    "load_manifest",
    "load_metrics",
    "load_run",
    "prometheus_text",
    "registry",
    "set_registry",
    "span",
    "telemetry_enabled",
    "write_exports",
]
