"""Zero-overhead-by-default observability for the repro pipeline.

The subsystem has four pieces:

* :mod:`.metrics` -- ``Counter`` / ``Gauge`` / ``Histogram`` primitives
  in a :class:`MetricRegistry`, with a module-level *active* registry
  that defaults to a shared no-op :class:`NullRegistry`;
* :mod:`.spans` -- ``span(name)`` context-manager tracing with nested
  per-phase wall/CPU aggregates;
* :mod:`.manifest` -- :class:`RunManifest` snapshots of what ran under
  what configuration (dataset, seed, scale, fault digest, git SHA);
* :mod:`.export` -- Prometheus text and JSON-lines exporters, written
  per run into a ``--telemetry DIR`` directory and read back by
  ``python -m repro stats``;
* :mod:`.tracing` / :mod:`.flight` / :mod:`.chrome` -- distributed
  event tracing: causally linked spans/events sharing one per-run
  ``trace_id`` across processes (fabric queue messages and the query
  service's W3C ``traceparent`` header carry the context), a bounded
  per-process flight-recorder ring dumped atomically on crashes and
  stalls, and a Chrome-trace/Perfetto exporter behind
  ``python -m repro trace-view``.

Instrumentation contract: enabling telemetry must never change any
experiment result -- only record what happened.  With telemetry off
(the default) instrumented code pays at most one no-op call per
aggregate update, and hot paths are gated on ``registry().enabled``.
"""

from repro.telemetry.export import (
    JSONL_FILE,
    MANIFEST_FILE,
    PROMETHEUS_FILE,
    jsonl_text,
    load_metrics,
    load_run,
    prometheus_text,
    write_exports,
)
from repro.telemetry.manifest import (
    RunManifest,
    fault_plan_digest,
    git_sha,
    load_manifest,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    SpanAggregate,
    disable,
    enable,
    registry,
    set_registry,
    telemetry_enabled,
)
from repro.telemetry.chrome import (
    chrome_trace,
    load_events,
    summarize,
    write_chrome_trace,
)
from repro.telemetry.flight import (
    DEFAULT_FLIGHT_LIMIT,
    FlightRecorder,
    NullFlightRecorder,
    load_flight_dump,
)
from repro.telemetry.spans import SpanTimer, span
from repro.telemetry.tap import ReplayTap
from repro.telemetry.tracing import (
    NullTracer,
    SpanContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    tracer,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullFlightRecorder",
    "NullRegistry",
    "NullTracer",
    "SpanAggregate",
    "SpanContext",
    "SpanTimer",
    "ReplayTap",
    "RunManifest",
    "Tracer",
    "DEFAULT_FLIGHT_LIMIT",
    "DEFAULT_TIME_BUCKETS",
    "JSONL_FILE",
    "MANIFEST_FILE",
    "PROMETHEUS_FILE",
    "chrome_trace",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "fault_plan_digest",
    "git_sha",
    "jsonl_text",
    "load_events",
    "load_flight_dump",
    "load_manifest",
    "load_metrics",
    "load_run",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "prometheus_text",
    "registry",
    "set_registry",
    "set_tracer",
    "span",
    "summarize",
    "telemetry_enabled",
    "tracer",
    "tracing_enabled",
    "write_chrome_trace",
    "write_exports",
]
