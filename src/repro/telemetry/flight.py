"""The flight recorder: a bounded ring of recent trace events.

Aggregate metrics answer "how much"; the flight recorder answers "what
happened *just before* it went wrong".  Every traced process keeps the
last ``limit`` events in a :class:`collections.deque` -- recording is
one append, cheap enough for per-batch notes -- and dumps the ring to
an atomic JSON file when something fails: a worker's injected crash, a
supervisor failover, a degraded run, an ingest stall.

Dumps are **once per key**: the first caller of :meth:`FlightRecorder.dump`
with a given key writes the file, every later caller is a no-op.  That
makes "exactly one post-mortem per incident" a property of the recorder
rather than a discipline every call site must re-implement, and it is
what the ``FabricDegradedError`` exactly-once test pins down.

The atomic write (tmp + fsync + rename + parent-dir fsync) mirrors
:func:`repro.stream.checkpoint.write_atomic`; it is re-implemented here
because telemetry sits *below* the stream layer in the import graph and
must not pull it in.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path

#: Default ring capacity: enough to cover several barrier rounds of
#: notes either side of a failure without holding the whole run.
DEFAULT_FLIGHT_LIMIT = 512

#: Dump files are named ``flight-<process>-<key>.json``.
FLIGHT_PREFIX = "flight-"


def _write_atomic(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fileobj:
        fileobj.write(data)
        fileobj.flush()
        os.fsync(fileobj.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class FlightRecorder:
    """Bounded ring buffer of recent events with once-per-key dumps."""

    def __init__(
        self, limit: int = DEFAULT_FLIGHT_LIMIT, process: str = "main"
    ) -> None:
        if limit < 1:
            raise ValueError("flight recorder limit must be >= 1")
        self.limit = limit
        self.process = process
        self._ring: deque = deque(maxlen=limit)
        self._dumps: dict[str, str] = {}
        self._lock = threading.Lock()

    def record(self, entry: dict) -> None:
        """Append one event (old events fall off the far end)."""
        self._ring.append(entry)

    def snapshot(self) -> list[dict]:
        """The buffered events, oldest first (a copy; safe to mutate)."""
        return list(self._ring)

    def dump(self, directory: str | Path, key: str, reason: str) -> Path | None:
        """Write the ring to ``flight-<process>-<key>.json``, once.

        Returns the written path, or ``None`` when *key* was already
        dumped (every incident gets exactly one post-mortem file).
        """
        with self._lock:
            if key in self._dumps:
                return None
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{FLIGHT_PREFIX}{self.process}-{key}.json"
            payload = {
                "process": self.process,
                "pid": os.getpid(),
                "key": key,
                "reason": reason,
                "dumped_unix": time.time(),
                "events": list(self._ring),
            }
            _write_atomic(
                path,
                json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            )
            self._dumps[key] = path.name
        from repro.telemetry.metrics import registry

        reg = registry()
        if reg.enabled:
            reg.counter(
                "repro_trace_flight_dumps_total",
                "Flight-recorder post-mortem dumps written.",
            ).inc()
        return path

    def state(self) -> dict:
        """Health summary for ``/healthz``: buffer fill and dumps taken."""
        with self._lock:
            return {
                "limit": self.limit,
                "buffered": len(self._ring),
                "dumps": sorted(self._dumps.values()),
            }


class NullFlightRecorder(FlightRecorder):
    """Shared do-nothing recorder handed out by the null tracer."""

    def __init__(self) -> None:
        super().__init__(limit=1, process="null")

    def record(self, entry: dict) -> None:
        pass

    def dump(self, directory: str | Path, key: str, reason: str) -> None:
        return None

    def state(self) -> dict:
        return {"limit": 0, "buffered": 0, "dumps": []}


def load_flight_dump(path: str | Path) -> dict | None:
    """Read back one dump file; ``None`` when missing or unreadable."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "events" not in payload:
        return None
    return payload
