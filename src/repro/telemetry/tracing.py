"""Distributed event tracing with zero overhead when disabled.

This module gives every run a single ``trace_id`` and lets each process
emit causally linked *events* and *spans* into an append-only JSONL
file (``trace-events-<process>.jsonl``) under one shared trace
directory.  Causality crosses process boundaries two ways:

* **Fabric queues** -- the supervisor appends its current
  ``(trace_id, span_id)`` pair to every in-band queue message, and the
  shard worker uses it as the ``parent`` of the events it emits while
  handling that message.  A failover therefore shows up as one causal
  chain: death detection (supervisor) -> restore span (supervisor) ->
  ``worker.start`` (replacement incarnation) -> gap-replay batches.
* **HTTP** -- the query service accepts a W3C ``traceparent`` request
  header (``00-<32 hex>-<16 hex>-01``) and parents its per-request
  span on the caller's span.

Two emission tiers keep hot paths cheap: :meth:`Tracer.event` is
*durable* (ring buffer + JSONL line + flush) and is reserved for
low-rate lifecycle/barrier moments; :meth:`Tracer.note` touches only
the in-memory flight-recorder ring and is safe per batch.  When
tracing is off the module-level singleton is a shared
:class:`NullTracer` whose methods are constant no-ops -- the same
contract (byte-identical reports, <2% overhead) the metric registry
made in PR 3.

The tracer is shared between an ingest thread and the asyncio serving
thread in ``repro serve``; the span stack is therefore thread-local
and file writes take a lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.flight import (
    DEFAULT_FLIGHT_LIMIT,
    FlightRecorder,
    NullFlightRecorder,
)

#: Per-process event files are named ``trace-events-<process>.jsonl``.
EVENTS_PREFIX = "trace-events-"

_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """An addressable point in a trace: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """Serialize as a W3C ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a W3C ``traceparent`` header; ``None`` when malformed.

    Only version-00 headers are understood; the all-zero trace id is
    rejected per the spec.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4 or parts[0] != "00":
        return None
    trace_id, span_id = parts[1], parts[2]
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    if not (set(trace_id) <= _HEX and set(span_id) <= _HEX):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


def _parent_ids(parent) -> tuple[str | None, str | None]:
    """Normalize a parent argument to ``(trace_id_or_None, span_id)``.

    Accepts a :class:`SpanContext`, a ``(trace_id, span_id)`` tuple
    (the wire form carried on fabric queue messages), or a bare span-id
    string from the local process.
    """
    if parent is None:
        return None, None
    if isinstance(parent, SpanContext):
        return parent.trace_id, parent.span_id
    if isinstance(parent, tuple) and len(parent) == 2:
        return parent[0], parent[1]
    if isinstance(parent, str):
        return None, parent
    return None, None


class _TraceSpan:
    """Context manager recording one durable span on exit.

    ``fields`` is mutable while the span is open, so call sites can
    attach results (record counts, status codes) discovered mid-span.
    """

    __slots__ = ("_tracer", "name", "span_id", "_parent", "fields", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, parent, fields: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = new_span_id()
        self._parent = parent
        self.fields = fields

    def __enter__(self) -> "_TraceSpan":
        self._tracer._push(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        self._tracer._pop()
        if exc_type is not None:
            self.fields.setdefault("error", exc_type.__name__)
        self._tracer._emit(
            kind="span",
            name=self.name,
            span_id=self.span_id,
            parent=self._parent,
            ts=self._wall,
            dur=duration,
            fields=self.fields,
            durable=True,
        )

    @property
    def context(self) -> SpanContext:
        return SpanContext(self._tracer.trace_id, self.span_id)


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()
    fields: dict = {}
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """A per-process emitter of causally linked trace events."""

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        *,
        trace_id: str | None = None,
        process: str = "main",
        flight_limit: int = DEFAULT_FLIGHT_LIMIT,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.trace_id = trace_id or new_trace_id()
        self.process = process
        self.pid = os.getpid()
        # Every record a process emits parents, by default, on this
        # root span, so "who started this process" is always answerable.
        self.root_id = new_span_id()
        self.flight = FlightRecorder(limit=flight_limit, process=process)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._file = open(
            self.directory / f"{EVENTS_PREFIX}{process}.jsonl",
            "a",
            encoding="utf-8",
        )
        self._closed = False
        self.event("process.start", span=self.root_id)

    # -- span stack (thread-local: ingest thread vs asyncio thread) --

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id: str) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def current_ids(self) -> tuple[str, str]:
        """The ``(trace_id, span_id)`` wire context to attach to messages."""
        stack = self._stack()
        return (self.trace_id, stack[-1] if stack else self.root_id)

    def current_context(self) -> SpanContext:
        trace_id, span_id = self.current_ids()
        return SpanContext(trace_id, span_id)

    # -- emission --

    def _emit(
        self,
        *,
        kind: str,
        name: str,
        parent,
        ts: float,
        fields: dict,
        span_id: str | None = None,
        dur: float | None = None,
        durable: bool = False,
    ) -> None:
        parent_trace, parent_span = _parent_ids(parent)
        if parent_span is None:
            parent_span = self.root_id
        record = {
            "ts": ts,
            "kind": kind,
            "name": name,
            "trace": self.trace_id,
            "parent": parent_span,
            "process": self.process,
            "pid": self.pid,
        }
        if span_id is not None:
            record["span"] = span_id
        if dur is not None:
            record["dur"] = dur
        if parent_trace is not None and parent_trace != self.trace_id:
            record["link_trace"] = parent_trace
        if fields:
            record["fields"] = fields
        self.flight.record(record)
        if durable and not self._closed:
            line = json.dumps(record, separators=(",", ":"))
            with self._lock:
                if not self._closed:
                    self._file.write(line + "\n")
                    self._file.flush()

    def event(self, name: str, *, parent=None, span: str | None = None, **fields) -> None:
        """A durable point event (ring + JSONL + flush). Low-rate only."""
        self._emit(
            kind="event",
            name=name,
            span_id=span,
            parent=parent,
            ts=time.time(),
            fields=fields,
            durable=True,
        )

    def note(self, name: str, *, parent=None, **fields) -> None:
        """A ring-only event: cheap enough for per-batch call sites."""
        self._emit(
            kind="event",
            name=name,
            parent=parent,
            ts=time.time(),
            fields=fields,
            durable=False,
        )

    def span(self, name: str, *, parent=None, **fields) -> _TraceSpan:
        """A durable timed span; nests via the thread-local stack."""
        if parent is None:
            stack = self._stack()
            if stack:
                parent = stack[-1]
        return _TraceSpan(self, name, parent, fields)

    def dump_flight(self, key: str, reason: str) -> Path | None:
        """Dump the flight ring to the trace directory (once per key)."""
        return self.flight.dump(self.directory, key, reason)

    def flush(self) -> None:
        """Flush the event file (call before forking a child)."""
        with self._lock:
            if not self._closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.flush()
                self._file.close()


class NullTracer:
    """Shared no-op tracer active when tracing is off.

    Mirrors the :class:`Tracer` surface with constant-cost methods so
    call sites can run unconditionally cheap checks (``tracer().enabled``)
    or even skip the check for rare events.
    """

    enabled = False
    trace_id = ""
    process = "null"
    root_id = ""
    directory = None
    flight = NullFlightRecorder()

    def current_ids(self) -> None:
        return None

    def current_context(self) -> None:
        return None

    def event(self, name: str, *, parent=None, span=None, **fields) -> None:
        pass

    def note(self, name: str, *, parent=None, **fields) -> None:
        pass

    def span(self, name: str, *, parent=None, **fields) -> _NullSpan:
        return _NULL_SPAN

    def dump_flight(self, key: str, reason: str) -> None:
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


_NULL_TRACER = NullTracer()
_active: Tracer | NullTracer = _NULL_TRACER


def tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (the shared null one by default)."""
    return _active


def set_tracer(instance: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install *instance* (``None`` -> the null tracer); returns it.

    Forked fabric workers call this first thing: the child inherits the
    parent's tracer object, whose file handle it must not write.
    """
    global _active
    _active = instance if instance is not None else _NULL_TRACER
    return _active


def enable_tracing(
    directory: str | Path,
    *,
    process: str = "main",
    trace_id: str | None = None,
    flight_limit: int = DEFAULT_FLIGHT_LIMIT,
) -> Tracer:
    """Create and install a real tracer writing under *directory*."""
    return set_tracer(
        Tracer(
            directory,
            trace_id=trace_id,
            process=process,
            flight_limit=flight_limit,
        )
    )


def disable_tracing() -> None:
    """Close the active tracer (if real) and restore the null tracer."""
    global _active
    if _active is not _NULL_TRACER:
        _active.close()
    _active = _NULL_TRACER


def tracing_enabled() -> bool:
    return _active.enabled
