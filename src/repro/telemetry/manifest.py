"""Run manifests: what ran, under what configuration.

A :class:`RunManifest` snapshots everything needed to interpret (and
re-run) one instrumented invocation: the command and its arguments, the
dataset/seed/scale triple, a digest of the fault plan, the git SHA the
code ran at, and interpreter/package versions.  Exporters attach the
final metric values next to it (``manifest.json`` in the telemetry
directory), so a single file answers both "what was measured" and
"what came out".
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Bump when the manifest layout changes.
MANIFEST_VERSION = 1


def fault_plan_digest(plan) -> str | None:
    """Stable digest of a :class:`repro.faults.plan.FaultPlan`.

    The plan is a frozen dataclass, so its ``repr`` enumerates every
    field deterministically; hashing it identifies the fault
    configuration without embedding all the rates in the manifest.
    ``None`` plans (pristine runs) digest to ``None``.
    """
    if plan is None:
        return None
    return hashlib.sha256(repr(plan).encode("utf-8")).hexdigest()[:16]


def git_sha() -> str | None:
    """The repository HEAD this code runs from, or None outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


@dataclass
class RunManifest:
    """Configuration snapshot of one instrumented run."""

    command: str
    dataset: str | None = None
    seed: int | None = None
    scale: float | None = None
    fault_digest: str | None = None
    arguments: dict = field(default_factory=dict)
    git_sha: str | None = None
    python_version: str = ""
    repro_version: str = ""
    platform: str = ""
    created_unix: float = 0.0

    @classmethod
    def collect(
        cls,
        command: str,
        dataset: str | None = None,
        seed: int | None = None,
        scale: float | None = None,
        faults=None,
        arguments: dict | None = None,
    ) -> "RunManifest":
        """Snapshot the environment around one run."""
        import repro

        return cls(
            command=command,
            dataset=dataset,
            seed=seed,
            scale=scale,
            fault_digest=fault_plan_digest(faults),
            arguments=dict(arguments or {}),
            git_sha=git_sha(),
            python_version=sys.version.split()[0],
            repro_version=getattr(repro, "__version__", ""),
            platform=platform.platform(),
            created_unix=time.time(),
        )

    def to_json_dict(self, metrics: dict | None = None) -> dict:
        """The manifest (plus an optional metrics snapshot) as JSON data."""
        payload = {"version": MANIFEST_VERSION, "manifest": asdict(self)}
        if metrics is not None:
            payload["metrics"] = metrics
        return payload

    def write(self, path: str | Path, metrics: dict | None = None) -> Path:
        """Write ``manifest.json``-style output; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_json_dict(metrics), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        return path


def load_manifest(path: str | Path) -> dict | None:
    """Read a manifest payload written by :meth:`RunManifest.write`.

    Returns the full payload dict (``version`` / ``manifest`` /
    optional ``metrics``), or None when missing or unreadable.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "manifest" not in payload:
        return None
    return payload
