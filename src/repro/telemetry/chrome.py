"""Merge per-process trace event files into one viewable timeline.

Every traced process appends JSONL records to its own
``trace-events-<process>.jsonl`` under the shared trace directory
(see :mod:`repro.telemetry.tracing`).  This module merges those files
into (a) a Chrome-trace-event JSON document -- loadable in
``chrome://tracing`` or Perfetto -- and (b) a plain-text summary for
terminals: per-process event counts, span latencies, the failover
timeline, and per-shard ingest lag.

Chrome-trace mapping: each repro process becomes a synthetic trace
"process" (``ph: "M"`` / ``process_name`` metadata, supervisor-like
processes sorted first); spans become complete events (``ph: "X"``,
microsecond ``ts``/``dur``); point events become instants
(``ph: "i"``); and whenever a record's parent span lives in a
*different* process, a flow arrow (``ph: "s"`` -> ``ph: "f"``) is
drawn between them, which is how a failover renders as one connected
chain from the supervisor's death-detection through the replacement
worker's start.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.report import TextTable
from repro.telemetry.tracing import EVENTS_PREFIX


def load_events(directory: str | Path) -> list[dict]:
    """Parse every ``trace-events-*.jsonl`` under *directory*.

    Records are returned sorted by timestamp.  Unparseable lines (a
    process killed mid-write can truncate its last line) are skipped.
    """
    directory = Path(directory)
    events: list[dict] = []
    for path in sorted(directory.glob(f"{EVENTS_PREFIX}*.jsonl")):
        with open(path, "r", encoding="utf-8") as fileobj:
            for line in fileobj:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "ts" in record and "name" in record:
                    events.append(record)
    events.sort(key=lambda record: record.get("ts", 0.0))
    return events


def _process_order(events: list[dict]) -> list[str]:
    """Stable display order: coordinator-like processes first."""
    names = sorted({record.get("process", "?") for record in events})
    head = [n for n in names if n in ("supervisor", "engine", "main")]
    return head + [n for n in names if n not in head]


def chrome_trace(events: list[dict]) -> dict:
    """Build a Chrome-trace-event document from merged records."""
    order = _process_order(events)
    pids = {name: index + 1 for index, name in enumerate(order)}
    trace_events: list[dict] = []
    for name, pid in pids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    # Where each span id lives, for cross-process flow arrows.
    span_home: dict[str, str] = {}
    for record in events:
        span_id = record.get("span")
        if span_id:
            span_home[span_id] = record.get("process", "?")
    flow_id = 0
    for record in events:
        process = record.get("process", "?")
        pid = pids.get(process, 0)
        ts_us = record["ts"] * 1e6
        args = {
            "trace": record.get("trace"),
            "span": record.get("span"),
            "parent": record.get("parent"),
        }
        args.update(record.get("fields", {}))
        if record.get("kind") == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "pid": pid,
                    "tid": record.get("pid", 0),
                    "ts": ts_us,
                    "dur": record.get("dur", 0.0) * 1e6,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": record["name"],
                    "pid": pid,
                    "tid": record.get("pid", 0),
                    "ts": ts_us,
                    "args": args,
                }
            )
        parent = record.get("parent")
        home = span_home.get(parent)
        if parent and home is not None and home != process:
            flow_id += 1
            trace_events.append(
                {
                    "ph": "s",
                    "id": flow_id,
                    "name": "causal",
                    "cat": "trace",
                    "pid": pids.get(home, 0),
                    "tid": 0,
                    "ts": ts_us,
                }
            )
            trace_events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "name": "causal",
                    "cat": "trace",
                    "pid": pid,
                    "tid": record.get("pid", 0),
                    "ts": ts_us,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    directory: str | Path, out: str | Path | None = None
) -> tuple[Path, int]:
    """Merge *directory* and write the Chrome trace; returns (path, count)."""
    directory = Path(directory)
    events = load_events(directory)
    document = chrome_trace(events)
    path = Path(out) if out is not None else directory / "trace.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, separators=(",", ":")), encoding="utf-8"
    )
    return path, len(events)


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


def summarize(events: list[dict]) -> str:
    """Render the merged timeline as terminal text."""
    lines: list[str] = []
    if not events:
        return "no trace events found\n"
    traces = sorted({record.get("trace", "?") for record in events})
    start = events[0]["ts"]
    end = events[-1]["ts"]
    lines.append(
        f"trace {', '.join(traces)}: {len(events)} events over "
        f"{_format_seconds(max(0.0, end - start))}"
    )
    lines.append("")

    by_process: dict[str, list[dict]] = {}
    for record in events:
        by_process.setdefault(record.get("process", "?"), []).append(record)
    table = TextTable("Processes", ["process", "events", "spans", "first", "last"])
    for name in _process_order(events):
        records = by_process[name]
        spans = sum(1 for r in records if r.get("kind") == "span")
        table.add_row(
            name,
            len(records),
            spans,
            f"+{_format_seconds(records[0]['ts'] - start)}",
            f"+{_format_seconds(records[-1]['ts'] - start)}",
        )
    lines.append(table.render())
    lines.append("")

    durations: dict[str, list[float]] = {}
    for record in events:
        if record.get("kind") == "span" and "dur" in record:
            durations.setdefault(record["name"], []).append(record["dur"])
    if durations:
        table = TextTable("Span latencies", ["span", "count", "mean", "max"])
        for name in sorted(durations):
            values = durations[name]
            table.add_row(
                name,
                len(values),
                _format_seconds(sum(values) / len(values)),
                _format_seconds(max(values)),
            )
        lines.append(table.render())
        lines.append("")

    failover = [
        record
        for record in events
        if record["name"]
        in ("fabric.dead", "fabric.restore", "worker.start", "worker.crash",
            "fabric.degraded")
    ]
    if failover:
        table = TextTable(
            "Failover timeline", ["t", "process", "event", "detail"]
        )
        for record in failover:
            fields = record.get("fields", {})
            detail = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            table.add_row(
                f"+{_format_seconds(record['ts'] - start)}",
                record.get("process", "?"),
                record["name"],
                detail,
            )
        lines.append(table.render())
        lines.append("")

    supervisor_records = 0
    for record in events:
        if record.get("process") in ("supervisor", "engine"):
            fields = record.get("fields", {})
            if isinstance(fields.get("records"), int):
                supervisor_records = max(supervisor_records, fields["records"])
    worker_last: dict[str, int] = {}
    for record in events:
        process = record.get("process", "?")
        if process.startswith("shard"):
            fields = record.get("fields", {})
            if isinstance(fields.get("records"), int):
                worker_last[process] = max(
                    worker_last.get(process, 0), fields["records"]
                )
    if worker_last:
        table = TextTable(
            "Per-shard ingest progress",
            ["worker", "records", "lag vs supervisor"],
        )
        table.add_note("record counts last reported by each worker incarnation")
        for name in sorted(worker_last):
            lag = max(0, supervisor_records - worker_last[name])
            table.add_row(name, worker_last[name], lag)
        lines.append(table.render())
        lines.append("")

    return "\n".join(lines).rstrip("\n") + "\n"
