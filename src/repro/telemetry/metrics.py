"""Process-local metrics primitives.

Three metric kinds, modelled on the Prometheus client data model but
with none of its machinery:

* :class:`Counter` -- a monotonically increasing total;
* :class:`Gauge` -- a value that can move both ways (set at summary
  points, e.g. "services inferred" after a replay);
* :class:`Histogram` -- fixed log-spaced buckets plus sum/count, for
  durations and sizes.

Metrics live in a :class:`MetricRegistry`, keyed by ``(name, labels)``.
The registry also owns span aggregation (:mod:`repro.telemetry.spans`).

Zero overhead by default
------------------------
The module-level active registry starts as a :class:`NullRegistry`
whose ``counter``/``gauge``/``histogram``/``span`` return shared no-op
singletons.  Instrumented code follows two rules:

* **aggregate** increments (once per pass, per sweep, per experiment)
  may go through the active registry unconditionally -- on the null
  registry they cost one attribute lookup and a no-op call;
* **hot-path** instrumentation (per-record taps, chunk timers,
  generator wrappers) must be gated on ``registry().enabled`` so the
  disabled pipeline runs byte-for-byte the same code it always did.

Enabling telemetry (:func:`enable`) swaps in a real
:class:`MetricRegistry`; it must never change any experiment result,
only record what happened.

Naming scheme: ``repro_<layer>_<name>`` with Prometheus conventions
(``_total`` for counters, ``_seconds`` for durations).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator

#: Label set as stored internally: sorted ``(key, value)`` pairs.
LabelItems = tuple[tuple[str, str], ...]

#: Default histogram buckets: log-spaced powers of two from 100 us to
#: ~14 min, suitable for both chunk timings and whole-pass durations.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = tuple(1e-4 * 2**i for i in range(24))


def _label_items(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    labels: LabelItems = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up or down (set at summary points)."""

    name: str
    help: str = ""
    labels: LabelItems = ()
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Fixed-bucket histogram with log-spaced default bounds.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative per bucket); the final implicit ``+Inf`` bucket is
    ``overflow``.  Exporters render cumulative Prometheus buckets.
    """

    name: str
    help: str = ""
    labels: LabelItems = ()
    bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    overflow: int = 0
    sum: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        if not self.bounds or tuple(sorted(self.bounds)) != tuple(self.bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass
class SpanAggregate:
    """Accumulated timings for one span path (see :mod:`.spans`).

    Besides the totals, each aggregate keeps a wall-time histogram
    (same non-cumulative bucket layout as :class:`Histogram`) so
    exporters can graph span *latency distributions*, not just sums.
    """

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    min_seconds: float = 0.0
    max_seconds: float = 0.0
    bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    overflow: int = 0

    kind = "span"

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.bounds)

    def add(self, wall: float, cpu: float) -> None:
        if self.count == 0 or wall < self.min_seconds:
            self.min_seconds = wall
        if wall > self.max_seconds:
            self.max_seconds = wall
        self.count += 1
        self.wall_seconds += wall
        self.cpu_seconds += cpu
        index = bisect_left(self.bounds, wall)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1


class MetricRegistry:
    """A live collection of metrics and span aggregates."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Counter | Gauge | Histogram] = {}
        self.spans: dict[str, SpanAggregate] = {}
        # Span aggregates as reported by each worker process, keyed by
        # process name -- kept alongside the merged ``spans`` so
        # ``repro stats --per-process`` can attribute time per worker.
        self.process_spans: dict[str, dict[str, SpanAggregate]] = {}
        self._span_stack: list[str] = []

    # ---- get-or-create ------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict, **extra):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, help=help, labels=key[1], **extra)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        extra = {} if bounds is None else {"bounds": tuple(bounds)}
        return self._get(Histogram, name, help, labels, **extra)

    # ---- spans --------------------------------------------------------

    def span(self, name: str):
        from repro.telemetry.spans import SpanTimer

        return SpanTimer(self, name)

    # ---- introspection ------------------------------------------------

    def collect(self) -> Iterator[Counter | Gauge | Histogram]:
        """All metrics, sorted by (name, labels) for stable output."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def value(self, name: str, **labels: str) -> float | None:
        """Scalar value of a counter/gauge, or None when absent."""
        metric = self._metrics.get((name, _label_items(labels)))
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge over every label set (0 when absent)."""
        return sum(
            metric.value
            for (metric_name, _), metric in self._metrics.items()
            if metric_name == name and not isinstance(metric, Histogram)
        )

    # ---- snapshot / merge (cross-process shipping) --------------------

    def snapshot(self) -> dict:
        """A plain-data copy of every metric, picklable and mergeable."""
        metrics = []
        for metric in self.collect():
            entry = {
                "kind": metric.kind,
                "name": metric.name,
                "help": metric.help,
                "labels": list(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry.update(
                    bounds=list(metric.bounds),
                    bucket_counts=list(metric.bucket_counts),
                    overflow=metric.overflow,
                    sum=metric.sum,
                    count=metric.count,
                )
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        spans = [_span_entry(agg) for agg in self.spans.values()]
        result = {"metrics": metrics, "spans": spans}
        if self.process_spans:
            result["process_spans"] = {
                process: [_span_entry(agg) for agg in per.values()]
                for process, per in self.process_spans.items()
            }
        return result

    def merge_snapshot(self, snapshot: dict, process: str | None = None) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the snapshot's value
        (last writer wins); spans combine their aggregates.  When
        *process* is given, the snapshot's spans are additionally kept
        under ``process_spans[process]`` so per-worker attribution
        survives the merge.
        """
        for entry in snapshot.get("metrics", ()):
            labels = dict(tuple(pair) for pair in entry.get("labels", ()))
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(entry["name"], entry.get("help", ""), **labels).inc(
                    entry.get("value", 0.0)
                )
            elif kind == "gauge":
                self.gauge(entry["name"], entry.get("help", ""), **labels).set(
                    entry.get("value", 0.0)
                )
            elif kind == "histogram":
                histogram = self.histogram(
                    entry["name"],
                    entry.get("help", ""),
                    bounds=tuple(entry.get("bounds", DEFAULT_TIME_BUCKETS)),
                    **labels,
                )
                counts = entry.get("bucket_counts", ())
                if len(counts) == len(histogram.bucket_counts):
                    for index, count in enumerate(counts):
                        histogram.bucket_counts[index] += count
                    histogram.overflow += entry.get("overflow", 0)
                    histogram.sum += entry.get("sum", 0.0)
                    histogram.count += entry.get("count", 0)
        for span in snapshot.get("spans", ()):
            _merge_span(self.spans, span)
            if process is not None:
                _merge_span(self.process_spans.setdefault(process, {}), span)
        # A supervisor's snapshot may itself carry per-process spans
        # (fabric run exported then re-merged); keep the attribution.
        for name, entries in snapshot.get("process_spans", {}).items():
            target = self.process_spans.setdefault(name, {})
            for span in entries:
                _merge_span(target, span)


def _span_entry(aggregate: SpanAggregate) -> dict:
    """Plain-data form of one span aggregate, for snapshots."""
    return {
        "name": aggregate.name,
        "count": aggregate.count,
        "wall_seconds": aggregate.wall_seconds,
        "cpu_seconds": aggregate.cpu_seconds,
        "min_seconds": aggregate.min_seconds,
        "max_seconds": aggregate.max_seconds,
        "bounds": list(aggregate.bounds),
        "bucket_counts": list(aggregate.bucket_counts),
        "overflow": aggregate.overflow,
    }


def _merge_span(target: dict[str, SpanAggregate], span: dict) -> None:
    """Fold one snapshot span entry into *target* (by span path)."""
    aggregate = target.get(span["name"])
    if aggregate is None:
        aggregate = target[span["name"]] = SpanAggregate(name=span["name"])
    if aggregate.count == 0 or span["min_seconds"] < aggregate.min_seconds:
        aggregate.min_seconds = span["min_seconds"]
    aggregate.max_seconds = max(aggregate.max_seconds, span["max_seconds"])
    aggregate.count += span["count"]
    aggregate.wall_seconds += span["wall_seconds"]
    aggregate.cpu_seconds += span["cpu_seconds"]
    counts = span.get("bucket_counts", ())
    if len(counts) == len(aggregate.bucket_counts) and tuple(
        span.get("bounds", aggregate.bounds)
    ) == tuple(aggregate.bounds):
        for index, count in enumerate(counts):
            aggregate.bucket_counts[index] += count
        aggregate.overflow += span.get("overflow", 0)


class _NullMetric:
    """Shared do-nothing metric handed out by the null registry."""

    __slots__ = ()
    name = ""
    help = ""
    labels: LabelItems = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    """Shared do-nothing context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry(MetricRegistry):
    """The default, disabled registry: everything it returns is a no-op.

    Callers on hot paths should additionally gate on :attr:`enabled`
    (see the module docstring); everything else can call straight
    through and pay one no-op method call per aggregate update.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str):
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels: str):
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", bounds=None, **labels: str):
        return _NULL_METRIC

    def span(self, name: str):
        return _NULL_SPAN


_NULL_REGISTRY = NullRegistry()
_active: MetricRegistry = _NULL_REGISTRY


def registry() -> MetricRegistry:
    """The process-wide active registry (a no-op one by default)."""
    return _active


def set_registry(new_registry: MetricRegistry) -> MetricRegistry:
    """Install *new_registry* as the active one; returns the previous."""
    global _active
    previous = _active
    _active = new_registry
    return previous


def enable() -> MetricRegistry:
    """Install a real registry (idempotent); returns the active one."""
    if not _active.enabled:
        set_registry(MetricRegistry())
    return _active


def disable() -> None:
    """Restore the shared no-op registry (drops collected metrics)."""
    set_registry(_NULL_REGISTRY)


def telemetry_enabled() -> bool:
    """Whether a real registry is currently active."""
    return _active.enabled
