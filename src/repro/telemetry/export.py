"""Exporters: Prometheus text format and JSON lines.

One instrumented run exports three files into its telemetry directory
(:func:`write_exports`):

``manifest.json``
    The :class:`~repro.telemetry.manifest.RunManifest` plus a full
    metrics snapshot (machine-readable, one file per run).
``metrics.prom``
    Prometheus text exposition format -- scrape-ready, with histograms
    rendered as cumulative ``_bucket``/``_sum``/``_count`` series and
    span aggregates as ``repro_span_*`` series labelled by path.
``metrics.jsonl``
    One JSON object per metric per line (``type`` / ``name`` /
    ``labels`` / values) -- the format ``python -m repro stats`` reads
    back, and the easiest one to post-process with ``jq``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.telemetry.manifest import RunManifest, load_manifest
from repro.telemetry.metrics import Histogram, MetricRegistry

MANIFEST_FILE = "manifest.json"
PROMETHEUS_FILE = "metrics.prom"
JSONL_FILE = "metrics.jsonl"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    rendered = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + rendered + "}"


def prometheus_text(registry: MetricRegistry) -> str:
    """Render every metric and span aggregate in exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str, help: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")

    for metric in registry.collect():
        if isinstance(metric, Histogram):
            type_line(metric.name, "histogram", metric.help)
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                labels = _format_labels(metric.labels, (("le", f"{bound:g}"),))
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _format_labels(metric.labels, (("le", "+Inf"),))
            lines.append(f"{metric.name}_bucket{labels} {metric.count}")
            lines.append(
                f"{metric.name}_sum{_format_labels(metric.labels)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_format_labels(metric.labels)} "
                f"{metric.count}"
            )
        else:
            type_line(metric.name, metric.kind, metric.help)
            lines.append(
                f"{metric.name}{_format_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
    for path in sorted(registry.spans):
        aggregate = registry.spans[path]
        labels = _format_labels((("span", path),))
        type_line("repro_span_wall_seconds", "counter",
                  "Total wall time spent inside each span path.")
        lines.append(
            f"repro_span_wall_seconds{labels} "
            f"{_format_value(aggregate.wall_seconds)}"
        )
        type_line("repro_span_cpu_seconds", "counter",
                  "Total CPU time spent inside each span path.")
        lines.append(
            f"repro_span_cpu_seconds{labels} "
            f"{_format_value(aggregate.cpu_seconds)}"
        )
        type_line("repro_span_count", "counter",
                  "Number of times each span path was entered.")
        lines.append(f"repro_span_count{labels} {aggregate.count}")
        type_line("repro_span_seconds", "histogram",
                  "Wall-time latency distribution of each span path.")
        cumulative = 0
        for bound, count in zip(aggregate.bounds, aggregate.bucket_counts):
            cumulative += count
            bucket_labels = _format_labels(
                (("span", path),), (("le", f"{bound:g}"),)
            )
            lines.append(f"repro_span_seconds_bucket{bucket_labels} {cumulative}")
        inf_labels = _format_labels((("span", path),), (("le", "+Inf"),))
        lines.append(f"repro_span_seconds_bucket{inf_labels} {aggregate.count}")
        lines.append(
            f"repro_span_seconds_sum{labels} "
            f"{_format_value(aggregate.wall_seconds)}"
        )
        lines.append(f"repro_span_seconds_count{labels} {aggregate.count}")
    return "\n".join(lines) + "\n"


def jsonl_records(registry: MetricRegistry) -> Iterator[dict]:
    """Every metric and span as one plain dict each (JSONL payloads)."""
    for metric in registry.collect():
        record = {
            "type": metric.kind,
            "name": metric.name,
            "labels": dict(metric.labels),
        }
        if isinstance(metric, Histogram):
            record.update(
                bounds=list(metric.bounds),
                bucket_counts=list(metric.bucket_counts),
                overflow=metric.overflow,
                sum=metric.sum,
                count=metric.count,
                mean=metric.mean,
            )
        else:
            record["value"] = metric.value
        yield record
    for path in sorted(registry.spans):
        yield _span_record(registry.spans[path])
    # Per-process span attribution (fork/fabric workers), tagged with a
    # "process" key so merged rows above stay unambiguous.
    for process in sorted(registry.process_spans):
        per = registry.process_spans[process]
        for path in sorted(per):
            record = _span_record(per[path])
            record["process"] = process
            yield record


def _span_record(aggregate) -> dict:
    return {
        "type": "span",
        "name": aggregate.name,
        "count": aggregate.count,
        "wall_seconds": aggregate.wall_seconds,
        "cpu_seconds": aggregate.cpu_seconds,
        "min_seconds": aggregate.min_seconds,
        "max_seconds": aggregate.max_seconds,
        "bounds": list(aggregate.bounds),
        "bucket_counts": list(aggregate.bucket_counts),
        "overflow": aggregate.overflow,
    }


def jsonl_text(registry: MetricRegistry) -> str:
    return "".join(
        json.dumps(record, sort_keys=True) + "\n"
        for record in jsonl_records(registry)
    )


def write_exports(
    directory: str | Path,
    registry: MetricRegistry,
    manifest: RunManifest | None = None,
) -> list[Path]:
    """Write the run's manifest + Prometheus + JSONL files; return paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    if manifest is not None:
        written.append(
            manifest.write(directory / MANIFEST_FILE, metrics=registry.snapshot())
        )
    prom = directory / PROMETHEUS_FILE
    prom.write_text(prometheus_text(registry), encoding="utf-8")
    written.append(prom)
    jsonl = directory / JSONL_FILE
    jsonl.write_text(jsonl_text(registry), encoding="utf-8")
    written.append(jsonl)
    return written


def load_metrics(directory: str | Path) -> list[dict]:
    """Read back ``metrics.jsonl`` from a telemetry directory."""
    path = Path(directory) / JSONL_FILE
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        return []
    return records


def load_run(directory: str | Path) -> tuple[dict | None, list[dict]]:
    """(manifest payload, metric records) for a telemetry directory."""
    directory = Path(directory)
    return load_manifest(directory / MANIFEST_FILE), load_metrics(directory)
