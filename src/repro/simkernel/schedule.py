"""Periodic and diurnal schedules.

Two recurring needs in the reproduction:

* the active prober runs "every 12 hours, at 11:00 and 23:00"
  (:class:`PeriodicSchedule` built via :func:`times_of_day`);
* campus activity (client arrivals, transient-host logins) follows a
  day/night cycle with a weekday/weekend modulation
  (:class:`DiurnalProfile`), which Section 5.1 of the paper shows
  matters for scan completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.simkernel.clock import Calendar, SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.telemetry.metrics import registry as _telemetry_registry


@dataclass(frozen=True)
class PeriodicSchedule:
    """Fixed times, repeated daily.

    ``anchors`` are offsets in seconds from local midnight; the schedule
    yields every anchor of every day intersecting ``[start, end)``.
    """

    calendar: Calendar
    anchors: tuple[float, ...]

    def __post_init__(self) -> None:
        for anchor in self.anchors:
            if not 0.0 <= anchor < SECONDS_PER_DAY:
                raise ValueError(
                    f"anchor must be within one day (0..86400), got {anchor}"
                )
        if tuple(sorted(self.anchors)) != self.anchors:
            raise ValueError("anchors must be sorted ascending")

    def occurrences(self, start: float, end: float) -> Iterator[float]:
        """Yield all scheduled times t with ``start <= t < end``."""
        if not self.anchors or end <= start:
            return
        reg = _telemetry_registry()
        if not reg.enabled:
            yield from self._occurrences(start, end)
            return
        count = 0
        try:
            for t in self._occurrences(start, end):
                count += 1
                yield t
        finally:
            reg.counter(
                "repro_simkernel_schedule_occurrences_total",
                "Periodic-schedule firings yielded (e.g. active scan starts).",
            ).inc(count)

    def _occurrences(self, start: float, end: float) -> Iterator[float]:
        start_moment = self.calendar.to_datetime(start)
        midnight = start_moment.replace(hour=0, minute=0, second=0, microsecond=0)
        day_base = self.calendar.to_sim(midnight)
        while day_base < end:
            for anchor in self.anchors:
                t = day_base + anchor
                if start <= t < end:
                    yield t
            day_base += SECONDS_PER_DAY


def times_of_day(calendar: Calendar, *hours_of_day: float) -> PeriodicSchedule:
    """Build a :class:`PeriodicSchedule` firing daily at the given hours.

    >>> sched = times_of_day(Calendar(), 11, 23)   # the paper's scan times
    """
    anchors = tuple(sorted(h * SECONDS_PER_HOUR for h in hours_of_day))
    return PeriodicSchedule(calendar=calendar, anchors=anchors)


@dataclass(frozen=True)
class DiurnalProfile:
    """A multiplicative day/night activity modulation.

    The factor at time *t* is::

        base + amplitude * bump(hour_of_day)        (weekdays)
        weekend_scale * (the same)                  (weekends)

    where ``bump`` is a raised cosine peaking at ``peak_hour``.  The
    factor is normalised so that its *daily mean on weekdays* is 1.0 --
    multiplying a rate by the profile leaves the average weekday rate
    unchanged, which keeps calibration independent of the profile shape.
    """

    calendar: Calendar = field(default_factory=Calendar)
    peak_hour: float = 15.0
    base: float = 0.35
    amplitude: float = 1.0
    weekend_scale: float = 0.6

    def _raw_factor(self, hour: float) -> float:
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * math.pi
        bump = 0.5 * (1.0 + math.cos(phase))
        return self.base + self.amplitude * bump

    def _weekday_mean(self) -> float:
        # Mean of base + amplitude * bump over a full day: the raised
        # cosine integrates to 1/2.
        return self.base + self.amplitude * 0.5

    def factor(self, t: float) -> float:
        """Return the activity multiplier at simulation time *t*."""
        hour = self.calendar.hour_of_day(t)
        value = self._raw_factor(hour) / self._weekday_mean()
        if self.calendar.is_weekend(t):
            value *= self.weekend_scale
        return value

    def peak_factor(self) -> float:
        """Return the largest weekday factor (used to bound thinning)."""
        return self._raw_factor(self.peak_hour) / self._weekday_mean()


def thinned_poisson_times(
    rng,
    base_rate: float,
    start: float,
    end: float,
    profile: DiurnalProfile | None = None,
) -> Iterator[float]:
    """Yield arrival times of an inhomogeneous Poisson process.

    Uses Lewis-Shedler thinning against ``base_rate * profile``.  With
    ``profile=None`` this degenerates to a plain homogeneous process.
    """
    if base_rate <= 0.0 or end <= start:
        return
    if profile is None:
        t = start
        while True:
            t += rng.expovariate(base_rate)
            if t >= end:
                return
            yield t
        return
    ceiling = base_rate * max(profile.peak_factor(), 1e-9)
    t = start
    while True:
        t += rng.expovariate(ceiling)
        if t >= end:
            return
        if rng.random() * ceiling <= base_rate * profile.factor(t):
            yield t


def clip_windows(
    windows: Sequence[tuple[float, float]], start: float, end: float
) -> list[tuple[float, float]]:
    """Intersect half-open ``(begin, finish)`` windows with ``[start, end)``.

    Windows must be non-overlapping and sorted; the result preserves
    both properties.  Used to clip host-liveness intervals to a dataset
    duration.
    """
    clipped: list[tuple[float, float]] = []
    for begin, finish in windows:
        if finish <= begin:
            raise ValueError(f"window must have positive length: ({begin}, {finish})")
        lo = max(begin, start)
        hi = min(finish, end)
        if lo < hi:
            clipped.append((lo, hi))
    return clipped
