"""Named, independently seeded random streams.

Every stochastic component of the simulator (host churn, client
arrivals, scanner timing, ...) draws from its own named stream.  Streams
are derived from a single master seed with a stable hash, so:

* adding a new component never perturbs the draws of existing ones;
* two datasets built with the same seed are bit-identical;
* a component can be re-run in isolation and see the same randomness.

``random.Random`` is used rather than numpy generators because draws
are fine-grained and interleaved; the per-call overhead of vectorised
generators buys nothing here, while ``Random`` objects are cheap and
picklable.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator, Sequence, TypeVar

from repro.telemetry.metrics import registry as _telemetry_registry

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across interpreter runs (string hashing is salted by default).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named :class:`random.Random` streams.

    Examples
    --------
    >>> streams = RngStreams(master_seed=42)
    >>> churn = streams.stream("campus.churn")
    >>> clients = streams.stream("traffic.clients")
    >>> churn is streams.stream("campus.churn")
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.master_seed, name))
        self._streams[name] = rng
        # Stream creation is rare (a handful per dataset build), so this
        # aggregate counter goes through the registry unconditionally.
        _telemetry_registry().counter(
            "repro_simkernel_rng_streams_total",
            "Named RNG streams created from master seeds.",
        ).inc()
        return rng

    def fork(self, name: str) -> "RngStreams":
        """Return a child :class:`RngStreams` namespaced under *name*.

        Useful when a subsystem itself wants many sub-streams without
        knowing the global naming scheme.
        """
        return RngStreams(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngStreams(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )


def exponential_interarrivals(
    rng: random.Random, rate: float, start: float, end: float
) -> Iterator[float]:
    """Yield Poisson-process event times in ``[start, end)`` at *rate*.

    *rate* is events per second.  A non-positive rate yields nothing.
    """
    if rate <= 0.0:
        return
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return
        yield t


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return *n* Zipf-distributed weights summing to 1.0.

    The paper's headline weighting result (99 % of flows covered by the
    handful of most popular servers) relies on a heavy-tailed popularity
    distribution; Zipf is the standard choice for service popularity.
    """
    if n <= 0:
        return []
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def pareto_rate(rng: random.Random, scale: float, alpha: float = 1.2) -> float:
    """Draw a heavy-tailed rate: ``scale`` times a Pareto(alpha) variate.

    Used for the long tail of rarely contacted services; the paper
    explicitly hypothesises heavy-tailed server request rates
    (Section 4.2.1).
    """
    u = rng.random()
    # Inverse-CDF of Pareto with x_m = 1: (1 - u)^(-1/alpha)
    return scale * (1.0 - u) ** (-1.0 / alpha)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one of *items* with the given (not necessarily normalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0.0 or not math.isfinite(total):
        raise ValueError(f"weights must sum to a positive finite value, got {total}")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point < cumulative:
            return item
    return items[-1]
