"""Simulated time.

Simulation time is a plain ``float`` number of seconds since the start
of a dataset.  The :class:`Calendar` maps simulated seconds onto a fixed
wall-clock calendar (the paper's datasets start on known 2006 dates) so
experiments can report the same "month-day" axis the paper's figures
use.  All calendar arithmetic is purely deterministic -- no call ever
consults the real clock.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

#: Number of seconds in one minute/hour/day, as floats.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def seconds(n: float) -> float:
    """Return *n* seconds (identity; exists for symmetry and readability)."""
    return float(n)


def minutes(n: float) -> float:
    """Return *n* minutes expressed in seconds."""
    return float(n) * SECONDS_PER_MINUTE


def hours(n: float) -> float:
    """Return *n* hours expressed in seconds."""
    return float(n) * SECONDS_PER_HOUR


def days(n: float) -> float:
    """Return *n* days expressed in seconds."""
    return float(n) * SECONDS_PER_DAY


@dataclass(frozen=True)
class Calendar:
    """A fixed mapping between simulated seconds and wall-clock time.

    Parameters
    ----------
    start:
        The wall-clock datetime corresponding to simulation time zero.
        Defaults to the start of the paper's main dataset
        (DTCP1-18d, 2006-09-19 at 10:00 local time).
    """

    start: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(2006, 9, 19, 10, 0, 0)
    )

    def to_datetime(self, t: float) -> _dt.datetime:
        """Return the wall-clock datetime for simulation time *t* seconds."""
        return self.start + _dt.timedelta(seconds=t)

    def to_sim(self, when: _dt.datetime) -> float:
        """Return the simulation time (seconds) for wall-clock *when*."""
        return (when - self.start).total_seconds()

    def hour_of_day(self, t: float) -> float:
        """Return the fractional hour-of-day (0.0 <= h < 24.0) at time *t*."""
        moment = self.to_datetime(t)
        return (
            moment.hour
            + moment.minute / 60.0
            + moment.second / 3600.0
        )

    def day_of_week(self, t: float) -> int:
        """Return the weekday at *t* (Monday == 0 ... Sunday == 6)."""
        return self.to_datetime(t).weekday()

    def is_weekend(self, t: float) -> bool:
        """Return True when *t* falls on a Saturday or Sunday."""
        return self.day_of_week(t) >= 5

    def month_day_label(self, t: float) -> str:
        """Return the paper-style ``MM-DD`` axis label for time *t*."""
        moment = self.to_datetime(t)
        return f"{moment.month:02d}-{moment.day:02d}"

    def clock_label(self, t: float) -> str:
        """Return an ``HH:MM`` label for time *t* (Figure 1 style)."""
        moment = self.to_datetime(t)
        return f"{moment.hour:02d}:{moment.minute:02d}"

    def next_time_of_day(self, t: float, hour: int, minute: int = 0) -> float:
        """Return the first simulation time >= *t* at ``hour:minute``.

        Used to schedule scans "daily at 11:00" regardless of when the
        dataset begins.
        """
        moment = self.to_datetime(t)
        candidate = moment.replace(hour=hour, minute=minute, second=0, microsecond=0)
        if candidate < moment:
            candidate += _dt.timedelta(days=1)
        return self.to_sim(candidate)


class SimClock:
    """A monotonically advancing simulation clock.

    The clock is deliberately dumb: it only remembers "now" and refuses
    to move backwards.  Event sources read it; the event loop advances
    it.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time *t*.

        Raises
        ------
        ValueError
            If *t* is earlier than the current time.  A simulation that
            tries to rewind its clock has a bug worth failing loudly on.
        """
        if t < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={t}"
            )
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by *dt* seconds (*dt* must be >= 0)."""
        if dt < 0:
            raise ValueError(f"cannot advance by a negative duration: {dt}")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now!r})"
