"""Event queue and event loop.

The traffic generators produce *merged, time-ordered* streams of packet
records (see :mod:`repro.traffic.generator`); the event loop here is
used for the control plane -- scheduling active scans, sampling-window
toggles, dataset checkpoints -- where callback-style events are the
natural fit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simkernel.clock import SimClock
from repro.telemetry.metrics import registry as _telemetry_registry


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``; the sequence number makes the
    ordering of simultaneous events deterministic (insertion order).
    """

    time: float
    sequence: int
    action: Callable[..., None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    label: str = field(default="", compare=False)

    def fire(self) -> None:
        """Invoke the event's action with its payload (if any)."""
        if self.payload is None:
            self.action()
        else:
            self.action(self.payload)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        #: Total events ever scheduled (plain int; flushed to telemetry
        #: by the loop at run boundaries).
        self.scheduled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Add an event at *time*; returns the Event (useful for tests)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            sequence=next(self._counter),
            action=action,
            payload=payload,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self.scheduled += 1
        return event

    def peek_time(self) -> float | None:
        """Return the time of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)


class EventLoop:
    """Drives an :class:`EventQueue` against a :class:`SimClock`.

    The loop is re-entrant in the common DES sense: actions may schedule
    further events, including at the current time (they run after all
    previously queued events at that time).
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self._fired = 0
        self._scheduled_flushed = 0

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(
        self,
        time: float,
        action: Callable[..., None],
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule an event; *time* must not be in the loop's past."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, "
                f"requested={time}"
            )
        return self.queue.schedule(time, action, payload, label)

    def schedule_after(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule an event *delay* seconds from the current time."""
        return self.schedule(self.clock.now + delay, action, payload, label)

    def run_until(self, end_time: float) -> int:
        """Execute all events with ``time <= end_time``; return the count.

        The clock is left at *end_time* even if the queue drains early,
        so periodic sources can resume from a well-defined "now".
        """
        fired = 0
        while self.queue:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if next_time > end_time:
                break
            event = self.queue.pop()
            self.clock.advance_to(event.time)
            event.fire()
            fired += 1
        self.clock.advance_to(max(self.clock.now, end_time))
        self._fired += fired
        self._flush_telemetry(fired)
        return fired

    def run_all(self, safety_limit: int = 10_000_000) -> int:
        """Execute every queued event (events may enqueue more).

        *safety_limit* guards against runaway self-scheduling loops.
        """
        fired = 0
        while self.queue:
            if fired >= safety_limit:
                raise RuntimeError(
                    f"event loop exceeded safety limit of {safety_limit} events"
                )
            event = self.queue.pop()
            self.clock.advance_to(event.time)
            event.fire()
            fired += 1
        self._fired += fired
        self._flush_telemetry(fired)
        return fired

    def _flush_telemetry(self, fired: int) -> None:
        """Fold this run's event counts into the active registry.

        Called once per ``run_until``/``run_all``, so the disabled cost
        is one no-op counter call per run, not per event.  Scheduled
        events are flushed as a delta against a watermark so repeated
        runs of one loop never double-count.
        """
        reg = _telemetry_registry()
        reg.counter(
            "repro_simkernel_events_fired_total",
            "Events executed by the control-plane event loop.",
        ).inc(fired)
        scheduled_delta = self.queue.scheduled - self._scheduled_flushed
        self._scheduled_flushed = self.queue.scheduled
        reg.counter(
            "repro_simkernel_events_scheduled_total",
            "Events scheduled on the control-plane event queue.",
        ).inc(scheduled_delta)
