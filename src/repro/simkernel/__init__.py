"""Discrete-event simulation kernel.

This subpackage provides the deterministic machinery every simulated
dataset is built on:

* :mod:`repro.simkernel.clock` -- simulated time and a fixed calendar so
  results can be reported with the paper's month-day axis labels.
* :mod:`repro.simkernel.rng` -- named, independently seeded random
  streams derived from a single master seed.
* :mod:`repro.simkernel.events` -- a binary-heap event queue and a small
  event-loop runner.
* :mod:`repro.simkernel.schedule` -- periodic and diurnal schedule
  helpers (e.g. "every 12 hours at 11:00 and 23:00").

Nothing in this package knows about networks; it is a generic kernel.
"""

from repro.simkernel.clock import Calendar, SimClock, days, hours, minutes, seconds
from repro.simkernel.events import Event, EventQueue, EventLoop
from repro.simkernel.rng import RngStreams
from repro.simkernel.schedule import DiurnalProfile, PeriodicSchedule, times_of_day

__all__ = [
    "Calendar",
    "SimClock",
    "DiurnalProfile",
    "Event",
    "EventLoop",
    "EventQueue",
    "PeriodicSchedule",
    "RngStreams",
    "days",
    "hours",
    "minutes",
    "seconds",
    "times_of_day",
]
