"""Scan scheduling and the time-of-day subset selections.

The paper's scans ran every 12 hours, "daily at 11am and then again at
11pm", for 35 scans over 18 days.  Section 5.1 then compares subsets:
day-only (11:00) scans, night-only (23:00) scans, and an alternating
day/night selection with the same scan budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simkernel.clock import Calendar
from repro.simkernel.schedule import times_of_day

DAY_HOUR = 11
NIGHT_HOUR = 23


def scan_start_times(
    calendar: Calendar,
    start: float,
    end: float,
    hours_of_day: tuple[int, ...] = (DAY_HOUR, NIGHT_HOUR),
) -> list[float]:
    """All scheduled scan start times in ``[start, end)``."""
    schedule = times_of_day(calendar, *hours_of_day)
    return list(schedule.occurrences(start, end))


@dataclass(frozen=True)
class ScanScheduleBuilder:
    """Derives the Section 5.1 scan-time subsets from a full schedule.

    All selections operate on the full every-12-hours schedule so the
    subsets are exactly the paper's: same underlying scans, different
    retention.
    """

    calendar: Calendar
    start: float
    end: float

    def full(self) -> list[float]:
        """Every 12 hours at 11:00 and 23:00 (the baseline)."""
        return scan_start_times(self.calendar, self.start, self.end)

    def day_only(self) -> list[float]:
        """One scan per day, at 11:00."""
        return scan_start_times(self.calendar, self.start, self.end, (DAY_HOUR,))

    def night_only(self) -> list[float]:
        """One scan per day, at 23:00."""
        return scan_start_times(self.calendar, self.start, self.end, (NIGHT_HOUR,))

    def alternating(self) -> list[float]:
        """One scan per day, alternating 11:00 and 23:00.

        Keeps the day-only scan budget while factoring time-of-day out,
        exactly as Section 5.1 constructs its third subset.
        """
        days: dict[str, list[float]] = {}
        for t in self.full():
            label = self.calendar.month_day_label(t)
            days.setdefault(label, []).append(t)
        selected: list[float] = []
        pick_day = True
        for label in sorted(days):
            candidates = sorted(days[label])
            if pick_day:
                selected.append(candidates[0])
            else:
                selected.append(candidates[-1])
            pick_day = not pick_day
        return selected

    def subset_times(self, name: str) -> list[float]:
        """Look up a subset by its Figure 7 label."""
        subsets = {
            "every-12-hours": self.full,
            "day-only": self.day_only,
            "night-only": self.night_only,
            "alternating": self.alternating,
        }
        if name not in subsets:
            raise KeyError(
                f"unknown scan subset {name!r}; expected one of {sorted(subsets)}"
            )
        return subsets[name]()
