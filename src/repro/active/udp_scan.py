"""Generic UDP probing (paper Section 4.5).

"Generic UDP probing is difficult because there is no generic positive
response for service present."  The paper's interpretation rules,
implemented here:

* a UDP reply is a true positive ("definitely open");
* an ICMP port-unreachable is a true negative ("definitely closed");
* silence from a host that answered *some* probe is "possibly open";
* silence on every probed port means no host presence can be assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.campus.host import UdpProbeOutcome
from repro.campus.population import CampusPopulation
from repro.active.results import UdpScanReport


@dataclass(frozen=True)
class UdpProberConfig:
    """Operating parameters of the generic UDP prober."""

    internal: bool = True
    parallelism: int = 1


class GenericUdpProber:
    """Sweeps targets with generic (malformed-payload) UDP probes."""

    def __init__(
        self, population: CampusPopulation, config: UdpProberConfig | None = None
    ) -> None:
        self.population = population
        self.config = config if config is not None else UdpProberConfig()

    def scan(
        self,
        targets: Sequence[int],
        ports: Sequence[int],
        start: float,
        duration: float,
    ) -> UdpScanReport:
        """Probe every target on every port; classify per the paper's rules."""
        if duration <= 0:
            raise ValueError(f"scan duration must be positive: {duration}")
        if not targets:
            raise ValueError("cannot scan an empty target list")
        report = UdpScanReport(
            start=start,
            end=start + duration,
            ports=tuple(ports),
        )
        for port in ports:
            report.definitely_open[port] = set()
            report.possibly_open[port] = set()
            report.definitely_closed[port] = set()
        step = duration / len(targets)
        for index, address in enumerate(targets):
            t = start + index * step
            host = self.population.occupant_host(address, t)
            outcomes: dict[int, UdpProbeOutcome] = {}
            for port in ports:
                if host is None:
                    outcomes[port] = UdpProbeOutcome.NOTHING
                else:
                    outcomes[port] = host.udp_probe_response(
                        port, t, internal=self.config.internal
                    )
            responded = any(
                outcome is not UdpProbeOutcome.NOTHING for outcome in outcomes.values()
            )
            if not responded:
                report.no_response_addresses.add(address)
                continue
            for port, outcome in outcomes.items():
                if outcome is UdpProbeOutcome.REPLY:
                    report.definitely_open[port].add(address)
                elif outcome is UdpProbeOutcome.ICMP_UNREACHABLE:
                    report.definitely_closed[port].add(address)
                else:
                    # Host is demonstrably alive but silent on this
                    # port: the kernel would normally send ICMP, so the
                    # port may well have a listener.
                    report.possibly_open[port].add(address)
        return report
