"""Active probing.

An Nmap-like scanner operating against the simulated campus:

* :mod:`repro.active.prober` -- half-open TCP scanning with rate
  limiting and multi-machine parallelism (the paper split the space
  "roughly in half and scanned separately by two internal machines");
* :mod:`repro.active.udp_scan` -- generic UDP probing with the paper's
  response-interpretation rules (Section 4.5);
* :mod:`repro.active.schedule` -- the every-12-hours 11:00/23:00 scan
  scheduling and the time-of-day subset selections of Section 5.1;
* :mod:`repro.active.results` -- scan reports and their aggregations.

Internal probes and their responses never cross the border, so they are
invisible to passive monitoring -- as in the paper, where probing was
done "from internal campus machines".
"""

from repro.active.prober import HalfOpenScanner
from repro.active.results import ProbeOutcomeCounts, ScanReport, UdpScanReport
from repro.active.schedule import ScanScheduleBuilder, scan_start_times
from repro.active.udp_scan import GenericUdpProber

__all__ = [
    "GenericUdpProber",
    "HalfOpenScanner",
    "ProbeOutcomeCounts",
    "ScanReport",
    "ScanScheduleBuilder",
    "UdpScanReport",
    "scan_start_times",
]
