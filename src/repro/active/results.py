"""Scan result containers.

A full campus sweep makes ~80,000 probes; 35 sweeps push 3 million.
Reports therefore keep *open* findings individually (they are sparse
and every analysis needs their timestamps) but aggregate negative
results into counters and the small derived sets the firewall analysis
needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.campus.host import ProbeOutcome, UdpProbeOutcome


@dataclass
class ProbeOutcomeCounts:
    """Counter of probe outcomes for one scan."""

    synack: int = 0
    rst: int = 0
    nothing: int = 0

    def add(self, outcome: ProbeOutcome) -> None:
        if outcome is ProbeOutcome.SYNACK:
            self.synack += 1
        elif outcome is ProbeOutcome.RST:
            self.rst += 1
        else:
            self.nothing += 1

    @property
    def total(self) -> int:
        return self.synack + self.rst + self.nothing


@dataclass
class ScanReport:
    """Results of one half-open TCP sweep.

    Attributes
    ----------
    scan_id:
        Sequence number of the scan within its dataset.
    start, end:
        Sweep start time and completion time (dataset seconds).
    ports:
        Ports probed on every target.
    opens:
        ``(probe_time, address, port)`` for every open endpoint found.
    counts:
        Aggregate outcome counters.
    mixed_response_addresses:
        Addresses that answered RST on some ports but were silent on
        others during this same scan -- the paper's first method of
        confirming a firewall (Section 4.2.4).
    responding_addresses:
        Addresses that sent any response (liveness evidence).
    """

    scan_id: int
    start: float
    end: float
    ports: tuple[int, ...]
    opens: list[tuple[float, int, int]] = field(default_factory=list)
    counts: ProbeOutcomeCounts = field(default_factory=ProbeOutcomeCounts)
    mixed_response_addresses: set[int] = field(default_factory=set)
    responding_addresses: set[int] = field(default_factory=set)

    def open_endpoints(self) -> set[tuple[int, int]]:
        """(address, port) pairs found open in this scan."""
        return {(address, port) for _, address, port in self.opens}

    def open_addresses(self) -> set[int]:
        """Addresses with at least one open port in this scan."""
        return {address for _, address, _ in self.opens}

    @property
    def duration(self) -> float:
        return self.end - self.start


def union_open_endpoints(reports: list[ScanReport]) -> set[tuple[int, int]]:
    """(address, port) pairs open in *any* of the given scans."""
    out: set[tuple[int, int]] = set()
    for report in reports:
        out |= report.open_endpoints()
    return out


def first_open_times(reports: list[ScanReport]) -> dict[tuple[int, int], float]:
    """Earliest discovery time per endpoint across scans."""
    first: dict[tuple[int, int], float] = {}
    for report in reports:
        for t, address, port in report.opens:
            key = (address, port)
            if key not in first or t < first[key]:
                first[key] = t
    return first


@dataclass
class UdpScanReport:
    """Results of one generic UDP sweep (paper Table 7's structure).

    Per port: ``definitely_open`` (UDP reply), ``possibly_open`` (no
    response from a host that responded to *some* probe), and
    ``definitely_closed`` (ICMP port unreachable).  Hosts that answered
    no probe at all are counted once in ``no_response_addresses``.
    """

    start: float
    end: float
    ports: tuple[int, ...]
    definitely_open: dict[int, set[int]] = field(default_factory=dict)
    possibly_open: dict[int, set[int]] = field(default_factory=dict)
    definitely_closed: dict[int, set[int]] = field(default_factory=dict)
    no_response_addresses: set[int] = field(default_factory=set)

    def counts_row(self, port: int) -> dict[str, int]:
        """Summary counts for one port (a Table 7 column)."""
        return {
            "definitely_open": len(self.definitely_open.get(port, ())),
            "possibly_open": len(self.possibly_open.get(port, ())),
            "definitely_closed": len(self.definitely_closed.get(port, ())),
        }

    def totals(self) -> dict[str, int]:
        """The Table 7 "all" column."""
        return {
            "definitely_open": sum(len(s) for s in self.definitely_open.values()),
            "possibly_open": sum(len(s) for s in self.possibly_open.values()),
            "definitely_closed": max(
                (len(s) for s in self.definitely_closed.values()), default=0
            ),
            "no_response": len(self.no_response_addresses),
        }

    def open_endpoints(self) -> set[tuple[int, int]]:
        """(address, port) for definite opens."""
        out: set[tuple[int, int]] = set()
        for port, addresses in self.definitely_open.items():
            out |= {(address, port) for address in addresses}
        return out


def scan_outcome_histogram(reports: list[ScanReport]) -> Counter:
    """Aggregate outcome counts over many scans (diagnostics)."""
    histogram: Counter = Counter()
    for report in reports:
        histogram["synack"] += report.counts.synack
        histogram["rst"] += report.counts.rst
        histogram["nothing"] += report.counts.nothing
    return histogram


__all__ = [
    "ProbeOutcome",
    "ProbeOutcomeCounts",
    "ScanReport",
    "UdpProbeOutcome",
    "UdpScanReport",
    "first_open_times",
    "scan_outcome_histogram",
    "union_open_endpoints",
]
