"""Half-open TCP scanning.

The scanner walks its target list at a configured rate, sending a SYN
to every (address, port) pair and classifying the response:

* SYN-ACK -- an open service (the scanner immediately sends RST, never
  completing the handshake: "half-open" scanning);
* RST -- host up, port closed;
* silence -- host down or a firewall dropping probes.

The paper's sweeps took 90-120 minutes over 16,130 addresses with the
space split between two scanning machines; :class:`HalfOpenScanner`
reproduces that timing model so discovery *times* (not just sets) are
meaningful, which Figure 1's active curve depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.campus.host import ProbeOutcome
from repro.campus.population import CampusPopulation
from repro.active.results import ScanReport
from repro.telemetry.metrics import registry as _telemetry_registry


@dataclass(frozen=True)
class ScannerConfig:
    """Operating parameters of the campus scanner.

    Attributes
    ----------
    parallelism:
        Number of scanning machines; the target list is split into
        that many contiguous chunks swept concurrently.
    internal:
        Whether probes originate inside campus (affects firewall
        handling and keeps probe traffic off the border taps).
    max_probe_rate:
        Optional cap on total probes per second (all machines
        combined) -- Nmap-style polite timing to avoid flooding hosts
        or tripping intrusion detection (paper Section 2.3).  When the
        requested sweep duration would exceed this rate, the sweep is
        stretched to respect it.
    """

    parallelism: int = 2
    internal: bool = True
    max_probe_rate: float | None = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.max_probe_rate is not None and self.max_probe_rate <= 0:
            raise ValueError("max_probe_rate must be positive")


class HalfOpenScanner:
    """Nmap-style half-open scanner bound to a population.

    The scanner resolves probes through the same host state machine
    that generates passive traffic, so the two discovery methods
    disagree exactly where the paper says they should.
    """

    def __init__(
        self,
        population: CampusPopulation,
        config: ScannerConfig | None = None,
        faults=None,
    ) -> None:
        self.population = population
        self.config = config if config is not None else ScannerConfig()
        # A null fault plan is stored as None so every fault check
        # below is a single identity comparison on the pristine path.
        if faults is not None and faults.is_null:
            faults = None
        self.fault_plan = faults

    def scan(
        self,
        targets: Sequence[int],
        ports: Sequence[int],
        start: float,
        duration: float,
        scan_id: int = 0,
    ) -> ScanReport:
        """Sweep *targets* x *ports* beginning at *start*.

        Parameters
        ----------
        targets:
            Campus addresses to probe (the paper probed every address;
            no separate host-discovery phase).
        ports:
            TCP ports probed per address.
        duration:
            Wall-clock length of the sweep; per-address probe times are
            spread linearly across it within each scanner's chunk.
        """
        if duration <= 0:
            raise ValueError(f"scan duration must be positive: {duration}")
        if not targets:
            raise ValueError("cannot scan an empty target list")
        duration = self._rate_limited_duration(len(targets) * len(ports), duration)
        report = ScanReport(
            scan_id=scan_id,
            start=start,
            end=start + duration,
            ports=tuple(ports),
        )
        faults = (
            self.fault_plan.probe_faults(scan_id, start, duration)
            if self.fault_plan is not None
            else None
        )
        chunks = self._split(list(targets), self.config.parallelism)
        for machine, chunk in enumerate(chunks):
            if not chunk:
                continue
            step = duration / len(chunk)
            for index, address in enumerate(chunk):
                t = start + index * step
                self._probe_address(
                    address, ports, t, report, faults=faults, machine=machine
                )
        report.opens.sort()
        self._flush_sweep_telemetry(report, faults)
        return report

    def _flush_sweep_telemetry(self, report: ScanReport, faults) -> None:
        """Fold one sweep's outcome tallies into the active registry.

        Runs once per sweep (aggregate counters), so the disabled cost
        is a handful of no-op calls regardless of probe volume.
        """
        reg = _telemetry_registry()
        counts = report.counts
        reg.counter(
            "repro_active_sweeps_total", "Active scan sweeps completed.",
        ).inc()
        reg.counter(
            "repro_active_probes_total", "TCP probes sent by the scanner.",
        ).inc(counts.total)
        reg.counter(
            "repro_active_synacks_total", "Probes answered with SYN-ACK.",
        ).inc(counts.synack)
        reg.counter(
            "repro_active_rsts_total", "Probes answered with RST.",
        ).inc(counts.rst)
        reg.counter(
            "repro_active_silent_probes_total",
            "Probes that observed silence (down, firewalled, or lost).",
        ).inc(counts.nothing)
        if faults is not None:
            reg.counter(
                "repro_active_retransmits_total",
                "Extra transmissions triggered by probe/response loss.",
            ).inc(faults.retransmits)
            reg.counter(
                "repro_active_timeouts_total",
                "Probes whose every transmission went unanswered.",
            ).inc(faults.timeouts)

    def _probe_address(
        self,
        address: int,
        ports: Sequence[int],
        t: float,
        report: ScanReport,
        faults=None,
        machine: int = 0,
    ) -> None:
        if faults is not None and faults.machine_down(machine, t):
            # The scanning machine is down: its probes are never sent.
            # The scanner's log shows silence, indistinguishable from
            # an unpopulated address.
            for _ in ports:
                report.counts.add(ProbeOutcome.NOTHING)
            return
        host = self.population.occupant_host(address, t)
        if host is None:
            for _ in ports:
                report.counts.add(ProbeOutcome.NOTHING)
            return
        saw_rst = False
        saw_nothing = False
        responded = False
        for port in ports:
            outcome = host.tcp_probe_response(port, t, internal=self.config.internal)
            delay = 0.0
            if faults is not None:
                outcome, delay = faults.transmit(machine, outcome)
            report.counts.add(outcome)
            if outcome is ProbeOutcome.SYNACK:
                report.opens.append((t + delay, address, port))
                responded = True
            elif outcome is ProbeOutcome.RST:
                saw_rst = True
                responded = True
            else:
                saw_nothing = True
        if responded:
            report.responding_addresses.add(address)
        if saw_rst and saw_nothing:
            # RSTs from some ports but silence from others in one scan:
            # the paper's first firewall-confirmation signature.
            report.mixed_response_addresses.add(address)

    def scan_open_ports_of_population(
        self,
        start: float,
        duration: float,
        scan_id: int = 0,
        max_port: int = 65535,
    ) -> ScanReport:
        """An all-ports sweep (the DTCPall study).

        Probing 65,535 ports on every address is simulated exactly but
        executed sparsely: closed ports contribute nothing to any
        analysis the paper reports for DTCPall (only open endpoints are
        plotted/counted), so per-port negative outcomes are aggregated
        arithmetically instead of being iterated one by one.

        Fault injection keeps the sparse shape: transmission loss and
        retransmits apply to the probes that matter for the reported
        analyses (service ports and the RST baseline probe); the
        arithmetically aggregated closed-port negatives are left
        exact, since a lost RST among tens of thousands changes no
        reported number.  The sweep runs from one machine, so a
        downtime window blacks out a contiguous slice of the address
        walk.
        """
        report = ScanReport(
            scan_id=scan_id,
            start=start,
            end=start + duration,
            ports=(),
        )
        faults = (
            self.fault_plan.probe_faults(scan_id, start, duration)
            if self.fault_plan is not None
            else None
        )
        addresses = sorted(
            address
            for address in self.population.topology.space.addresses()
        )
        if not addresses:
            raise ValueError("population has no addresses to scan")
        step = duration / len(addresses)
        internal = self.config.internal
        for index, address in enumerate(addresses):
            t = report.start + index * step
            if faults is not None and faults.machine_down(0, t):
                report.counts.nothing += max_port
                continue
            host = self.population.occupant_host(address, t)
            if host is None:
                report.counts.nothing += max_port
                continue
            open_found = False
            rst_baseline = host.tcp_probe_response(1, t, internal=internal)
            if faults is not None:
                rst_baseline, _ = faults.transmit(0, rst_baseline)
            for (port, proto), service in sorted(host.services.items()):
                if proto != 6 or port > max_port:
                    continue
                outcome = host.tcp_probe_response(port, t, internal=internal)
                delay = 0.0
                if faults is not None:
                    outcome, delay = faults.transmit(0, outcome)
                if outcome is ProbeOutcome.SYNACK:
                    report.opens.append((t + delay, address, port))
                    open_found = True
            if rst_baseline is ProbeOutcome.RST:
                report.responding_addresses.add(address)
                report.counts.rst += max_port - len(host.services)
            elif open_found:
                report.responding_addresses.add(address)
        report.opens.sort()
        self._flush_sweep_telemetry(report, faults)
        return report

    def scan_with_host_discovery(
        self,
        targets: Sequence[int],
        ports: Sequence[int],
        start: float,
        duration: float,
        scan_id: int = 0,
        discovery_port: int | None = None,
    ) -> tuple[ScanReport, "HostDiscoveryStats"]:
        """Two-phase sweep: cheap host discovery, then full port scans.

        Phase 1 sends a single probe per address (to *discovery_port*,
        default the first service port); only addresses that answered
        anything get the full port set in phase 2.  This is the
        optimisation the paper explicitly omitted ("we expect that this
        process would be much faster if host scanning eliminated probes
        of unpopulated addresses", Section 5.4) -- implemented here so
        its cost/benefit can be measured.

        The trade-off it inherits: hosts whose firewalls drop *every*
        probe look unpopulated and are skipped, so a host-discovery
        scan can only ever find a subset of what the exhaustive scan
        finds.

        Returns the phase-2 :class:`ScanReport` (phase-1 opens merged
        in) and a :class:`HostDiscoveryStats` with the probe budget.
        """
        if not targets:
            raise ValueError("cannot scan an empty target list")
        if not ports:
            raise ValueError("need at least one service port")
        probe_port = discovery_port if discovery_port is not None else ports[0]
        # Phase 1: one probe per address over the first 25% of the sweep.
        phase1 = self.scan(
            targets, (probe_port,), start, duration * 0.25, scan_id=scan_id
        )
        live = sorted(phase1.responding_addresses)
        stats = HostDiscoveryStats(
            targets=len(targets),
            live=len(live),
            probes_sent=phase1.counts.total,
            probes_naive=len(targets) * len(ports),
        )
        if not live:
            return phase1, stats
        # Phase 2: the full port set against live addresses only.
        remaining_ports = [p for p in ports if p != probe_port]
        report = ScanReport(
            scan_id=scan_id,
            start=start,
            end=start + duration,
            ports=tuple(ports),
        )
        report.opens.extend(phase1.opens)
        report.responding_addresses |= phase1.responding_addresses
        report.counts.synack += phase1.counts.synack
        report.counts.rst += phase1.counts.rst
        report.counts.nothing += phase1.counts.nothing
        if remaining_ports:
            phase2 = self.scan(
                live, remaining_ports, phase1.end, duration * 0.75,
                scan_id=scan_id,
            )
            report.opens.extend(phase2.opens)
            report.responding_addresses |= phase2.responding_addresses
            report.mixed_response_addresses |= phase2.mixed_response_addresses
            report.counts.synack += phase2.counts.synack
            report.counts.rst += phase2.counts.rst
            report.counts.nothing += phase2.counts.nothing
            stats.probes_sent += phase2.counts.total
        report.opens.sort()
        return report, stats

    def _rate_limited_duration(self, probe_count: int, requested: float) -> float:
        """Stretch the sweep when a probe-rate cap demands it."""
        if self.config.max_probe_rate is None:
            return requested
        minimum = probe_count / self.config.max_probe_rate
        return max(requested, minimum)

    @staticmethod
    def _split(items: list[int], chunks: int) -> list[list[int]]:
        """Split *items* into *chunks* contiguous, near-equal parts."""
        if chunks == 1:
            return [items]
        size = (len(items) + chunks - 1) // chunks
        return [items[i : i + size] for i in range(0, len(items), size)]


@dataclass
class HostDiscoveryStats:
    """Probe-budget accounting for a host-discovery scan.

    ``probes_naive`` is what the exhaustive sweep would have cost;
    ``savings_pct`` the reduction the two-phase approach achieved.
    """

    targets: int
    live: int
    probes_sent: int
    probes_naive: int

    @property
    def savings_pct(self) -> float:
        if self.probes_naive == 0:
            return 0.0
        return 100.0 * (1.0 - self.probes_sent / self.probes_naive)
