"""Per-link taps: the partial-perspective study (paper Section 5.2).

The university's traffic splits across two commercial peerings and
Internet2.  A :class:`LinkTap` is a passive table restricted to one
link; :class:`MultiLinkMonitor` runs several in one pass and answers
Table 8's questions: how many servers does each link see, and how many
are *exclusive* to it.

Both accept an optional capture-fault filter
(:class:`repro.faults.capture.CaptureFilter`): a record the filter
drops was never delivered by that link's monitor, so it is invisible
to every table fed from the tap.  With no filter (the default) the
code paths are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.packet import PacketRecord
from repro.passive.monitor import PassiveServiceTable, ServiceSignal


@dataclass
class LinkTap:
    """A passive monitor attached to one peering link.

    ``faults`` injects capture loss for records crossing *this* link;
    records on other links pass through untouched (the tap's table
    discards them itself) and do not advance the link's loss state.
    """

    link: str
    table: PassiveServiceTable
    faults: object | None = None

    @classmethod
    def create(
        cls,
        link: str,
        is_campus: Callable[[int], bool],
        tcp_ports: frozenset[int] | None,
        udp_ports: frozenset[int] = frozenset(),
        signal: ServiceSignal = ServiceSignal.SYNACK,
        faults: object | None = None,
    ) -> "LinkTap":
        return cls(
            link=link,
            table=PassiveServiceTable(
                is_campus=is_campus,
                tcp_ports=tcp_ports,
                udp_ports=udp_ports,
                links=frozenset({link}),
                signal=signal,
            ),
            faults=faults,
        )

    def observe(self, record: PacketRecord) -> None:
        if (
            self.faults is not None
            and record.link == self.link
            and not self.faults.keep(record)
        ):
            return
        self.table.observe(record)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        if self.faults is not None:
            link = self.link
            keep = self.faults.keep
            records = [
                record
                for record in records
                if record.link != link or keep(record)
            ]
        self.table.observe_batch(records)

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch` (the table filters by link).

        A tap-level fault filter must see exactly this link's records
        in stream order, which the scalar comprehension already
        guarantees; with faults present the batch falls back to the
        record path rather than re-deriving that contract here.
        """
        if self.faults is not None:
            self.observe_batch(cols.to_records())
            return
        self.table.observe_columns(cols)


class MultiLinkMonitor:
    """Several link taps plus a combined all-links table, in one pass.

    A ``faults`` filter is applied once, up front, for all taps and
    the combined table together: a header lost at the capture of link
    X never reaches *any* analysis, matching how a real monitoring
    cluster shares one capture stream per link.  The taps themselves
    are created without filters so each record's fate is decided
    exactly once.
    """

    def __init__(
        self,
        links: Iterable[str],
        is_campus: Callable[[int], bool],
        tcp_ports: frozenset[int] | None,
        udp_ports: frozenset[int] = frozenset(),
        faults: object | None = None,
    ) -> None:
        self.faults = faults
        self.taps: dict[str, LinkTap] = {
            link: LinkTap.create(link, is_campus, tcp_ports, udp_ports)
            for link in links
        }
        self.combined = PassiveServiceTable(
            is_campus=is_campus,
            tcp_ports=tcp_ports,
            udp_ports=udp_ports,
            links=frozenset(self.taps),
        )

    def observe(self, record: PacketRecord) -> None:
        if self.faults is not None and not self.faults.keep(record):
            return
        self.combined.observe(record)
        tap = self.taps.get(record.link)
        if tap is not None:
            tap.observe(record)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: each table filters by link itself,
        so handing every tap the whole batch gives identical results."""
        if self.faults is not None:
            records = self.faults.filter_batch(records)
        self.combined.observe_batch(records)
        for tap in self.taps.values():
            tap.observe_batch(records)

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: one shared fault mask, then
        every tap and the combined table consume the same column batch.

        The fault decision loop consumes (link, time) pairs in stream
        order (:meth:`repro.faults.capture.CaptureFilter.keep_mask`),
        so the drop pattern matches the scalar path bit for bit.
        """
        if self.faults is not None:
            mask = self.faults.keep_mask(
                cols.time.tolist(), cols.link.tolist(), cols.link_names
            )
            if not mask.all():
                cols = cols.compress(mask)
            if not len(cols):
                return
        self.combined.observe_columns(cols)
        for tap in self.taps.values():
            tap.observe_columns(cols)

    # ---- Table 8 queries --------------------------------------------

    def servers_on_link(self, link: str) -> set[int]:
        """Server addresses with evidence on *link* (possibly elsewhere too)."""
        return self.taps[link].table.server_addresses()

    def exclusive_to_link(self, link: str) -> set[int]:
        """Server addresses whose *only* evidence crossed *link*."""
        own = self.servers_on_link(link)
        others: set[int] = set()
        for other_link, tap in self.taps.items():
            if other_link != link:
                others |= tap.table.server_addresses()
        return own - others

    def total_servers(self) -> set[int]:
        """Server addresses seen on any monitored link."""
        return self.combined.server_addresses()
