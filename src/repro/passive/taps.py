"""Per-link taps: the partial-perspective study (paper Section 5.2).

The university's traffic splits across two commercial peerings and
Internet2.  A :class:`LinkTap` is a passive table restricted to one
link; :class:`MultiLinkMonitor` runs several in one pass and answers
Table 8's questions: how many servers does each link see, and how many
are *exclusive* to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.packet import PacketRecord
from repro.passive.monitor import PassiveServiceTable, ServiceSignal


@dataclass
class LinkTap:
    """A passive monitor attached to one peering link."""

    link: str
    table: PassiveServiceTable

    @classmethod
    def create(
        cls,
        link: str,
        is_campus: Callable[[int], bool],
        tcp_ports: frozenset[int] | None,
        udp_ports: frozenset[int] = frozenset(),
        signal: ServiceSignal = ServiceSignal.SYNACK,
    ) -> "LinkTap":
        return cls(
            link=link,
            table=PassiveServiceTable(
                is_campus=is_campus,
                tcp_ports=tcp_ports,
                udp_ports=udp_ports,
                links=frozenset({link}),
                signal=signal,
            ),
        )

    def observe(self, record: PacketRecord) -> None:
        self.table.observe(record)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        self.table.observe_batch(records)


class MultiLinkMonitor:
    """Several link taps plus a combined all-links table, in one pass."""

    def __init__(
        self,
        links: Iterable[str],
        is_campus: Callable[[int], bool],
        tcp_ports: frozenset[int] | None,
        udp_ports: frozenset[int] = frozenset(),
    ) -> None:
        self.taps: dict[str, LinkTap] = {
            link: LinkTap.create(link, is_campus, tcp_ports, udp_ports)
            for link in links
        }
        self.combined = PassiveServiceTable(
            is_campus=is_campus,
            tcp_ports=tcp_ports,
            udp_ports=udp_ports,
            links=frozenset(self.taps),
        )

    def observe(self, record: PacketRecord) -> None:
        self.combined.observe(record)
        tap = self.taps.get(record.link)
        if tap is not None:
            tap.observe(record)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: each table filters by link itself,
        so handing every tap the whole batch gives identical results."""
        self.combined.observe_batch(records)
        for tap in self.taps.values():
            tap.observe_batch(records)

    # ---- Table 8 queries --------------------------------------------

    def servers_on_link(self, link: str) -> set[int]:
        """Server addresses with evidence on *link* (possibly elsewhere too)."""
        return self.taps[link].table.server_addresses()

    def exclusive_to_link(self, link: str) -> set[int]:
        """Server addresses whose *only* evidence crossed *link*."""
        own = self.servers_on_link(link)
        others: set[int] = set()
        for other_link, tap in self.taps.items():
            if other_link != link:
                others |= tap.table.server_addresses()
        return own - others

    def total_servers(self) -> set[int]:
        """Server addresses seen on any monitored link."""
        return self.combined.server_addresses()
