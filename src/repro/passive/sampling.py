"""Trace sampling (paper Section 5.3).

At very high link speeds a monitor cannot keep up with the full header
stream.  The paper evaluates capturing only the first N minutes of
every hour (:class:`FixedPeriodSampler`) and names two alternatives it
leaves as future work -- "collecting a fixed number of packet headers
and then idling, or collecting each packet header with some (non-unity)
probability"; both are implemented here as
:class:`CountBudgetSampler` and :class:`ProbabilisticSampler`, so the
reproduction can run the comparison the paper deferred.

All samplers are deterministic: the probabilistic one keys its
keep-decision on a hash of the packet identity rather than mutable RNG
state, so results are independent of observer ordering.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.net.packet import PacketRecord
from repro.simkernel.clock import minutes


@dataclass(frozen=True)
class FixedPeriodSampler:
    """Keep the first *sample_minutes* of every *period_minutes*.

    The paper samples 2, 5, 10 and 30 minutes of each hour (3 %, 8 %,
    17 % and 50 % of the data).
    """

    sample_minutes: float
    period_minutes: float = 60.0
    anchor: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_minutes <= 0:
            raise ValueError("sample_minutes must be positive")
        if self.sample_minutes > self.period_minutes:
            raise ValueError(
                "sample window cannot exceed the period "
                f"({self.sample_minutes} > {self.period_minutes})"
            )

    @property
    def fraction(self) -> float:
        """Fraction of time the sampler keeps (e.g. 0.5 for 30-of-60)."""
        return self.sample_minutes / self.period_minutes

    def keep(self, t: float) -> bool:
        """True when a packet at time *t* falls inside a sample window."""
        period = minutes(self.period_minutes)
        offset = (t - self.anchor) % period
        return offset < minutes(self.sample_minutes)

    def __call__(self, t: float) -> bool:
        return self.keep(t)

    def windows_in(self, start: float, end: float) -> list[tuple[float, float]]:
        """The concrete sample windows intersecting ``[start, end)``."""
        period = minutes(self.period_minutes)
        width = minutes(self.sample_minutes)
        first_index = int((start - self.anchor) // period)
        out: list[tuple[float, float]] = []
        index = first_index
        while True:
            w_start = self.anchor + index * period
            if w_start >= end:
                break
            w_end = w_start + width
            lo, hi = max(w_start, start), min(w_end, end)
            if lo < hi:
                out.append((lo, hi))
            index += 1
        return out


def hourly_samplers(*sample_minutes: float) -> dict[float, FixedPeriodSampler]:
    """Build the paper's family of hourly samplers keyed by minutes."""
    return {m: FixedPeriodSampler(sample_minutes=m) for m in sample_minutes}


@dataclass(frozen=True)
class ProbabilisticSampler:
    """Keep each packet independently with probability *p*.

    One of the two alternative strategies Section 5.3 defers.  The
    keep decision hashes the packet's identifying fields with a salt,
    so it is deterministic, order-independent, and uncorrelated with
    the fixed-period windows.
    """

    probability: float
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1]: {self.probability}"
            )

    @property
    def fraction(self) -> float:
        return self.probability

    def keep_record(self, record: PacketRecord) -> bool:
        digest = hashlib.blake2b(
            f"{self.salt}:{record.time}:{record.src}:{record.dst}:"
            f"{record.sport}:{record.dport}".encode("ascii"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2**64 < self.probability


@dataclass
class CountBudgetSampler:
    """Capture a budget of packets per period, then idle.

    The other deferred strategy: "collecting a fixed number of packet
    headers and then idling".  The sampler keeps the first
    ``budget_per_period`` packets (in arrival order) of each
    ``period_minutes`` window.  Unlike the pure time filters this one
    is stateful, so it exposes :meth:`keep_record` rather than a
    time-only predicate.
    """

    budget_per_period: int
    period_minutes: float = 60.0
    anchor: float = 0.0
    _window_index: int = field(default=-1, repr=False)
    _taken: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.budget_per_period < 1:
            raise ValueError("budget_per_period must be >= 1")
        if self.period_minutes <= 0:
            raise ValueError("period_minutes must be positive")

    def keep_record(self, record: PacketRecord) -> bool:
        period = minutes(self.period_minutes)
        index = int((record.time - self.anchor) // period)
        if index != self._window_index:
            self._window_index = index
            self._taken = 0
        if self._taken < self.budget_per_period:
            self._taken += 1
            return True
        return False


class SamplingTable:
    """A passive service table fed through a record-level sampler.

    The fixed-period sampler plugs straight into
    :class:`~repro.passive.monitor.PassiveServiceTable` via its
    time-only ``sampler`` hook; the deferred strategies need to see the
    whole record, so this thin observer wraps a table and filters
    records before delivery.
    """

    def __init__(self, table, sampler) -> None:
        self.table = table
        self.sampler = sampler
        self.kept = 0
        self.dropped = 0

    def observe(self, record: PacketRecord) -> None:
        if self.sampler.keep_record(record):
            self.kept += 1
            self.table.observe(record)
        else:
            self.dropped += 1

    @property
    def observed_fraction(self) -> float:
        total = self.kept + self.dropped
        return self.kept / total if total else 0.0


def effective_observation_seconds(
    sampler: FixedPeriodSampler, start: float, end: float
) -> float:
    """Total observed time under *sampler* within ``[start, end)``."""
    return sum(hi - lo for lo, hi in sampler.windows_in(start, end))
