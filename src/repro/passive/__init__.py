"""Passive monitoring.

The observation side of the paper: tap the border links, keep only the
discovery-relevant headers (TCP SYN / SYN-ACK / RST, plus UDP), and
build a table of services over time.

* :mod:`repro.passive.monitor` -- the observer framework and the
  passive service table (SYN-ACK signal by default; handshake
  confirmation available as an ablation);
* :mod:`repro.passive.taps` -- per-peering-link capture filters
  (Section 5.2's partial-perspective study);
* :mod:`repro.passive.sampling` -- fixed-period sampling windows
  (Section 5.3);
* :mod:`repro.passive.scandetect` -- the external-scan detector
  (>=100 distinct targets and >=100 RSTs within 12 hours) and the
  scan-removal filter behind Figure 4.
"""

from repro.passive.monitor import (
    PacketObserver,
    PassiveServiceTable,
    ServiceSignal,
    UdpSignal,
    replay,
)
from repro.passive.sampling import (
    CountBudgetSampler,
    FixedPeriodSampler,
    ProbabilisticSampler,
    SamplingTable,
)
from repro.passive.scandetect import ExternalScanDetector, ScanDetectorConfig
from repro.passive.taps import LinkTap, MultiLinkMonitor

__all__ = [
    "CountBudgetSampler",
    "ExternalScanDetector",
    "FixedPeriodSampler",
    "ProbabilisticSampler",
    "SamplingTable",
    "UdpSignal",
    "LinkTap",
    "MultiLinkMonitor",
    "PacketObserver",
    "PassiveServiceTable",
    "ScanDetectorConfig",
    "ServiceSignal",
    "replay",
]
