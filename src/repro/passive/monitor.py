"""The passive service table and the observer framework.

The paper's rule (Section 3.2): "we assume that any host sending a
SYN-ACK is running a service"; for UDP, "any host which sends UDP
traffic from a well known server port is running a UDP service on that
port".  :class:`PassiveServiceTable` implements both, plus the
flow/client accumulators behind the weighted-completeness metrics and
an optional stricter handshake-confirmation signal used as an ablation.

Observers are deliberately order-insensitive: the generator's packet
stream is only approximately time-ordered (see
:mod:`repro.traffic.generator`), and first-seen times are maintained
with ``min`` rather than by assuming monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Protocol

import numpy as np

from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord
from repro.telemetry.metrics import registry as _telemetry_registry

#: A service endpoint as the passive table keys it.
Endpoint = tuple[int, int, int]  # (address, port, proto)


class PacketObserver(Protocol):
    """Anything that can consume captured packet records.

    Observers may additionally expose ``observe_batch(records)``
    consuming a list at a time; the batched replay engine prefers it
    and falls back to per-record ``observe`` otherwise.  A batch
    implementation must be behaviourally identical to calling
    ``observe`` on each record in order.

    Observers may further expose ``observe_columns(cols)`` consuming a
    :class:`repro.trace.columnar.RecordColumns` batch; the columnar
    replay engine (:func:`replay_columnar`) prefers it and otherwise
    materialises the batch once (shared across all scalar observers of
    the pass) and feeds ``observe_batch``.  The scalar-fallback
    contract: ``observe_columns(cols)`` must be behaviourally identical
    to ``observe_batch(cols.to_records())``, and an implementation that
    cannot vectorise a configuration must delegate to exactly that.
    """

    def observe(self, record: PacketRecord) -> None:  # pragma: no cover
        ...


def _campus_params(is_campus) -> tuple[int, int] | None:
    """The (network, mask) of a vectorisable campus predicate.

    :meth:`repro.campus.topology.CampusTopology.campus_predicate`
    stamps its prefix parameters onto the closure; any predicate
    without them (tests hand in arbitrary lambdas) is opaque, and the
    caller must take its scalar path.
    """
    network = getattr(is_campus, "campus_network", None)
    mask = getattr(is_campus, "campus_mask", None)
    if network is None or mask is None:
        return None
    return network, mask


def _link_lut(link_names: tuple[str, ...], links: frozenset[str]) -> np.ndarray:
    """Boolean lookup table over link indices for a watched-links set."""
    lut = np.zeros(len(link_names), dtype=bool)
    for index, name in enumerate(link_names):
        if name in links:
            lut[index] = True
    return lut


def _group_min_into(
    keys: np.ndarray, times: np.ndarray, proto: int,
    first_seen: dict[Endpoint, float],
) -> None:
    """Fold per-key minimum times into *first_seen* (keys = addr<<16|port).

    Sorting by (key, time) makes each group's first element its
    minimum; only the unique keys reach Python, so the dict work is
    proportional to distinct endpoints per batch, not records.
    """
    order = np.lexsort((times, keys))
    sorted_keys = keys[order]
    sorted_times = times[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    )
    for key, seen in zip(
        sorted_keys[starts].tolist(), sorted_times[starts].tolist()
    ):
        endpoint = (key >> 16, key & 0xFFFF, proto)
        previous = first_seen.get(endpoint)
        if previous is None or seen < previous:
            first_seen[endpoint] = seen


def replay(
    stream: Iterable[PacketRecord],
    *observers: PacketObserver,
    faults=None,
) -> int:
    """Push every record of *stream* into all *observers*; return count.

    One pass feeds any number of observers, so analyses that need
    several views (per-link tables, sampled tables, scan detection)
    share a single traversal of the trace.

    *faults* (a :class:`repro.faults.capture.CaptureFilter`) injects
    capture loss and monitor outages: dropped records are invisible to
    *every* observer of the pass, exactly as a packet lost at the tap
    is lost for all analyses of the stored trace.  The returned count
    is the number of records the observers actually saw.  ``None``
    (the default) takes the pristine path.
    """
    if faults is not None:
        keep = faults.keep
        stream = (record for record in stream if keep(record))
    count = 0
    observe_methods = [observer.observe for observer in observers]
    for record in stream:
        for observe in observe_methods:
            observe(record)
        count += 1
    return count


def _batch_adapter(observe: Callable[[PacketRecord], None]):
    """Wrap a per-record ``observe`` as a batch consumer."""

    def observe_batch(records: list[PacketRecord]) -> None:
        for record in records:
            observe(record)

    return observe_batch


def replay_batched(
    batches: Iterable[list[PacketRecord]],
    *observers: PacketObserver,
    faults=None,
) -> int:
    """Feed record *batches* into all *observers*; return the record count.

    The batched counterpart of :func:`replay`, built for cached-trace
    replay: the reader decodes records in chunks
    (:func:`repro.trace.format.read_records_chunked`) and each observer
    consumes a whole chunk per call.  Observers providing
    ``observe_batch`` pay one Python call per batch instead of one per
    record, and their batch loops hoist the direction/port/link
    pre-filters into local variables, so records an observer would
    discard cost a few comparisons rather than a method dispatch.

    Results are identical to :func:`replay` over the flattened stream,
    including under a *faults* filter: the filter consumes records in
    stream order either way, so the drop pattern matches the
    record-at-a-time path bit for bit.
    """
    count = 0
    dispatchers = []
    for observer in observers:
        batch_method = getattr(observer, "observe_batch", None)
        if batch_method is None:
            batch_method = _batch_adapter(observer.observe)
        dispatchers.append(batch_method)
    filter_batch = faults.filter_batch if faults is not None else None
    reg = _telemetry_registry()
    if reg.enabled:
        # Instrumented copy of the loop below: per-chunk wall timings
        # land in a histogram.  Kept on a separate branch so the
        # disabled path runs exactly the code it always did.
        from time import perf_counter

        chunk_seconds = reg.histogram(
            "repro_replay_chunk_seconds",
            "Wall time to dispatch one decoded chunk to all observers.",
        )
        chunks = reg.counter(
            "repro_replay_chunks_total",
            "Decoded chunks dispatched by batched replay.",
        )
        for batch in batches:
            chunk_start = perf_counter()
            if filter_batch is not None:
                batch = filter_batch(batch)
            for dispatch in dispatchers:
                dispatch(batch)
            count += len(batch)
            chunk_seconds.observe(perf_counter() - chunk_start)
            chunks.inc()
        return count
    for batch in batches:
        if filter_batch is not None:
            batch = filter_batch(batch)
        for dispatch in dispatchers:
            dispatch(batch)
        count += len(batch)
    return count


def replay_columnar(
    batches,
    *observers: PacketObserver,
    faults=None,
) -> int:
    """Feed :class:`~repro.trace.columnar.RecordColumns` batches into
    all *observers*; return the record count.

    The columnar counterpart of :func:`replay_batched`, built for the
    v2 trace format: the reader hands out zero-copy column views
    (:func:`repro.trace.columnar.read_trace_columns`) and observers
    exposing ``observe_columns`` consume whole field arrays --
    mask-based SYN-ACK selection, bincount accounting -- instead of
    record objects.  Observers without a columnar path get the batch
    materialised as records exactly once per batch (the list is cached
    on the batch), so mixing vectorised and scalar observers costs one
    decode, not one per observer.

    Results are identical to :func:`replay_batched` over the same
    stream, including under a *faults* filter: the filter's decision
    loop consumes (link, time) pairs in stream order
    (:meth:`repro.faults.capture.CaptureFilter.keep_mask`), so the drop
    pattern matches the scalar paths bit for bit.
    """
    dispatchers = []
    for observer in observers:
        column_method = getattr(observer, "observe_columns", None)
        if column_method is not None:
            dispatchers.append((column_method, True))
            continue
        batch_method = getattr(observer, "observe_batch", None)
        if batch_method is None:
            batch_method = _batch_adapter(observer.observe)
        dispatchers.append((batch_method, False))

    def deliver(cols) -> None:
        for dispatch, columnar in dispatchers:
            if columnar:
                dispatch(cols)
            else:
                dispatch(cols.to_records())

    count = 0
    reg = _telemetry_registry()
    if reg.enabled:
        # Mirrors replay_batched's instrumented branch: same metric
        # names, so dashboards see one replay pipeline.
        from time import perf_counter

        chunk_seconds = reg.histogram(
            "repro_replay_chunk_seconds",
            "Wall time to dispatch one decoded chunk to all observers.",
        )
        chunks = reg.counter(
            "repro_replay_chunks_total",
            "Decoded chunks dispatched by batched replay.",
        )
        for cols in batches:
            chunk_start = perf_counter()
            if faults is not None:
                mask = faults.keep_mask(
                    cols.time.tolist(), cols.link.tolist(), cols.link_names
                )
                if not mask.all():
                    cols = cols.compress(mask)
            if len(cols):
                deliver(cols)
                count += len(cols)
            chunk_seconds.observe(perf_counter() - chunk_start)
            chunks.inc()
        return count
    for cols in batches:
        if faults is not None:
            mask = faults.keep_mask(
                cols.time.tolist(), cols.link.tolist(), cols.link_names
            )
            if not mask.all():
                cols = cols.compress(mask)
        if len(cols):
            deliver(cols)
            count += len(cols)
    return count


class ServiceSignal(str, Enum):
    """What counts as evidence of a TCP service."""

    SYNACK = "synack"          # the paper's choice: any SYN-ACK from campus
    HANDSHAKE = "handshake"    # ablation: SYN-ACK followed by the client's ACK


class UdpSignal(str, Enum):
    """What counts as evidence of a UDP service.

    The paper notes (Section 2.2) that "while bi-directional traffic
    positively indicates a UDP service, unidirectional traffic may
    also indicate a service ... but may also indicate unsolicited
    probe traffic".  ``SPORT`` is the paper's operational rule (any
    campus datagram sourced at a watched port); ``BIDIRECTIONAL`` is
    the stricter alternative requiring a preceding inbound request.
    """

    SPORT = "sport"
    BIDIRECTIONAL = "bidirectional"


@dataclass
class PassiveServiceTable:
    """Passive discovery state built from captured headers.

    Parameters
    ----------
    is_campus:
        Predicate deciding whether an address belongs to the monitored
        network (direction filter).
    tcp_ports:
        TCP server ports tracked; ``None`` tracks every port (the
        DTCPall study).
    udp_ports:
        UDP server ports tracked (empty for TCP-only studies).
    links:
        Peering links monitored; ``None`` monitors all.
    signal:
        TCP evidence rule (:class:`ServiceSignal`).
    exclude_sources:
        External addresses whose conversations are ignored entirely --
        the scan-removal filter of Section 4.3.
    sampler:
        Optional time filter (``keep(t) -> bool``); used for the
        fixed-period sampling study.
    """

    is_campus: Callable[[int], bool]
    tcp_ports: frozenset[int] | None = None
    udp_ports: frozenset[int] = frozenset()
    links: frozenset[str] | None = None
    signal: ServiceSignal = ServiceSignal.SYNACK
    udp_signal: UdpSignal = UdpSignal.SPORT
    exclude_sources: frozenset[int] = frozenset()
    sampler: Callable[[float], bool] | None = None

    #: endpoint -> earliest evidence time.
    first_seen: dict[Endpoint, float] = field(default_factory=dict)
    #: endpoint -> number of positive responses (flow weighting).
    flow_counts: dict[Endpoint, int] = field(default_factory=dict)
    #: endpoint -> distinct client addresses served (client weighting).
    clients: dict[Endpoint, set[int]] = field(default_factory=dict)
    #: (server, client, cport, sport) pairs awaiting the handshake ACK.
    _pending_handshake: dict[tuple[int, int, int, int], float] = field(
        default_factory=dict
    )
    #: (server, port, client) triples with an inbound UDP request seen
    #: (BIDIRECTIONAL udp_signal only).
    _udp_requests: set[tuple[int, int, int]] = field(default_factory=set)

    def observe(self, record: PacketRecord) -> None:
        """Feed one captured header into the table."""
        if self.links is not None and record.link not in self.links:
            return
        if self.sampler is not None and not self.sampler(record.time):
            return
        if record.proto == PROTO_TCP:
            self._observe_tcp(record)
        elif record.proto == PROTO_UDP:
            self._observe_udp(record)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: identical results, no per-record calls.

        The pre-filters (link, sampler, protocol, direction, port) and
        the SYN-ACK/ACK bookkeeping of the paper's default SYNACK rule
        run inline on raw flag integers, so a discarded record costs a
        few comparisons and a kept one a couple of dict operations --
        no enum construction or method dispatch per record.  The
        stricter HANDSHAKE signal and all UDP records take the exact
        per-record path.
        """
        links = self.links
        sampler = self.sampler
        is_campus = self.is_campus
        tcp_ports = self.tcp_ports
        exclude = self.exclude_sources
        synack_rule = self.signal is ServiceSignal.SYNACK
        first_seen = self.first_seen
        flow_counts = self.flow_counts
        clients = self.clients
        observe_tcp = self._observe_tcp
        observe_udp = self._observe_udp
        for record in records:
            if links is not None and record.link not in links:
                continue
            if sampler is not None and not sampler(record.time):
                continue
            proto = record.proto
            if proto == PROTO_TCP:
                flag_bits = record.flags._value_
                if flag_bits & 0x02:  # SYN set
                    if flag_bits & 0x10:  # SYN-ACK: the service signal
                        if not synack_rule:
                            observe_tcp(record)
                            continue
                        src = record.src
                        if not is_campus(src) or is_campus(record.dst):
                            continue
                        if record.dst in exclude:
                            continue
                        sport = record.sport
                        if tcp_ports is not None and sport not in tcp_ports:
                            continue
                        endpoint = (src, sport, PROTO_TCP)
                        previous = first_seen.get(endpoint)
                        if previous is None or record.time < previous:
                            first_seen[endpoint] = record.time
                    # A bare SYN carries no service evidence.
                    continue
                if flag_bits & 0x10:  # bare ACK: flow/client accounting
                    if not synack_rule:
                        observe_tcp(record)
                        continue
                    src = record.src
                    dst = record.dst
                    if is_campus(src) or not is_campus(dst):
                        continue
                    if src in exclude:
                        continue
                    dport = record.dport
                    if tcp_ports is not None and dport not in tcp_ports:
                        continue
                    endpoint = (dst, dport, PROTO_TCP)
                    flow_counts[endpoint] = flow_counts.get(endpoint, 0) + 1
                    served = clients.get(endpoint)
                    if served is None:
                        served = clients[endpoint] = set()
                    served.add(src)
                # RST and flagless records carry no evidence.
            elif proto == PROTO_UDP:
                observe_udp(record)

    # ---- columnar fast path -----------------------------------------

    def _can_vectorize(self) -> bool:
        """Whether this table's configuration has a columnar fast path.

        The vectorised path covers the paper's operating point: the
        SYNACK evidence rule, the SPORT UDP rule, no time sampler, and
        a prefix-parameterised campus predicate.  Everything else
        (HANDSHAKE ablation, BIDIRECTIONAL UDP, samplers, opaque
        predicates) delegates to the scalar batch path -- identical
        results, per the observer contract.
        """
        return (
            self.sampler is None
            and self.signal is ServiceSignal.SYNACK
            and (not self.udp_ports or self.udp_signal is UdpSignal.SPORT)
            and _campus_params(self.is_campus) is not None
        )

    def _ports_array(self, cache_attr: str, ports) -> np.ndarray:
        cached = self.__dict__.get(cache_attr)
        if cached is None:
            cached = np.array(sorted(ports), dtype=np.uint16)
            self.__dict__[cache_attr] = cached
        return cached

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: whole-array selection masks.

        Consumes a :class:`repro.trace.columnar.RecordColumns` batch.
        Evidence selection is mask algebra over the raw field arrays
        (SYN-ACK bits, prefix membership, port sets); dict updates run
        over the batch's *distinct* endpoints via sorted group
        reductions, so per-record Python work disappears entirely.
        """
        if not self._can_vectorize():
            self.observe_batch(cols.to_records())
            return
        network, mask = _campus_params(self.is_campus)
        proto = cols.proto
        flags = cols.flags
        src = cols.src
        dst = cols.dst
        time = cols.time
        base = None
        if self.links is not None:
            base = _link_lut(cols.link_names, self.links)[cols.link]
            if not base.any():
                return
        src_campus = (src & mask) == network
        dst_campus = (dst & mask) == network
        tcp = proto == PROTO_TCP
        if base is not None:
            tcp &= base
        exclude = None
        if self.exclude_sources:
            exclude = np.fromiter(
                self.exclude_sources, dtype=np.uint32,
                count=len(self.exclude_sources),
            )

        # SYN-ACK from a campus server to an outside client: the
        # service-evidence signal (first_seen, min over the batch).
        synack = tcp & ((flags & 0x12) == 0x12)
        synack &= src_campus & ~dst_campus
        if exclude is not None:
            synack &= ~np.isin(dst, exclude)
        if self.tcp_ports is not None:
            synack &= np.isin(
                cols.sport, self._ports_array("_tcp_ports_cache", self.tcp_ports)
            )
        index = np.flatnonzero(synack)
        if index.size:
            keys = (
                src[index].astype(np.uint64) << np.uint64(16)
            ) | cols.sport[index]
            _group_min_into(keys, time[index], PROTO_TCP, self.first_seen)

        # Bare ACK from an outside client to a campus server: the
        # flow/client popularity accounting.
        ack = tcp & ((flags & 0x12) == 0x10)
        ack &= ~src_campus & dst_campus
        if exclude is not None:
            ack &= ~np.isin(src, exclude)
        if self.tcp_ports is not None:
            ack &= np.isin(
                cols.dport, self._ports_array("_tcp_ports_cache", self.tcp_ports)
            )
        index = np.flatnonzero(ack)
        if index.size:
            keys = (
                dst[index].astype(np.uint64) << np.uint64(16)
            ) | cols.dport[index]
            self._count_columns(keys, src[index], PROTO_TCP)

        # Outbound datagram from a watched UDP server port (SPORT rule):
        # evidence and accounting in one selection.
        if self.udp_ports:
            udp = proto == PROTO_UDP
            if base is not None:
                udp &= base
            udp &= src_campus & ~dst_campus
            udp &= np.isin(
                cols.sport, self._ports_array("_udp_ports_cache", self.udp_ports)
            )
            if exclude is not None:
                udp &= ~np.isin(dst, exclude)
            index = np.flatnonzero(udp)
            if index.size:
                keys = (
                    src[index].astype(np.uint64) << np.uint64(16)
                ) | cols.sport[index]
                _group_min_into(keys, time[index], PROTO_UDP, self.first_seen)
                self._count_columns(keys, dst[index], PROTO_UDP)

    def _count_columns(
        self, keys: np.ndarray, clients: np.ndarray, proto: int
    ) -> None:
        """Vectorised :meth:`_count` over (addr<<16|port) keys.

        Flow counts come from one ``np.unique`` with counts; client
        sets from the distinct (key, client) pairs of a lexsort -- the
        Python loops run over deduplicated pairs only.
        """
        unique_keys, counts = np.unique(keys, return_counts=True)
        flow_counts = self.flow_counts
        for key, count in zip(unique_keys.tolist(), counts.tolist()):
            endpoint = (key >> 16, key & 0xFFFF, proto)
            flow_counts[endpoint] = flow_counts.get(endpoint, 0) + count
        order = np.lexsort((clients, keys))
        sorted_keys = keys[order]
        sorted_clients = clients[order]
        fresh = np.r_[
            True,
            (sorted_keys[1:] != sorted_keys[:-1])
            | (sorted_clients[1:] != sorted_clients[:-1]),
        ]
        table = self.clients
        for key, client in zip(
            sorted_keys[fresh].tolist(), sorted_clients[fresh].tolist()
        ):
            endpoint = (key >> 16, key & 0xFFFF, proto)
            served = table.get(endpoint)
            if served is None:
                served = table[endpoint] = set()
            served.add(client)

    # ---- TCP --------------------------------------------------------

    def _observe_tcp(self, record: PacketRecord) -> None:
        flags = record.flags
        if flags.is_synack:
            if not self.is_campus(record.src) or self.is_campus(record.dst):
                return  # not a campus server answering an outside client
            if record.dst in self.exclude_sources:
                return
            if self.tcp_ports is not None and record.sport not in self.tcp_ports:
                return
            if self.signal is ServiceSignal.SYNACK:
                endpoint = (record.src, record.sport, PROTO_TCP)
                previous = self.first_seen.get(endpoint)
                if previous is None or record.time < previous:
                    self.first_seen[endpoint] = record.time
            else:
                self._pending_handshake[
                    (record.src, record.dst, record.dport, record.sport)
                ] = record.time
            return
        if flags & 0x10 and not flags.is_synack and not flags.is_syn:
            # A bare ACK from an outside client completes a handshake:
            # the flow/client weighting signal.  Half-open scanners
            # never send it, so scans do not inflate popularity.
            if self.is_campus(record.src) or not self.is_campus(record.dst):
                return
            if record.src in self.exclude_sources:
                return
            if self.tcp_ports is not None and record.dport not in self.tcp_ports:
                return
            self._count(record.dst, record.dport, PROTO_TCP, record.src)
            if self.signal is ServiceSignal.HANDSHAKE:
                key = (record.dst, record.src, record.sport, record.dport)
                seen = self._pending_handshake.pop(key, None)
                if seen is not None:
                    endpoint = (record.dst, record.dport, PROTO_TCP)
                    previous = self.first_seen.get(endpoint)
                    when = min(seen, record.time)
                    if previous is None or when < previous:
                        self.first_seen[endpoint] = when

    # ---- UDP --------------------------------------------------------

    def _observe_udp(self, record: PacketRecord) -> None:
        if not self.udp_ports:
            return
        outbound = self.is_campus(record.src) and not self.is_campus(record.dst)
        inbound = not self.is_campus(record.src) and self.is_campus(record.dst)
        if (
            self.udp_signal is UdpSignal.BIDIRECTIONAL
            and inbound
            and record.dport in self.udp_ports
            and record.src not in self.exclude_sources
        ):
            self._udp_requests.add((record.dst, record.dport, record.src))
            return
        if not outbound:
            return
        if record.dst in self.exclude_sources:
            return
        if record.sport not in self.udp_ports:
            return
        if self.udp_signal is UdpSignal.BIDIRECTIONAL:
            key = (record.src, record.sport, record.dst)
            if key not in self._udp_requests:
                return  # unsolicited datagram: may be probe traffic
        self._record(record.src, record.sport, PROTO_UDP, record)

    # ---- state updates ----------------------------------------------

    def _record(self, address: int, port: int, proto: int, record: PacketRecord) -> None:
        endpoint = (address, port, proto)
        previous = self.first_seen.get(endpoint)
        if previous is None or record.time < previous:
            self.first_seen[endpoint] = record.time
        self._count(address, port, proto, record.dst)

    def _count(self, address: int, port: int, proto: int, client: int) -> None:
        endpoint = (address, port, proto)
        self.flow_counts[endpoint] = self.flow_counts.get(endpoint, 0) + 1
        self.clients.setdefault(endpoint, set()).add(client)

    # ---- results ----------------------------------------------------

    def endpoints(self) -> set[Endpoint]:
        """All (address, port, proto) endpoints with recorded evidence."""
        return set(self.first_seen)

    def server_addresses(self) -> set[int]:
        """Addresses with at least one discovered service."""
        return {address for address, _, _ in self.first_seen}

    def discovery_events(self) -> list[tuple[float, Endpoint]]:
        """(first_seen, endpoint) pairs, sorted by time."""
        return sorted((t, e) for e, t in self.first_seen.items())

    def address_discovery_events(self) -> list[tuple[float, int]]:
        """(first_seen, address) pairs, address-level, sorted by time."""
        best: dict[int, float] = {}
        for (address, _, _), t in self.first_seen.items():
            if address not in best or t < best[address]:
                best[address] = t
        return sorted((t, a) for a, t in best.items())

    def unique_clients(self, endpoint: Endpoint) -> int:
        """Number of distinct clients that got a positive response."""
        return len(self.clients.get(endpoint, ()))

    def flows(self, endpoint: Endpoint) -> int:
        """Number of positive responses sent by the endpoint."""
        return self.flow_counts.get(endpoint, 0)
