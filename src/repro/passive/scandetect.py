"""External-scan detection (paper Section 4.3).

The paper removes the effect of external scans by identifying "any host
which attempts to open TCP connections to 100 or more unique IP
addresses on our network within 12 hours and receives TCP RST responses
from at least 100 of these contacted hosts" -- 65 sources matched over
18 days.

:class:`ExternalScanDetector` implements exactly that rule.  Time is
bucketed into windows of ``window_seconds`` anchored at the dataset
start; a source is flagged if any single bucket satisfies both
thresholds.  Bucketing (rather than a true sliding window) is
order-insensitive, which the replay framework requires, and
conservative in the same way for every candidate source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.packet import PROTO_TCP, PacketRecord
from repro.simkernel.clock import hours


@dataclass(frozen=True)
class ScanDetectorConfig:
    """Thresholds of the paper's scan-identification heuristic."""

    min_targets: int = 100
    min_rsts: int = 100
    window_seconds: float = hours(12)


@dataclass
class ExternalScanDetector:
    """Flags external sources that systematically sweep the campus.

    Parameters
    ----------
    is_campus:
        Direction predicate; only outside->campus SYNs and campus->
        outside RSTs are considered.
    config:
        Detection thresholds.
    """

    is_campus: Callable[[int], bool]
    config: ScanDetectorConfig = field(default_factory=ScanDetectorConfig)

    #: (source, window_index) -> campus targets SYN'd.  Stored as a bare
    #: int while a source has contacted a single target (the
    #: overwhelmingly common case for legitimate clients) and promoted
    #: to a set on the second distinct target; long traces would
    #: otherwise spend hundreds of MB on one-element sets.
    _targets: dict[tuple[int, int], int | set[int]] = field(default_factory=dict)
    #: (source, window_index) -> campus hosts that answered with RST.
    _rst_sources: dict[tuple[int, int], int | set[int]] = field(default_factory=dict)

    @staticmethod
    def _note(table: dict, key: tuple[int, int], member: int) -> None:
        current = table.get(key)
        if current is None:
            table[key] = member
        elif isinstance(current, int):
            if current != member:
                table[key] = {current, member}
        else:
            current.add(member)

    @staticmethod
    def _size(entry: int | set[int] | None) -> int:
        if entry is None:
            return 0
        return 1 if isinstance(entry, int) else len(entry)

    def observe(self, record: PacketRecord) -> None:
        if record.proto != PROTO_TCP:
            return
        window = int(record.time // self.config.window_seconds)
        if record.flags.is_syn:
            if self.is_campus(record.src) or not self.is_campus(record.dst):
                return
            self._note(self._targets, (record.src, window), record.dst)
        elif record.flags.is_rst:
            if not self.is_campus(record.src) or self.is_campus(record.dst):
                return
            self._note(self._rst_sources, (record.dst, window), record.src)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: identical results, hoisted lookups.

        Flag classification uses raw integer bit tests (``SYN`` set and
        ``ACK`` clear; ``RST`` set) -- the same predicates as
        ``TcpFlags.is_syn`` / ``is_rst`` without per-record property
        dispatch.
        """
        window_seconds = self.config.window_seconds
        is_campus = self.is_campus
        targets = self._targets
        rst_sources = self._rst_sources
        note = self._note
        for record in records:
            if record.proto != PROTO_TCP:
                continue
            flags = record.flags._value_
            if flags & 0x02 and not flags & 0x10:  # SYN without ACK
                if is_campus(record.src) or not is_campus(record.dst):
                    continue
                window = int(record.time // window_seconds)
                note(targets, (record.src, window), record.dst)
            elif flags & 0x04:  # RST
                if not is_campus(record.src) or is_campus(record.dst):
                    continue
                window = int(record.time // window_seconds)
                note(rst_sources, (record.dst, window), record.src)

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: SYN/RST selection masks and
        dedup before the bucket updates.

        Buckets hold *distinct* members, so only the batch's unique
        (source, window, member) triples need Python-level ``_note``
        calls; duplicates within a batch (retransmits, repeated
        conversations) are collapsed by one sort.
        """
        import numpy as np

        from repro.passive.monitor import _campus_params

        params = _campus_params(self.is_campus)
        if params is None:
            self.observe_batch(cols.to_records())
            return
        network, mask = params
        tcp = cols.proto == PROTO_TCP
        if not tcp.any():
            return
        flags = cols.flags
        src = cols.src
        dst = cols.dst
        src_campus = (src & mask) == network
        dst_campus = (dst & mask) == network
        window = (
            cols.time // self.config.window_seconds
        ).astype(np.int64)
        syn = tcp & ((flags & 0x02) != 0) & ((flags & 0x10) == 0)
        syn &= ~src_campus & dst_campus
        self._note_unique(
            self._targets, src[syn], window[syn], dst[syn]
        )
        rst = tcp & ~(((flags & 0x02) != 0) & ((flags & 0x10) == 0))
        rst &= (flags & 0x04) != 0
        rst &= src_campus & ~dst_campus
        self._note_unique(
            self._rst_sources, dst[rst], window[rst], src[rst]
        )

    def _note_unique(self, table: dict, keys, windows, members) -> None:
        """Bulk :meth:`_note` over parallel key/window/member arrays."""
        import numpy as np

        if not keys.size:
            return
        order = np.lexsort((members, windows, keys))
        sorted_keys = keys[order]
        sorted_windows = windows[order]
        sorted_members = members[order]
        fresh = np.r_[
            True,
            (sorted_keys[1:] != sorted_keys[:-1])
            | (sorted_windows[1:] != sorted_windows[:-1])
            | (sorted_members[1:] != sorted_members[:-1]),
        ]
        note = self._note
        for key, window, member in zip(
            sorted_keys[fresh].tolist(),
            sorted_windows[fresh].tolist(),
            sorted_members[fresh].tolist(),
        ):
            note(table, (key, window), member)

    def scanners(self) -> set[int]:
        """External sources satisfying both thresholds in some window."""
        return self.scanners_with(self.config.min_targets, self.config.min_rsts)

    def scanners_with(self, min_targets: int, min_rsts: int) -> set[int]:
        """Re-evaluate detection under different thresholds.

        The observation pass only buckets evidence; thresholds apply at
        query time, so sensitivity studies need no extra trace pass.
        (The bucketing window is fixed at observe time.)
        """
        flagged: set[int] = set()
        for (source, window), targets in self._targets.items():
            if self._size(targets) < min_targets:
                continue
            responders = self._rst_sources.get((source, window))
            if self._size(responders) >= min_rsts:
                flagged.add(source)
        return flagged

    def target_count(self, source: int) -> int:
        """Distinct campus addresses *source* SYN'd (across all windows)."""
        seen: set[int] = set()
        for (candidate, _), targets in self._targets.items():
            if candidate == source:
                if isinstance(targets, int):
                    seen.add(targets)
                else:
                    seen |= targets
        return len(seen)
