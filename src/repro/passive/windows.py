"""Window-scoped passive activity tracking.

Two analyses need to know not just *when a server was first seen* but
whether passive evidence existed inside specific time windows:

* Table 4's "seen passively later" bit (any evidence after the first
  12 hours, even for servers first seen earlier);
* firewall confirmation method 2 (evidence *during* a scan whose probes
  the server ignored).

:class:`WindowActivityObserver` records, per campus address, which of a
fixed set of windows contained SYN-ACK (or watched-UDP) evidence.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord


@dataclass
class WindowActivityObserver:
    """Marks (address, window) pairs with passive service evidence.

    Parameters
    ----------
    windows:
        Sorted, disjoint ``(start, end)`` windows of interest (e.g. the
        35 scan intervals, or a single "after 12 h" window).
    is_campus:
        Direction predicate.
    tcp_ports / udp_ports:
        Service ports considered evidence (same semantics as the
        passive table).
    """

    windows: Sequence[tuple[float, float]]
    is_campus: Callable[[int], bool]
    tcp_ports: frozenset[int] | None = None
    udp_ports: frozenset[int] = frozenset()

    #: address -> set of window indices with evidence.
    hits: dict[int, set[int]] = field(default_factory=dict)
    _starts: list[float] = field(init=False)

    def __post_init__(self) -> None:
        ordered = sorted(self.windows)
        if list(self.windows) != ordered:
            raise ValueError("windows must be sorted")
        for (s1, e1), (s2, _) in zip(ordered, ordered[1:]):
            if e1 > s2:
                raise ValueError("windows must be disjoint")
        self._starts = [start for start, _ in self.windows]

    def _window_of(self, t: float) -> int | None:
        index = bisect.bisect_right(self._starts, t) - 1
        if index < 0:
            return None
        start, end = self.windows[index]
        return index if start <= t < end else None

    def observe(self, record: PacketRecord) -> None:
        if record.proto == PROTO_TCP:
            if not record.flags.is_synack:
                return
            port = record.sport
            if self.tcp_ports is not None and port not in self.tcp_ports:
                return
        elif record.proto == PROTO_UDP:
            if record.sport not in self.udp_ports:
                return
        else:
            return
        if not self.is_campus(record.src) or self.is_campus(record.dst):
            return
        window = self._window_of(record.time)
        if window is None:
            return
        self.hits.setdefault(record.src, set()).add(window)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: identical results, hoisted filters."""
        tcp_ports = self.tcp_ports
        udp_ports = self.udp_ports
        is_campus = self.is_campus
        window_of = self._window_of
        hits = self.hits
        for record in records:
            proto = record.proto
            if proto == PROTO_TCP:
                flags = record.flags._value_
                if not (flags & 0x02 and flags & 0x10):  # SYN-ACK only
                    continue
                if tcp_ports is not None and record.sport not in tcp_ports:
                    continue
            elif proto == PROTO_UDP:
                if record.sport not in udp_ports:
                    continue
            else:
                continue
            if not is_campus(record.src) or is_campus(record.dst):
                continue
            window = window_of(record.time)
            if window is None:
                continue
            hits.setdefault(record.src, set()).add(window)

    def addresses_active_in(self, window_index: int) -> set[int]:
        """Addresses with evidence inside the given window."""
        return {
            address
            for address, indices in self.hits.items()
            if window_index in indices
        }

    def addresses_with_any_activity(self) -> set[int]:
        """Addresses with evidence in any window."""
        return set(self.hits)
