"""Window-scoped passive activity tracking.

Two analyses need to know not just *when a server was first seen* but
whether passive evidence existed inside specific time windows:

* Table 4's "seen passively later" bit (any evidence after the first
  12 hours, even for servers first seen earlier);
* firewall confirmation method 2 (evidence *during* a scan whose probes
  the server ignored).

:class:`WindowActivityObserver` records, per campus address, which of a
fixed set of windows contained SYN-ACK (or watched-UDP) evidence.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord


@dataclass
class WindowActivityObserver:
    """Marks (address, window) pairs with passive service evidence.

    Parameters
    ----------
    windows:
        Sorted, disjoint ``(start, end)`` windows of interest (e.g. the
        35 scan intervals, or a single "after 12 h" window).
    is_campus:
        Direction predicate.
    tcp_ports / udp_ports:
        Service ports considered evidence (same semantics as the
        passive table).
    """

    windows: Sequence[tuple[float, float]]
    is_campus: Callable[[int], bool]
    tcp_ports: frozenset[int] | None = None
    udp_ports: frozenset[int] = frozenset()

    #: address -> set of window indices with evidence.
    hits: dict[int, set[int]] = field(default_factory=dict)
    _starts: list[float] = field(init=False)

    def __post_init__(self) -> None:
        ordered = sorted(self.windows)
        if list(self.windows) != ordered:
            raise ValueError("windows must be sorted")
        for (s1, e1), (s2, _) in zip(ordered, ordered[1:]):
            if e1 > s2:
                raise ValueError("windows must be disjoint")
        self._starts = [start for start, _ in self.windows]

    def _window_of(self, t: float) -> int | None:
        index = bisect.bisect_right(self._starts, t) - 1
        if index < 0:
            return None
        start, end = self.windows[index]
        return index if start <= t < end else None

    def observe(self, record: PacketRecord) -> None:
        if record.proto == PROTO_TCP:
            if not record.flags.is_synack:
                return
            port = record.sport
            if self.tcp_ports is not None and port not in self.tcp_ports:
                return
        elif record.proto == PROTO_UDP:
            if record.sport not in self.udp_ports:
                return
        else:
            return
        if not self.is_campus(record.src) or self.is_campus(record.dst):
            return
        window = self._window_of(record.time)
        if window is None:
            return
        self.hits.setdefault(record.src, set()).add(window)

    def observe_batch(self, records: list[PacketRecord]) -> None:
        """Batched :meth:`observe`: identical results, hoisted filters."""
        tcp_ports = self.tcp_ports
        udp_ports = self.udp_ports
        is_campus = self.is_campus
        window_of = self._window_of
        hits = self.hits
        for record in records:
            proto = record.proto
            if proto == PROTO_TCP:
                flags = record.flags._value_
                if not (flags & 0x02 and flags & 0x10):  # SYN-ACK only
                    continue
                if tcp_ports is not None and record.sport not in tcp_ports:
                    continue
            elif proto == PROTO_UDP:
                if record.sport not in udp_ports:
                    continue
            else:
                continue
            if not is_campus(record.src) or is_campus(record.dst):
                continue
            window = window_of(record.time)
            if window is None:
                continue
            hits.setdefault(record.src, set()).add(window)

    def observe_columns(self, cols) -> None:
        """Columnar :meth:`observe_batch`: vectorised evidence masks and
        ``searchsorted`` window assignment; only the batch's distinct
        (address, window) pairs reach Python."""
        import numpy as np

        from repro.passive.monitor import _campus_params

        params = _campus_params(self.is_campus)
        if params is None:
            self.observe_batch(cols.to_records())
            return
        network, mask = params
        proto = cols.proto
        flags = cols.flags
        sport = cols.sport
        evidence = (proto == PROTO_TCP) & ((flags & 0x12) == 0x12)
        if self.tcp_ports is not None:
            tcp_ports = np.array(sorted(self.tcp_ports), dtype=np.uint16)
            evidence &= np.isin(sport, tcp_ports)
        if self.udp_ports:
            udp_ports = np.array(sorted(self.udp_ports), dtype=np.uint16)
            evidence |= (proto == PROTO_UDP) & np.isin(sport, udp_ports)
        src = cols.src
        evidence &= (src & mask) == network
        evidence &= (cols.dst & mask) != network
        index = np.flatnonzero(evidence)
        if not index.size:
            return
        times = cols.time[index]
        starts = np.array(self._starts, dtype=np.float64)
        ends = np.array([end for _, end in self.windows], dtype=np.float64)
        window = np.searchsorted(starts, times, side="right") - 1
        valid = window >= 0
        clipped = np.where(valid, window, 0)
        valid &= (starts[clipped] <= times) & (times < ends[clipped])
        addresses = src[index][valid]
        window = window[valid]
        if not addresses.size:
            return
        pairs = (
            addresses.astype(np.uint64) << np.uint64(32)
        ) | window.astype(np.uint64)
        hits = self.hits
        for pair in np.unique(pairs).tolist():
            hits.setdefault(pair >> 32, set()).add(pair & 0xFFFFFFFF)

    def addresses_active_in(self, window_index: int) -> set[int]:
        """Addresses with evidence inside the given window."""
        return {
            address
            for address, indices in self.hits.items()
            if window_index in indices
        }

    def addresses_with_any_activity(self) -> set[int]:
        """Addresses with evidence in any window."""
        return set(self.hits)
