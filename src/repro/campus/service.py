"""Services and their client-arrival activity models.

A :class:`Service` is one (port, protocol) endpoint on one host.  Its
observable life has three ingredients:

* **lifetime** -- birth and death times (supporting the paper's
  "birth" and "server death" categories);
* **reachability** -- firewall policy lives on the host (see
  :mod:`repro.campus.host`); a service may additionally be marked as
  blocking unsolicited external probes (the paper's hidden MySQL
  servers block external sources while answering internal probes);
* **activity** -- an :class:`ActivityPattern` describing legitimate
  client arrivals: a base Poisson rate, optionally restricted to
  explicit windows (a server "overheard once" has a single early
  burst window and silence after), modulated by the campus diurnal
  profile at generation time.

Rates are *mean flows per second averaged over a weekday*; the heavy
tail across services is created at synthesis time
(:mod:`repro.campus.population`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.net.packet import PROTO_TCP


@dataclass(frozen=True)
class ActivityPattern:
    """Legitimate client-arrival behaviour of one service.

    Attributes
    ----------
    base_rate:
        Mean client flows per second while the pattern is active.
        Zero means the service is silent (idle servers).
    windows:
        Optional explicit activity windows ``(start, end)`` in dataset
        seconds.  ``None`` means "whenever the host is up and the
        service is alive".  Windows outside the service lifetime are
        clipped at generation time.
    client_pool:
        Number of distinct client addresses that ever contact the
        service; arrivals draw from this pool with a Zipf preference so
        popular services also have many unique clients (the paper's
        client-weighted metric).
    """

    base_rate: float = 0.0
    windows: tuple[tuple[float, float], ...] | None = None
    client_pool: int = 1

    def __post_init__(self) -> None:
        if self.base_rate < 0 or not math.isfinite(self.base_rate):
            raise ValueError(f"base_rate must be finite and >= 0: {self.base_rate}")
        if self.client_pool < 1:
            raise ValueError(f"client_pool must be >= 1: {self.client_pool}")
        if self.windows is not None:
            for start, end in self.windows:
                if end <= start:
                    raise ValueError(f"empty activity window: ({start}, {end})")

    @property
    def is_silent(self) -> bool:
        """True when the service never receives legitimate traffic."""
        return self.base_rate == 0.0

    def active_windows(self, start: float, end: float) -> list[tuple[float, float]]:
        """Return the activity windows intersected with ``[start, end)``."""
        if self.windows is None:
            return [(start, end)] if end > start else []
        out: list[tuple[float, float]] = []
        for w_start, w_end in self.windows:
            lo, hi = max(w_start, start), min(w_end, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    def expected_flows(self, duration: float) -> float:
        """Expected flow count if active for *duration* seconds."""
        return self.base_rate * duration


@dataclass
class Service:
    """One service endpoint on one host.

    Attributes
    ----------
    host_id:
        Identifier of the owning host.
    port, proto:
        The endpoint.
    activity:
        Legitimate client arrival pattern.
    birth:
        Dataset time at which the service starts listening.  0.0 means
        it predates the study.
    death:
        Time at which it stops listening, or ``None`` for "never".
    blocks_external_probes:
        Drop unsolicited probes (external scans) while still serving
        legitimate clients and internal probes.  This is the paper's
        hidden-MySQL behaviour (Section 4.4.3) and the reason some idle
        servers are never unveiled by external scans.
    web_category:
        For HTTP services, the root-page content category
        (:class:`repro.campus.webpages.PageCategory` value); None
        otherwise.
    web_page:
        The rendered root-page HTML (set at synthesis time for HTTP
        services; what the Table 5 fetcher downloads).
    """

    host_id: int
    port: int
    proto: int = PROTO_TCP
    activity: ActivityPattern = field(default_factory=ActivityPattern)
    birth: float = 0.0
    death: float | None = None
    blocks_external_probes: bool = False
    web_category: str | None = None
    web_page: str | None = None
    #: For UDP services: whether the implementation answers a generic
    #: (malformed) probe with a UDP reply.  DNS and NetBIOS mostly do;
    #: game servers mostly do not (paper Section 4.5).
    udp_generic_responder: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.port <= 0xFFFF:
            raise ValueError(f"port out of range: {self.port}")
        if self.death is not None and self.death <= self.birth:
            raise ValueError(
                f"service death ({self.death}) must follow birth ({self.birth})"
            )

    def alive_at(self, t: float) -> bool:
        """True when the service is listening at time *t*."""
        if t < self.birth:
            return False
        if self.death is not None and t >= self.death:
            return False
        return True

    def lifetime_windows(self, start: float, end: float) -> list[tuple[float, float]]:
        """Return the single lifetime window clipped to ``[start, end)``."""
        lo = max(self.birth, start)
        hi = min(self.death if self.death is not None else end, end)
        return [(lo, hi)] if lo < hi else []
