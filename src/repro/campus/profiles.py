"""Campus profiles: semester, winter break, and the all-ports lab study.

A :class:`CampusProfile` bundles everything the synthesiser and the
traffic generators need to build one of the paper's populations:

* the behaviour-category table (optionally scaled down for fast tests);
* the non-server population;
* the external-scan climate (how often outsiders sweep the campus);
* the dataset's calendar start (scan time-of-day analysis needs real
  clock anchoring).

The winter-break profile models Section 5.5: the transient population
(students' laptops, VPN and dial-up use) collapses to a fraction of its
semester size while the static server population barely changes.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from dataclasses import dataclass

from repro.campus.categories import (
    BehaviorCategory,
    CategorySpec,
    NonServerSpec,
    semester_category_specs,
)
from repro.net.ports import PORT_FTP, PORT_HTTP, PORT_HTTPS, PORT_MYSQL, PORT_SSH

#: Address classes considered transient for profile scaling.
_TRANSIENT_CLASSES = {"dhcp", "ppp", "vpn", "wireless"}


@dataclass(frozen=True)
class ScanClimate:
    """How external parties scan the campus (Section 4.3).

    Attributes
    ----------
    major_sweeps:
        ``(day_offset, port, coverage)`` -- full-or-near-full sweeps of
        the space on given days; these create the discovery jumps in
        Figures 2 and 4.
    minor_scans_per_day:
        Poisson rate of small opportunistic scans.
    minor_port_weights:
        Port mix of the minor scans.
    minor_coverage:
        ``(low, high)`` uniform range of address-space fraction covered
        by a minor scan.
    scanner_ip_count:
        Size of the pool of distinct external scanner addresses (the
        paper identified 65 over 18 days).
    """

    major_sweeps: tuple[tuple[float, int, float], ...]
    minor_scans_per_day: float = 1.6
    minor_port_weights: tuple[tuple[int, float], ...] = (
        (PORT_HTTP, 0.55),
        (PORT_SSH, 0.20),
        (PORT_FTP, 0.12),
        (PORT_HTTPS, 0.07),
        (PORT_MYSQL, 0.06),
    )
    minor_coverage: tuple[float, float] = (0.02, 0.09)
    scanner_ip_count: int = 65


def _semester_scan_climate() -> ScanClimate:
    """The 18-day semester scan climate, anchored to the paper's jumps.

    The dataset starts 2006-09-19 at 10:00; day offsets below are in
    days from dataset start.  The paper calls out big jumps on 9-20 and
    9-23, and a campus-wide MySQL scan on 9-29 (which mostly fails
    because hidden MySQL servers drop external probes).
    """
    return ScanClimate(
        major_sweeps=(
            (1.4, PORT_HTTP, 1.0),    # 9-20: the jump to ~1,200 servers
            (3.8, PORT_SSH, 1.0),     # 9-23: second jump
            (4.1, PORT_HTTP, 0.9),
            (7.5, PORT_FTP, 1.0),
            (10.2, PORT_MYSQL, 1.0),  # 9-29: the (mostly blocked) MySQL sweep
            (13.0, PORT_SSH, 0.8),
            (15.5, PORT_HTTP, 0.9),
        ),
    )


def _break_scan_climate() -> ScanClimate:
    """Winter break: scans keep coming (scanners don't take holidays)."""
    return ScanClimate(
        major_sweeps=(
            (1.2, PORT_HTTP, 1.0),
            (3.0, PORT_FTP, 1.0),
            (4.5, PORT_SSH, 1.0),
            (6.2, PORT_MYSQL, 1.0),
            (8.0, PORT_HTTP, 0.9),
            (9.5, PORT_SSH, 0.9),
        ),
        minor_scans_per_day=2.5,
        scanner_ip_count=40,
    )


@dataclass(frozen=True)
class CampusProfile:
    """Everything needed to synthesise one campus population."""

    name: str
    category_specs: tuple[CategorySpec, ...]
    non_server: NonServerSpec
    calendar_start: _dt.datetime
    scan_climate: ScanClimate
    #: Mean outbound (campus-as-client) flows per day; exercises the
    #: monitor's direction filtering without affecting discovery.
    outbound_noise_flows_per_day: float = 400.0
    #: Global multiplier on legitimate client-arrival rates.
    activity_scale: float = 1.0

    @property
    def total_server_addresses(self) -> int:
        return sum(spec.count for spec in self.category_specs)


def _scale_count(count: int, scale: float) -> int:
    """Scale a category count, keeping small-but-present categories alive."""
    if scale >= 1.0 or count == 0:
        return int(round(count * scale))
    return max(1, int(round(count * scale)))


def _scale_specs(
    specs: tuple[CategorySpec, ...], scale: float, transient_scale: float = 1.0
) -> tuple[CategorySpec, ...]:
    """Scale spec counts; *transient_scale* additionally shrinks
    categories whose address mix is predominantly transient.

    Pooled ZIPF rates (and their client pools) scale with the member
    count, so per-server traffic intensity -- which the discovery-time
    analyses depend on -- is invariant under population scaling.
    """
    scaled = []
    for spec in specs:
        transient_weight = sum(
            w for cls, w in spec.address_classes if cls in _TRANSIENT_CLASSES
        )
        effective = scale * (transient_scale if transient_weight > 0.5 else 1.0)
        new_count = _scale_count(spec.count, effective)
        replacements: dict = {"count": new_count}
        if spec.rate.kind.value == "zipf" and spec.count > 0:
            ratio = new_count / spec.count
            replacements["rate"] = dataclasses.replace(
                spec.rate, total_rate=spec.rate.total_rate * ratio
            )
            replacements["client_pool"] = max(10, int(spec.client_pool * ratio))
        scaled.append(dataclasses.replace(spec, **replacements))
    return tuple(scaled)


def _scale_non_server(spec: NonServerSpec, scale: float, transient_scale: float = 1.0) -> NonServerSpec:
    ts = scale * transient_scale
    return NonServerSpec(
        static_count=int(round(spec.static_count * scale)),
        dhcp_count=int(round(spec.dhcp_count * ts)),
        ppp_count=int(round(spec.ppp_count * ts)),
        wireless_count=int(round(spec.wireless_count * ts)),
        vpn_count=int(round(spec.vpn_count * ts)),
        silent_fraction=spec.silent_fraction,
    )


def semester_profile(scale: float = 1.0) -> CampusProfile:
    """The mid-semester population behind DTCP1 and its subsets.

    Parameters
    ----------
    scale:
        Multiplier on all population counts; tests use small scales
        (e.g. 0.05) for speed.  1.0 reproduces the paper's counts.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive: {scale}")
    return CampusProfile(
        name="semester",
        category_specs=_scale_specs(semester_category_specs(), scale),
        non_server=_scale_non_server(NonServerSpec(), scale),
        calendar_start=_dt.datetime(2006, 9, 19, 10, 0, 0),
        scan_climate=_semester_scan_climate(),
    )


def break_profile(scale: float = 1.0) -> CampusProfile:
    """The winter-break population behind DTCPbreak (Section 5.5).

    Transient categories shrink to ~15 % of their semester size (most
    students are away: far fewer VPN/PPP/dorm hosts); static servers
    stay.  Client activity drops moderately.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive: {scale}")
    return CampusProfile(
        name="break",
        category_specs=_scale_specs(semester_category_specs(), scale, transient_scale=0.15),
        non_server=_scale_non_server(NonServerSpec(), scale, transient_scale=0.25),
        calendar_start=_dt.datetime(2006, 12, 16, 10, 0, 0),
        scan_climate=_break_scan_climate(),
        activity_scale=0.7,
    )


def dudp_profile(scale: float = 1.0) -> CampusProfile:
    """The population behind DUDP (Section 4.5).

    Table 7 implies roughly 9,800 addresses answered *something* during
    the UDP sweep -- well above the ~6,450 hosts the TCP study infers,
    because almost every host with an IP stack emits ICMP port
    unreachables even when it offers no TCP service.  The UDP study's
    population therefore carries a much larger live non-server mass.
    """
    base = semester_profile(scale)
    # The DHCP blocks hold 1,526 addresses and their sticky leases are
    # one-per-host for the whole dataset, so the extra live mass must
    # ride the (13,834-address) static space.
    extra = NonServerSpec(
        static_count=int(round(6_450 * scale)),
        dhcp_count=int(round(550 * scale)),
        ppp_count=int(round(120 * scale)),
        wireless_count=int(round(120 * scale)),
        vpn_count=int(round(100 * scale)),
        silent_fraction=0.12,
    )
    return dataclasses.replace(base, name="dudp", non_server=extra)


def allports_profile() -> CampusProfile:
    """Marker profile for the DTCPall lab-subnet study.

    The all-ports population is synthesised by
    :func:`repro.campus.population.synthesize_allports_population`,
    which does not use the category table; this profile exists so the
    dataset registry can treat all studies uniformly.
    """
    return CampusProfile(
        name="allports",
        category_specs=(),
        non_server=NonServerSpec(0, 0, 0, 0, 0),
        calendar_start=_dt.datetime(2006, 8, 26, 10, 0, 0),
        scan_climate=ScanClimate(
            major_sweeps=(
                (0.52, PORT_SSH, 1.0),   # the external SSH scan that finds every sshd
                (0.55, PORT_FTP, 1.0),   # ditto for FTP
                (3.0, PORT_SSH, 1.0),
                (3.2, PORT_HTTP, 1.0),
            ),
            minor_scans_per_day=1.0,
            scanner_ip_count=12,
        ),
    )


def transient_category_names() -> set[BehaviorCategory]:
    """Categories whose members live in transient address blocks."""
    return {
        spec.category
        for spec in semester_category_specs()
        if sum(w for cls, w in spec.address_classes if cls in _TRANSIENT_CLASSES) > 0.5
    }
