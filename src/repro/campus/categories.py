"""Behaviour categories, calibrated to the paper's Table 4.

The paper classifies every address by what 12 hours and then 18 days of
passive+active observation showed (its Tables 3 and 4).  We invert that
table: each category becomes a *generative* specification -- liveness,
firewalling, activity rate, transience -- chosen so that the defining
observable behaviour of the category emerges from the simulation with
high probability.  Category membership is ground truth the monitors
never see; the analyses re-derive categories from observations alone,
and the reproduction of Tables 3/4 compares the re-derivations against
the paper.

Counts below are the paper's Table 4 counts for the 16,130-address
semester population; profiles scale them (see
:mod:`repro.campus.profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.net.ports import PORT_FTP, PORT_HTTP, PORT_HTTPS, PORT_MYSQL, PORT_SSH
from repro.simkernel.clock import days, hours


class BehaviorCategory(str, Enum):
    """Ground-truth behaviour classes (one per Table 4 row)."""

    ACTIVE_POPULAR = "active_popular"            # row: active server address (37)
    SERVER_DEATH_BOTH = "server_death_both"      # row: server death (6)
    FIREWALL_LATER = "firewall_later"            # row: intermittent yes/yes->yes/no (1)
    MOSTLY_IDLE = "mostly_idle"                  # row: mostly idle (242)
    IDLE_INTERMITTENT = "idle_intermittent"      # row: idle/intermittent (99)
    SEMI_IDLE = "semi_idle"                      # row: semi-idle (1,247)
    IDLE_HIDDEN = "idle_hidden"                  # row: idle (75)
    INTERMITTENT_PASSIVE = "intermittent_passive"  # row: intermittent (26)
    BIRTH_EARLY = "birth_early"                  # row: birth (1)
    POSSIBLE_FIREWALL = "possible_firewall"      # row: possible firewall (4)
    SERVER_DEATH_PASSIVE = "server_death_passive"  # row: death (3)
    BIRTH_MOSTLY_IDLE = "birth_mostly_idle"      # row: birth/mostly idle (7)
    INTERMITTENT_ACTIVE = "intermittent_active"  # row: intermittent/active (188)
    BIRTH_STATIC_BOTH = "birth_static_both"      # row: birth (125)
    INTERMITTENT_IDLE = "intermittent_idle"      # row: intermittent/idle (655)
    BIRTH_IDLE = "birth_idle"                    # row: birth/idle (73)
    FIREWALL_TRANSIENT = "firewall_transient"    # row: possible firewall/intermittent (140)
    FIREWALL_BIRTH = "firewall_birth"            # row: possible firewall/birth (31)
    NON_SERVER = "non_server"                    # row: non-server address (live, no service)


class RateKind(str, Enum):
    """Families of client-arrival behaviour."""

    SILENT = "silent"      # no legitimate client traffic, ever
    ZIPF = "zipf"          # popular: Zipf-ranked share of a pooled total rate
    BURST = "burst"        # a single early activity window, silence after
    TAIL = "tail"          # heavy-tailed trickle (may see zero flows)
    SESSION = "session"    # active while the host is online (transient hosts)


@dataclass(frozen=True)
class RateSpec:
    """Parameters of one :class:`RateKind`.

    ``ZIPF``   -- ``total_rate`` flows/s shared over the category's
                  members by Zipf(``exponent``) rank weights.
    ``BURST``  -- expected ``mean_flows`` in window
                  ``(window_start, window_end)``; silent outside.
    ``TAIL``   -- each member's rate drawn so that the probability of at
                  least one flow within ``horizon`` seconds is
                  ``p_seen`` *on average* (exponential rate mixture).
    ``SESSION``-- ``flows_per_hour`` while the host is online.
    """

    kind: RateKind
    total_rate: float = 0.0
    exponent: float = 0.9
    #: Blend a uniform component into the Zipf rank weights:
    #: ``w = (1 - uniform_mix) * zipf + uniform_mix / n``.  Keeps every
    #: popular server busy enough to be heard within minutes while the
    #: top handful still dominates total volume.
    uniform_mix: float = 0.0
    #: Optional explicit popularity shares for the top-ranked members
    #: of a ZIPF category; remaining members split the residual by
    #: Zipf rank.  The paper's traffic is dominated by a handful of
    #: mega-servers (one host served 97% of a subnet's connections),
    #: which plain Zipf cannot express.
    shares: tuple[float, ...] = ()
    window_start: float = 0.0
    window_end: float = 0.0
    mean_flows: float = 0.0
    p_seen: float = 0.0
    horizon: float = days(18)
    flows_per_hour: float = 0.0


@dataclass(frozen=True)
class CategorySpec:
    """Generative recipe for one behaviour category.

    Attributes
    ----------
    category:
        The :class:`BehaviorCategory` this spec realises.
    count:
        Number of server addresses at full (semester) scale.
    address_classes:
        ``(class_name, weight)`` mix; class names are
        :class:`repro.net.addr.AddressClass` values.
    primary_ports:
        ``(port, weight)`` mix for the host's primary service.
    extra_port_prob:
        Probability of one additional service, drawn from
        ``extra_ports``.
    rate:
        The :class:`RateSpec` realised per service.
    firewall_internal / firewall_external:
        Probability the host's firewall drops internal / external
        probes (see :class:`repro.campus.host.FirewallPolicy`).
    firewall_effective_from:
        Policy activation time (models the mid-study firewall install).
    birth_window / death_window:
        Uniform ranges for service birth / death times, or None.
    mysql_hides_from_external:
        Probability that a MySQL service on this host drops external
        probes even though the host itself is open -- the Section 4.4.3
        hidden-MySQL effect.
    notes:
        Which Table 4 row(s) this reproduces and why the parameters.
    """

    category: BehaviorCategory
    count: int
    address_classes: tuple[tuple[str, float], ...]
    primary_ports: tuple[tuple[int, float], ...]
    rate: RateSpec
    extra_port_prob: float = 0.0
    extra_ports: tuple[tuple[int, float], ...] = ()
    firewall_internal: float = 0.0
    firewall_external: float = 0.0
    firewall_effective_from: float = 0.0
    birth_window: tuple[float, float] | None = None
    death_window: tuple[float, float] | None = None
    mysql_hides_from_external: float = 0.0
    client_pool: int = 2
    notes: str = ""


_WEB_HEAVY = ((PORT_HTTP, 0.62), (PORT_SSH, 0.20), (PORT_FTP, 0.18))
_MIXED = ((PORT_HTTP, 0.46), (PORT_SSH, 0.28), (PORT_FTP, 0.20), (PORT_MYSQL, 0.03), (PORT_HTTPS, 0.03))
_EXTRAS = ((PORT_HTTPS, 0.30), (PORT_SSH, 0.30), (PORT_FTP, 0.30), (PORT_MYSQL, 0.10))


def semester_category_specs() -> tuple[CategorySpec, ...]:
    """The calibrated category table for the semester population.

    Counts are exactly the paper's Table 4 rows; behavioural parameters
    are chosen so each row's defining observations emerge (see each
    spec's ``notes``).
    """
    return (
        CategorySpec(
            category=BehaviorCategory.ACTIVE_POPULAR,
            count=37,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 0.70), (PORT_SSH, 0.14), (PORT_FTP, 0.10), (PORT_MYSQL, 0.03), (PORT_HTTPS, 0.03)),
            extra_port_prob=0.5,
            extra_ports=_EXTRAS,
            rate=RateSpec(
                kind=RateKind.ZIPF,
                total_rate=0.30,
                exponent=1.5,
                uniform_mix=0.15,
            ),
            client_pool=250_000,
            notes=(
                "The 37 always-on popular servers that carry ~99% of "
                "flows; Zipf rates make passive find them within minutes "
                "(Figure 1)."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.SERVER_DEATH_BOTH,
            count=6,
            address_classes=(("static", 1.0),),
            primary_ports=_WEB_HEAVY,
            rate=RateSpec(kind=RateKind.BURST, window_start=0.0, window_end=hours(10), mean_flows=6.0),
            death_window=(hours(10), hours(12)),
            client_pool=4,
            notes="Seen by both in the first 12 h, then the service dies before scan 2.",
        ),
        CategorySpec(
            category=BehaviorCategory.FIREWALL_LATER,
            count=1,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 1.0),),
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.995, horizon=hours(10)),
            firewall_internal=1.0,
            firewall_effective_from=hours(12),
            client_pool=6,
            notes="Found by both early; installs a firewall after 12 h so active loses it.",
        ),
        CategorySpec(
            category=BehaviorCategory.MOSTLY_IDLE,
            count=242,
            address_classes=(("static", 1.0),),
            primary_ports=_WEB_HEAVY,
            extra_port_prob=0.2,
            extra_ports=_EXTRAS,
            rate=RateSpec(kind=RateKind.BURST, window_start=0.0, window_end=hours(12), mean_flows=2.0),
            firewall_external=1.0,
            client_pool=1,
            notes=(
                "Overheard in the first 12 h then silent; their firewalls "
                "drop unsolicited external probes, so later scans never "
                "re-reveal them (passive misses them for 17.5 days)."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.IDLE_INTERMITTENT,
            count=99,
            address_classes=(("dhcp", 0.8), ("ppp", 0.2)),
            primary_ports=((PORT_SSH, 0.40), (PORT_HTTP, 0.40), (PORT_FTP, 0.20)),
            rate=RateSpec(kind=RateKind.SESSION, flows_per_hour=0.004),
            firewall_external=0.7,
            client_pool=1,
            notes="Transient, near-silent servers: active catches them when online.",
        ),
        CategorySpec(
            category=BehaviorCategory.SEMI_IDLE,
            count=1247,
            address_classes=(("static", 1.0),),
            primary_ports=_MIXED,
            extra_port_prob=0.5,
            extra_ports=_EXTRAS,
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.45, horizon=days(18)),
            mysql_hides_from_external=0.6,
            client_pool=2,
            notes=(
                "The big static mostly-idle mass: rare legitimate flows "
                "(heavy tail) plus unveiling by external scans; without "
                "scans passive loses ~36% of its total (Figure 4)."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.IDLE_HIDDEN,
            count=75,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_MYSQL, 0.55), (PORT_HTTP, 0.20), (PORT_FTP, 0.15), (PORT_SSH, 0.10)),
            rate=RateSpec(kind=RateKind.SILENT),
            firewall_external=1.0,
            client_pool=1,
            notes=(
                "Never any client traffic and external probes dropped: "
                "only internal active probing ever sees them.  Heavy on "
                "MySQL -- the hidden-MySQL population of Section 4.4.3."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.INTERMITTENT_PASSIVE,
            count=26,
            address_classes=(("ppp", 0.9), ("dhcp", 0.1)),
            primary_ports=_WEB_HEAVY,
            rate=RateSpec(kind=RateKind.SESSION, flows_per_hour=0.3),
            client_pool=3,
            notes=(
                "Short-session PPP hosts active while online: passive "
                "hears them, the 12-hourly scans usually miss them."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.BIRTH_EARLY,
            count=1,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 1.0),),
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.99, horizon=hours(6)),
            birth_window=(hours(3.5), hours(4.5)),
            client_pool=5,
            notes="Born after the first scan finished but inside the first 12 h.",
        ),
        CategorySpec(
            category=BehaviorCategory.POSSIBLE_FIREWALL,
            count=4,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 0.75), (PORT_SSH, 0.25)),
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.98, horizon=hours(12)),
            firewall_internal=1.0,
            client_pool=4,
            notes="Drop the campus scanner's probes while serving real clients.",
        ),
        CategorySpec(
            category=BehaviorCategory.SERVER_DEATH_PASSIVE,
            count=3,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 1.0),),
            rate=RateSpec(kind=RateKind.BURST, window_start=0.0, window_end=hours(10), mean_flows=5.0),
            firewall_internal=1.0,
            death_window=(hours(10), hours(12)),
            client_pool=3,
            notes="Firewalled from the scanner, overheard early, then gone.",
        ),
        CategorySpec(
            category=BehaviorCategory.BIRTH_MOSTLY_IDLE,
            count=7,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 1.0),),
            rate=RateSpec(kind=RateKind.BURST, window_start=hours(4), window_end=hours(12), mean_flows=4.0),
            birth_window=(hours(3.5), hours(6)),
            firewall_external=1.0,
            client_pool=2,
            notes="Born after scan 1, overheard before 12 h, idle afterwards.",
        ),
        CategorySpec(
            category=BehaviorCategory.INTERMITTENT_ACTIVE,
            count=188,
            address_classes=(("dhcp", 0.68), ("ppp", 0.28), ("vpn", 0.04)),
            primary_ports=_WEB_HEAVY,
            extra_port_prob=0.2,
            extra_ports=_EXTRAS,
            rate=RateSpec(kind=RateKind.SESSION, flows_per_hour=0.025),
            client_pool=2,
            notes="Transient hosts whose services are exercised while online.",
        ),
        CategorySpec(
            category=BehaviorCategory.BIRTH_STATIC_BOTH,
            count=125,
            address_classes=(("static", 1.0),),
            primary_ports=_WEB_HEAVY,
            extra_port_prob=0.2,
            extra_ports=_EXTRAS,
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.85, horizon=days(16)),
            birth_window=(hours(12), days(16)),
            client_pool=4,
            notes="Static servers born during the study, then found by both.",
        ),
        CategorySpec(
            category=BehaviorCategory.INTERMITTENT_IDLE,
            count=655,
            address_classes=(("dhcp", 0.68), ("vpn", 0.20), ("ppp", 0.12)),
            primary_ports=((PORT_HTTP, 0.45), (PORT_SSH, 0.35), (PORT_FTP, 0.20)),
            extra_port_prob=0.3,
            extra_ports=_EXTRAS,
            rate=RateSpec(kind=RateKind.SESSION, flows_per_hour=0.0),
            firewall_external=0.85,
            client_pool=1,
            notes=(
                "Transient and silent (includes the VPN population whose "
                "services are only ever reached via their non-VPN address): "
                "active-only discoveries."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.BIRTH_IDLE,
            count=73,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 0.40), (PORT_SSH, 0.30), (PORT_FTP, 0.20), (PORT_MYSQL, 0.10)),
            rate=RateSpec(kind=RateKind.SILENT),
            birth_window=(hours(12), days(17)),
            firewall_external=1.0,
            client_pool=1,
            notes="Born mid-study, silent, scan-proof: active-only.",
        ),
        CategorySpec(
            category=BehaviorCategory.FIREWALL_TRANSIENT,
            count=140,
            address_classes=(("ppp", 0.5), ("dhcp", 0.5)),
            primary_ports=((PORT_HTTP, 0.80), (PORT_SSH, 0.10), (PORT_FTP, 0.10)),
            rate=RateSpec(kind=RateKind.SESSION, flows_per_hour=0.05),
            firewall_internal=1.0,
            client_pool=2,
            notes=(
                "Transient hosts (laptops with personal firewalls) that "
                "drop scanner probes but talk to real peers: passive-only."
            ),
        ),
        CategorySpec(
            category=BehaviorCategory.FIREWALL_BIRTH,
            count=31,
            address_classes=(("static", 1.0),),
            primary_ports=((PORT_HTTP, 0.80), (PORT_SSH, 0.20)),
            rate=RateSpec(kind=RateKind.TAIL, p_seen=0.9, horizon=days(16)),
            birth_window=(hours(12), days(14)),
            firewall_internal=1.0,
            client_pool=3,
            notes="Stable firewalled servers surfacing later: passive-only.",
        ),
    )


#: Live hosts that run none of the selected services.  The paper infers
#: at least 6,450 live hosts among the 16,130 addresses; with 2,960
#: server addresses that leaves ~3,500 live non-servers, which supply
#: the TCP RSTs external-scan detection depends on.
@dataclass(frozen=True)
class NonServerSpec:
    """Population of live hosts without selected services."""

    static_count: int = 2500
    dhcp_count: int = 600
    ppp_count: int = 120
    wireless_count: int = 120
    vpn_count: int = 80
    #: Fraction of non-servers that silently drop probes entirely.
    silent_fraction: float = 0.12

    @property
    def total(self) -> int:
        return (
            self.static_count
            + self.dhcp_count
            + self.ppp_count
            + self.wireless_count
            + self.vpn_count
        )


def table3_expectations() -> dict[str, int]:
    """The paper's Table 3 counts (12-hour categorisation), for tests."""
    return {
        "active server address": 286,
        "idle server address": 1421,
        "firewalled address or birth": 41,
        "non-server address": 14553,
    }


def table4_expected_count(category: BehaviorCategory) -> int:
    """The paper's Table 4 count for *category* (NON_SERVER excluded)."""
    counts = {spec.category: spec.count for spec in semester_category_specs()}
    return counts[category]
