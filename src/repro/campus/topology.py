"""Campus address topology.

The paper's main datasets cover 16,130 IP addresses drawn from 38 of
the most densely populated subnets at USC, of which 2,296 belong to
transient blocks: "one /22 campus DHCP; two /23s, DHCP and wireless;
and one /24 subnet, for VPNs" (Section 4.4.2), plus PPP dial-up space.

We reproduce those counts exactly with the block table below; the
``reserved`` field carves infrastructure addresses out of each CIDR
block so the usable totals match the paper (16,130 total, 2,296
transient).  The number of distinct blocks differs slightly from the
paper's "38 subnets" because the paper aggregates; the analyses only
ever depend on the class and total size of the space, never on subnet
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable

from repro.net.addr import AddressBlock, AddressClass, AddressSpace, parse_cidr

#: The monitored campus prefix (USC's real allocation is 128.125/16; we
#: use the same prefix purely as a familiar stand-in).
CAMPUS_PREFIX = "128.125.0.0/16"

#: Totals the topology is calibrated to (paper Table 1 / Section 4.4.2).
TOTAL_ADDRESSES = 16_130
TRANSIENT_ADDRESSES = 2_296


def _transient_blocks() -> list[AddressBlock]:
    """The transient allocation, usable counts calibrated to 2,296."""
    return [
        # one /22 of campus DHCP (Residence Halls; near-static leases)
        AddressBlock("dhcp-resnet", "128.125.32.0/22", AddressClass.DHCP, reserved=4),
        # one /23 of general campus DHCP
        AddressBlock("dhcp-labs", "128.125.36.0/23", AddressClass.DHCP, reserved=6),
        # one /23 wireless (the paper could not probe this range and saw
        # no passive services there; we keep it small and quiet)
        AddressBlock("wireless", "128.125.38.0/23", AddressClass.WIRELESS, reserved=252),
        # PPP dial-up pool
        AddressBlock("ppp", "128.125.40.0/24", AddressClass.PPP, reserved=0),
        # one /24 of VPN addresses
        AddressBlock("vpn", "128.125.41.0/24", AddressClass.VPN, reserved=2),
    ]


def _static_blocks() -> list[AddressBlock]:
    """Static departmental space, usable counts calibrated to 13,834."""
    blocks: list[AddressBlock] = []
    base = parse_cidr("128.125.64.0/23")[0]
    # 26 /23 blocks of 510 usable addresses each (13,260)...
    for i in range(26):
        network = base + i * 512
        a, b, c = (network >> 16) & 0xFF, (network >> 8) & 0xFF, network & 0xFF
        blocks.append(
            AddressBlock(
                f"static-{i:02d}", f"128.{a}.{b}.{c}/23", AddressClass.STATIC, reserved=2
            )
        )
    # ...one full /23 (512) and one partial /24 (62), for 13,834 total.
    # The 26 /23 blocks above end at 128.125.116.0, so these follow them.
    blocks.append(
        AddressBlock("static-26", "128.125.116.0/23", AddressClass.STATIC, reserved=0)
    )
    blocks.append(
        AddressBlock("static-27", "128.125.118.0/24", AddressClass.STATIC, reserved=194)
    )
    return blocks


def _allports_block() -> AddressBlock:
    """The single /24 of student-lab machines used by DTCPall."""
    return AddressBlock("lab-allports", "128.125.119.0/24", AddressClass.STATIC, reserved=0)


@dataclass(frozen=True)
class CampusTopology:
    """The monitored address space, partitioned by allocation class."""

    space: AddressSpace
    campus_prefix: str = CAMPUS_PREFIX

    @property
    def total_addresses(self) -> int:
        return self.space.size

    @property
    def transient_addresses(self) -> int:
        return sum(b.size for b in self.space.blocks if b.is_transient)

    @property
    def static_addresses(self) -> int:
        return self.total_addresses - self.transient_addresses

    def block(self, name: str) -> AddressBlock:
        """Return the block with the given *name*.

        Raises
        ------
        KeyError
            If no block has that name.
        """
        for candidate in self.space.blocks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no address block named {name!r}")

    def blocks_of_class(self, address_class: AddressClass) -> list[AddressBlock]:
        return self.space.blocks_of_class(address_class)

    @cached_property
    def _prefix_network_mask(self) -> tuple[int, int]:
        """Parsed ``(network, mask)`` of the campus prefix (hot path)."""
        network, prefix = parse_cidr(self.campus_prefix)
        mask = ~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF
        return network, mask

    def contains(self, address: int) -> bool:
        """True when *address* is inside the monitored campus prefix."""
        network, mask = self._prefix_network_mask
        return (address & mask) == network

    def campus_predicate(self) -> "Callable[[int], bool]":
        """A closure form of :meth:`contains` for per-packet filters.

        Observers call the campus-membership test one to three times per
        captured record; the closure binds the network/mask as locals
        and skips the attribute walk of a bound method.
        """
        network, mask = self._prefix_network_mask

        def is_campus(address: int) -> bool:
            return (address & mask) == network

        # Columnar observers (observe_columns fast paths) read these to
        # vectorise the membership test over whole address arrays; a
        # predicate without them falls back to the scalar path.
        is_campus.campus_network = network
        is_campus.campus_mask = mask
        return is_campus


def build_topology(include_allports_subnet: bool = False) -> CampusTopology:
    """Build the calibrated campus topology.

    Parameters
    ----------
    include_allports_subnet:
        Also include the /24 lab subnet that DTCPall studies.  Kept out
        of the main 16,130 by default so the headline totals match the
        paper exactly.
    """
    blocks = _transient_blocks() + _static_blocks()
    if include_allports_subnet:
        blocks.append(_allports_block())
    return CampusTopology(space=AddressSpace(blocks))


def build_allports_topology() -> CampusTopology:
    """Topology for the DTCPall study: just the one lab /24."""
    return CampusTopology(space=AddressSpace([_allports_block()]))
