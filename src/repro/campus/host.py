"""Host state: liveness, firewalling, probe responses.

A :class:`Host` owns a set of services, a liveness pattern (static
hosts are up essentially always; transient hosts are up only during
sessions -- see :mod:`repro.campus.churn`), a :class:`FirewallPolicy`,
and a :class:`UdpPolicy` governing how it answers generic UDP probes.

The single most important method is :meth:`Host.tcp_probe_response`:
both the internal active prober and external scanners resolve their
probes through it, so active/passive asymmetries (idle servers,
firewalls, transient hosts) arise from one shared state machine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum

from repro.campus.service import Service
from repro.net.addr import AddressClass
from repro.net.packet import PROTO_TCP, PROTO_UDP


class ProbeOutcome(str, Enum):
    """What a single TCP half-open probe elicits."""

    SYNACK = "synack"      # open service
    RST = "rst"            # host up, port closed
    NOTHING = "nothing"    # host down, or firewall silently drops


class UdpProbeOutcome(str, Enum):
    """What a single generic UDP probe elicits (paper Section 4.5)."""

    REPLY = "reply"               # service answered the malformed probe
    ICMP_UNREACHABLE = "icmp"     # definitely closed
    NOTHING = "nothing"           # open-but-quiet service, firewall, or no host


class FirewallScope(str, Enum):
    """What a host's firewall protects.

    ``SERVICE`` -- only the ports that run services are dropped; probes
    to other ports get the kernel's normal RST.  This is the common
    configuration the paper's method-1 confirmation keys on ("dropping
    probes to firewalled services and sending resets from ports not
    providing services").

    ``HOST`` -- everything is dropped (a default-deny personal
    firewall); the host looks completely dark to the blocked prober.
    """

    SERVICE = "service"
    HOST = "host"


@dataclass(frozen=True)
class FirewallPolicy:
    """Which probe sources a host's firewall silently drops.

    Legitimate client connections always pass (the firewall's allow
    list covers the host's actual clients); the policy only controls
    *unsolicited* probes:

    * ``blocks_internal`` -- drops the campus security scanner's
      probes (the paper's "possible firewall" rows: passive-only
      discoveries).
    * ``blocks_external`` -- drops probes arriving from outside
      campus, i.e. external scans (keeps idle servers invisible to
      passive monitoring forever).
    """

    blocks_internal: bool = False
    blocks_external: bool = False

    #: Dataset time at which the firewall policy becomes effective;
    #: before this the host answers everything.  Models the one host in
    #: Table 4 that installed a firewall mid-study.
    effective_from: float = 0.0

    #: Whether the firewall protects only service ports or the whole host.
    scope: FirewallScope = FirewallScope.SERVICE

    def drops_probe(self, internal: bool, t: float) -> bool:
        """True when a probe from an internal/external source is dropped."""
        if t < self.effective_from:
            return False
        return self.blocks_internal if internal else self.blocks_external

    @classmethod
    def open(cls) -> "FirewallPolicy":
        return cls()


class UdpPolicy(str, Enum):
    """How a host treats UDP probes to closed ports."""

    ICMP_RESPONDER = "icmp"     # kernel emits ICMP port-unreachable (most hosts)
    SILENT_DROP = "silent"      # personal firewall drops everything


@dataclass
class Host:
    """One campus machine.

    Attributes
    ----------
    host_id:
        Stable identifier, unique within a population.
    category:
        The :class:`~repro.campus.categories.BehaviorCategory` value
        the host was synthesised from (kept for ground-truth analysis;
        the monitors never read it).
    address_class:
        Allocation class of the host's address block.
    static_address:
        The host's fixed address, for static hosts; transient hosts
        have ``None`` here and get addresses from the ledger.
    up_windows:
        Sorted, disjoint ``(start, end)`` intervals during which the
        host is powered on and connected.  For static hosts this is
        typically one interval spanning the dataset.
    services:
        The services the host runs, keyed by ``(port, proto)``.
    firewall:
        The host's :class:`FirewallPolicy`.
    udp_policy:
        ICMP responder or silent drop.
    """

    host_id: int
    category: str
    address_class: AddressClass
    static_address: int | None = None
    up_windows: list[tuple[float, float]] = field(default_factory=list)
    services: dict[tuple[int, int], Service] = field(default_factory=dict)
    firewall: FirewallPolicy = field(default_factory=FirewallPolicy)
    udp_policy: UdpPolicy = UdpPolicy.ICMP_RESPONDER
    _up_starts: list[float] = field(default_factory=list, repr=False)

    def finalize(self) -> None:
        """Validate and index the liveness windows (call after building)."""
        self.up_windows.sort()
        previous_end = -1.0
        for start, end in self.up_windows:
            if end <= start:
                raise ValueError(f"empty liveness window on host {self.host_id}")
            if start < previous_end:
                raise ValueError(
                    f"overlapping liveness windows on host {self.host_id}"
                )
            previous_end = end
        self._up_starts = [start for start, _ in self.up_windows]

    @property
    def is_transient(self) -> bool:
        return self.address_class.is_transient

    def add_service(self, service: Service) -> None:
        """Register *service* on this host (one per (port, proto))."""
        key = (service.port, service.proto)
        if key in self.services:
            raise ValueError(
                f"host {self.host_id} already runs a service on {key}"
            )
        if service.host_id != self.host_id:
            raise ValueError("service.host_id does not match host")
        self.services[key] = service

    def service_on(self, port: int, proto: int = PROTO_TCP) -> Service | None:
        """Return the service on (port, proto), or None."""
        return self.services.get((port, proto))

    def is_up(self, t: float) -> bool:
        """True when the host is powered on and connected at time *t*."""
        index = bisect.bisect_right(self._up_starts, t) - 1
        if index < 0:
            return False
        start, end = self.up_windows[index]
        return start <= t < end

    def up_windows_clipped(self, start: float, end: float) -> list[tuple[float, float]]:
        """Liveness windows intersected with ``[start, end)``."""
        out: list[tuple[float, float]] = []
        for w_start, w_end in self.up_windows:
            lo, hi = max(w_start, start), min(w_end, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    def tcp_probe_response(self, port: int, t: float, internal: bool) -> ProbeOutcome:
        """Resolve a half-open TCP probe to *port* at time *t*.

        Parameters
        ----------
        internal:
            True for the campus security scanner, False for external
            scans; firewalls may treat the two differently.
        """
        if not self.is_up(t):
            return ProbeOutcome.NOTHING
        service = self.services.get((port, PROTO_TCP))
        service_alive = service is not None and service.alive_at(t)
        if self.firewall.drops_probe(internal, t):
            if self.firewall.scope is FirewallScope.HOST:
                return ProbeOutcome.NOTHING
            # SERVICE scope: protected service ports go dark, every
            # other port still answers with the kernel's RST -- the
            # mixed-response signature of Section 4.2.4's method 1.
            if service_alive:
                return ProbeOutcome.NOTHING
            return ProbeOutcome.RST
        if service_alive:
            if not internal and service.blocks_external_probes:
                return ProbeOutcome.NOTHING
            return ProbeOutcome.SYNACK
        return ProbeOutcome.RST

    def udp_probe_response(self, port: int, t: float, internal: bool) -> UdpProbeOutcome:
        """Resolve a generic (malformed-payload) UDP probe.

        A live UDP service replies only when its implementation answers
        generic probes (``udp_generic_responder`` -- DNS and NetBIOS
        name servers typically do); otherwise it stays quiet and the
        prober can at best report "possibly open".
        """
        if not self.is_up(t):
            return UdpProbeOutcome.NOTHING
        if self.firewall.drops_probe(internal, t):
            if self.firewall.scope is FirewallScope.HOST:
                return UdpProbeOutcome.NOTHING
            blocked = self.services.get((port, PROTO_UDP))
            if blocked is not None and blocked.alive_at(t):
                return UdpProbeOutcome.NOTHING
            if self.udp_policy is UdpPolicy.ICMP_RESPONDER:
                return UdpProbeOutcome.ICMP_UNREACHABLE
            return UdpProbeOutcome.NOTHING
        service = self.services.get((port, PROTO_UDP))
        if service is not None and service.alive_at(t):
            if not internal and service.blocks_external_probes:
                return UdpProbeOutcome.NOTHING
            if not service.udp_generic_responder:
                return UdpProbeOutcome.NOTHING
            return UdpProbeOutcome.REPLY
        if self.udp_policy is UdpPolicy.ICMP_RESPONDER:
            return UdpProbeOutcome.ICMP_UNREACHABLE
        return UdpProbeOutcome.NOTHING
