"""Transient-host sessions and the address-assignment ledger.

Transient hosts (DHCP, PPP, VPN, wireless) are up only during
*sessions*; at each session start they are assigned an address from
their block's pool.  Address reuse is the mechanism behind the paper's
never-levelling-off discovery curves: every reattachment at a new
address is a new discoverable "server IP address".

Two assignment policies mirror the campus reality the paper describes:

* ``STICKY`` -- Residence-Hall DHCP, where "each student keeps the same
  IP for a full semester or more": the host keeps one address across
  all its sessions.
* ``ROTATING`` -- PPP / VPN / wireless pools: every session draws the
  least-recently-released address (classic pool behaviour), so
  addresses are reused by different hosts over time.

The :class:`AddressLedger` answers the two queries everything else
needs: who holds an address at time *t* (scan resolution) and which
address a host holds at time *t* (traffic generation).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.net.addr import AddressBlock
from repro.simkernel.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


class AssignmentPolicy(str, Enum):
    """How a block's pool hands out addresses."""

    STICKY = "sticky"
    ROTATING = "rotating"


@dataclass(frozen=True)
class SessionStyle:
    """Parameters of a transient host's session process.

    Sessions alternate with gaps; both durations are exponential with
    the given means.  ``day_start_bias`` nudges session starts that
    land at night (00:00-07:00 local) forward into the morning, which
    gives PPP hosts the daytime-heavy pattern Section 5.1 relies on.
    """

    mean_session_hours: float
    mean_gap_hours: float
    day_start_bias: bool = False

    def __post_init__(self) -> None:
        if self.mean_session_hours <= 0 or self.mean_gap_hours <= 0:
            raise ValueError("session and gap means must be positive")


#: Per-class default styles, tuned to the paper's observations:
#: PPP hosts are "typically active only for short periods of time";
#: Residence-Hall DHCP leases behave almost statically; VPN sessions
#: run long (a user working remotely for days).
SESSION_STYLES: dict[str, SessionStyle] = {
    "ppp": SessionStyle(mean_session_hours=2.5, mean_gap_hours=30.0, day_start_bias=True),
    "dhcp": SessionStyle(mean_session_hours=30.0, mean_gap_hours=40.0),
    "vpn": SessionStyle(mean_session_hours=36.0, mean_gap_hours=60.0),
    "wireless": SessionStyle(mean_session_hours=3.0, mean_gap_hours=20.0),
}


def generate_sessions(
    rng,
    style: SessionStyle,
    duration: float,
    hour_of_day_at_start: float = 10.0,
) -> list[tuple[float, float]]:
    """Generate a host's session windows over ``[0, duration)``.

    The process starts mid-gap with a random phase so hosts are not
    synchronised at dataset start.
    """
    sessions: list[tuple[float, float]] = []
    mean_gap = style.mean_gap_hours * SECONDS_PER_HOUR
    mean_session = style.mean_session_hours * SECONDS_PER_HOUR
    # Random initial phase: with probability p_on the host is already
    # online at t=0 (stationary alternating-renewal approximation).
    p_on = mean_session / (mean_session + mean_gap)
    t = 0.0
    if rng.random() < p_on:
        first_end = rng.expovariate(1.0 / mean_session)
        if first_end > 0:
            sessions.append((0.0, min(first_end, duration)))
            t = first_end
    else:
        t = rng.expovariate(1.0 / mean_gap)
    while t < duration:
        start = t
        if style.day_start_bias:
            start = _bias_to_daytime(rng, start, hour_of_day_at_start)
        length = rng.expovariate(1.0 / mean_session)
        end = start + max(length, 60.0)
        if start < duration and end > start:
            sessions.append((start, min(end, duration)))
        t = end + rng.expovariate(1.0 / mean_gap)
    # Guard against pathological zero-length or inverted windows.
    return [(s, e) for s, e in sessions if e > s]


def _bias_to_daytime(rng, start: float, hour_at_zero: float) -> float:
    """Push a session start landing between 00:00 and 07:00 into the morning."""
    hour = (hour_at_zero + start / SECONDS_PER_HOUR) % 24.0
    if hour < 7.0:
        # Delay to a uniformly chosen time between 08:00 and 12:00.
        delay_hours = (8.0 - hour) + rng.random() * 4.0
        return start + delay_hours * SECONDS_PER_HOUR
    return start


@dataclass(frozen=True, slots=True)
class Assignment:
    """One address tenure: *host_id* holds *address* during [start, end)."""

    address: int
    host_id: int
    start: float
    end: float


class AddressLedger:
    """Time-indexed address assignments for the whole campus.

    Built once at synthesis time; read-only afterwards.  Lookups are
    O(log n) in the number of tenures of the address/host involved.
    """

    def __init__(self) -> None:
        self._by_address: dict[int, list[Assignment]] = {}
        self._by_host: dict[int, list[Assignment]] = {}
        self._addr_starts: dict[int, list[float]] = {}
        self._host_starts: dict[int, list[float]] = {}
        self._finalized = False

    def record(self, address: int, host_id: int, start: float, end: float) -> None:
        """Record a tenure; tenures of one address must not overlap."""
        if self._finalized:
            raise RuntimeError("ledger is finalized")
        if end <= start:
            raise ValueError(f"empty tenure: [{start}, {end})")
        assignment = Assignment(address=address, host_id=host_id, start=start, end=end)
        self._by_address.setdefault(address, []).append(assignment)
        self._by_host.setdefault(host_id, []).append(assignment)

    def finalize(self) -> None:
        """Sort and index; verifies per-address tenures are disjoint."""
        for address, tenures in self._by_address.items():
            tenures.sort(key=lambda a: a.start)
            previous_end = -1.0
            for tenure in tenures:
                if tenure.start < previous_end:
                    raise ValueError(
                        f"overlapping tenures on address {address}: "
                        f"{tenure} begins before {previous_end}"
                    )
                previous_end = tenure.end
            self._addr_starts[address] = [t.start for t in tenures]
        for host_id, tenures in self._by_host.items():
            tenures.sort(key=lambda a: a.start)
            self._host_starts[host_id] = [t.start for t in tenures]
        self._finalized = True

    def occupant(self, address: int, t: float) -> int | None:
        """Return the host_id holding *address* at time *t*, or None."""
        tenures = self._by_address.get(address)
        if not tenures:
            return None
        index = bisect.bisect_right(self._addr_starts[address], t) - 1
        if index < 0:
            return None
        tenure = tenures[index]
        return tenure.host_id if tenure.start <= t < tenure.end else None

    def address_of(self, host_id: int, t: float) -> int | None:
        """Return the address held by *host_id* at time *t*, or None."""
        tenures = self._by_host.get(host_id)
        if not tenures:
            return None
        index = bisect.bisect_right(self._host_starts[host_id], t) - 1
        if index < 0:
            return None
        tenure = tenures[index]
        return tenure.address if tenure.start <= t < tenure.end else None

    def tenures_of_host(self, host_id: int) -> Sequence[Assignment]:
        """All tenures of *host_id*, sorted by start time."""
        return tuple(self._by_host.get(host_id, ()))

    def tenures_of_address(self, address: int) -> Sequence[Assignment]:
        """All tenures of *address*, sorted by start time."""
        return tuple(self._by_address.get(address, ()))

    def addresses_ever_used(self) -> set[int]:
        """Every address that was assigned at least once."""
        return set(self._by_address)


class BlockPool:
    """Address allocator for one transient block.

    ROTATING policy: a min-heap of (last_released, address) implements
    least-recently-released reuse; fresh addresses are preferred while
    any remain, which spreads early sessions across the block the way
    a real pool does.
    """

    def __init__(self, block: AddressBlock, policy: AssignmentPolicy) -> None:
        self.block = block
        self.policy = policy
        self._fresh = list(block.addresses())
        self._fresh.reverse()  # pop() from the low end first
        self._released: list[tuple[float, int]] = []
        self._sticky: dict[int, int] = {}

    def acquire(self, host_id: int, t: float) -> int:
        """Assign an address to *host_id* for a session starting at *t*.

        Raises
        ------
        RuntimeError
            If the pool is exhausted (more concurrent sessions than
            addresses) -- a synthesis bug worth failing loudly on.
        """
        if self.policy is AssignmentPolicy.STICKY:
            address = self._sticky.get(host_id)
            if address is None:
                address = self._take_fresh_or_reused(t)
                self._sticky[host_id] = address
            return address
        return self._take_fresh_or_reused(t)

    def release(self, address: int, t: float) -> None:
        """Return *address* to the pool at time *t* (ROTATING only)."""
        if self.policy is AssignmentPolicy.ROTATING:
            heapq.heappush(self._released, (t, address))

    def _take_fresh_or_reused(self, t: float) -> int:
        if self._fresh:
            return self._fresh.pop()
        while self._released:
            released_at, address = heapq.heappop(self._released)
            if released_at <= t:
                return address
            # The least-recently released address is still in use in
            # the future ordering sense; put it back and fail below.
            heapq.heappush(self._released, (released_at, address))
            break
        raise RuntimeError(
            f"address pool exhausted for block {self.block.name} at t={t}"
        )


def build_ledger(
    static_assignments: Iterable[tuple[int, int]],
    transient_sessions: Iterable[tuple[int, AddressBlock, AssignmentPolicy, Sequence[tuple[float, float]]]],
    duration: float,
) -> AddressLedger:
    """Build the campus :class:`AddressLedger`.

    Parameters
    ----------
    static_assignments:
        ``(address, host_id)`` pairs held for the whole dataset.
    transient_sessions:
        ``(host_id, block, policy, sessions)`` tuples; sessions are the
        host's up-windows.  Sessions across hosts in one block are
        interleaved chronologically so pool reuse is realistic.
    duration:
        Dataset duration in seconds.
    """
    ledger = AddressLedger()
    for address, host_id in static_assignments:
        ledger.record(address, host_id, 0.0, duration)

    # Group transient sessions per block, then replay each block's
    # session starts/ends in time order against its pool.
    per_block: dict[str, tuple[AddressBlock, AssignmentPolicy, list[tuple[float, float, int]]]] = {}
    for host_id, block, policy, sessions in transient_sessions:
        entry = per_block.setdefault(block.name, (block, policy, []))
        if entry[1] is not policy:
            raise ValueError(f"conflicting policies for block {block.name}")
        for start, end in sessions:
            entry[2].append((start, end, host_id))

    for block, policy, sessions in per_block.values():
        pool = BlockPool(block, policy)
        # Event replay: process acquisitions in start order, releasing
        # finished sessions first so their addresses become reusable.
        sessions.sort()
        active: list[tuple[float, int]] = []  # (end, address)
        for start, end, host_id in sessions:
            while active and active[0][0] <= start:
                finished_end, finished_address = heapq.heappop(active)
                pool.release(finished_address, finished_end)
            address = pool.acquire(host_id, start)
            capped_end = min(end, duration)
            if capped_end > start:
                ledger.record(address, host_id, start, capped_end)
                if policy is AssignmentPolicy.ROTATING:
                    heapq.heappush(active, (capped_end, address))
    ledger.finalize()
    return ledger


def sessions_overlapping(
    sessions: Sequence[tuple[float, float]], start: float, end: float
) -> list[tuple[float, float]]:
    """Return the session windows intersecting ``[start, end)``, clipped."""
    out: list[tuple[float, float]] = []
    for s, e in sessions:
        lo, hi = max(s, start), min(e, end)
        if lo < hi:
            out.append((lo, hi))
    return out


def expected_concurrency(style: SessionStyle) -> float:
    """Long-run fraction of time a host with *style* is online."""
    return style.mean_session_hours / (style.mean_session_hours + style.mean_gap_hours)


def max_day_sessions(duration: float) -> float:
    """Dataset duration expressed in days (helper for calibration docs)."""
    return duration / SECONDS_PER_DAY
