"""Web root-page content for simulated web servers.

Section 4.4.1 of the paper downloads the root page of every discovered
web server and sorts them into seven bins with 185 hand-built string
signatures.  Our substitute: every simulated HTTP service carries a
*true* content category, and :func:`render_root_page` produces an HTML
page for it containing the kind of marker strings real pages in that
category carry (Apache/IIS test pages, JetDirect status pages, Oracle
front-ends, login forms, ...).  The classifier in
:mod:`repro.webclassify` then recovers categories from page text alone,
so the Table 5 pipeline -- discover, fetch within a day, classify -- is
exercised end to end, including fetch failures ("no response") for
transient hosts that have left the network.
"""

from __future__ import annotations

from enum import Enum


class PageCategory(str, Enum):
    """True content category of a web server's root page."""

    CUSTOM = "custom"                 # unique, globally interesting content
    DEFAULT = "default"               # stock server test page
    MINIMAL = "minimal"               # fewer than 100 bytes
    CONFIG_STATUS = "config_status"   # printers, switches, UPSes, ...
    DATABASE = "database"             # database web front-ends
    RESTRICTED = "restricted"         # login-gated content


_DEFAULT_TEMPLATES = (
    # Apache family.
    "<html><head><title>Test Page for the Apache HTTP Server</title></head>"
    "<body><h1>It works!</h1><p>This page is used to test the proper "
    "operation of the Apache HTTP server after it has been installed. "
    "Seeing this instead of the website you expected?</p></body></html>",
    "<html><head><title>Apache2 Default Page: It works</title></head>"
    "<body><h1>Apache2 Default Page</h1><p>This is the default welcome "
    "page used to test the correct operation of the Apache2 server.</p>"
    "</body></html>",
    # IIS family.
    "<html><head><title>Under Construction</title></head><body>"
    "<h1>Under Construction</h1><p>The site you are trying to view does "
    "not currently have a default page. Welcome to Windows Small "
    "Business Server.</p></body></html>",
    # Generic distribution pages.
    "<html><head><title>Welcome to Fedora Core Test Page</title></head>"
    "<body><p>This page is used to test the proper operation of the "
    "Apache HTTP server after it has been installed.</p></body></html>",
)

_CONFIG_TEMPLATES = (
    "<html><head><title>HP JetDirect Printer - Device Status</title></head>"
    "<body><h1>JetDirect J4169A</h1><table><tr><td>Toner Level</td>"
    "<td>72%</td></tr><tr><td>Ready</td></tr></table></body></html>",
    "<html><head><title>Network Camera Live View</title></head><body>"
    "<h1>AXIS Video Server</h1><p>Live view - camera configuration "
    "administration</p></body></html>",
    "<html><head><title>APC UPS Network Management Card</title></head>"
    "<body><h2>UPS Status: On Line</h2><p>Battery capacity 100%</p>"
    "</body></html>",
    "<html><head><title>Switch Administration</title></head><body>"
    "<h1>Device Configuration Utility</h1><p>Port status and VLAN "
    "configuration</p></body></html>",
)

_DATABASE_TEMPLATES = (
    "<html><head><title>Oracle Application Server - Welcome</title></head>"
    "<body><h1>Oracle HTTP Server</h1><p>iSQL*Plus database front-end. "
    "Connect to your database instance.</p></body></html>",
    "<html><head><title>phpMyAdmin 2.6.4</title></head><body>"
    "<h1>Welcome to phpMyAdmin</h1><p>MySQL server administration "
    "interface. Please log in to the database.</p></body></html>",
)

_RESTRICTED_TEMPLATES = (
    "<html><head><title>Members Only - Please Log In</title></head><body>"
    "<form action='/login' method='post'><label>Username</label>"
    "<input name='user'><label>Password</label>"
    "<input type='password' name='pass'><input type='submit' "
    "value='Sign In'></form></body></html>",
    "<html><head><title>401 Authorization Required</title></head><body>"
    "<h1>Authorization Required</h1><p>This server could not verify that "
    "you are authorized to access the document requested.</p></body></html>",
)

_MINIMAL_TEMPLATES = (
    "<html><body>ok</body></html>",
    "<html></html>",
    "hello",
)

_CUSTOM_TOPICS = (
    "computational genomics reading group",
    "distributed systems seminar schedule",
    "intramural volleyball league standings",
    "photonics laboratory publications",
    "student film festival archive",
    "marine biology field notes",
    "linear algebra course materials",
    "campus bicycle cooperative",
)


def render_root_page(category: PageCategory, rng, host_id: int) -> str:
    """Return root-page HTML for a server of the given *category*.

    *rng* supplies deterministic variety; *host_id* personalises custom
    pages so no two are identical (the classifier must not be able to
    key on a single string for custom content).
    """
    if category is PageCategory.DEFAULT:
        return rng.choice(_DEFAULT_TEMPLATES)
    if category is PageCategory.CONFIG_STATUS:
        return rng.choice(_CONFIG_TEMPLATES)
    if category is PageCategory.DATABASE:
        return rng.choice(_DATABASE_TEMPLATES)
    if category is PageCategory.RESTRICTED:
        return rng.choice(_RESTRICTED_TEMPLATES)
    if category is PageCategory.MINIMAL:
        return rng.choice(_MINIMAL_TEMPLATES)
    if category is PageCategory.CUSTOM:
        topic = rng.choice(_CUSTOM_TOPICS)
        serial = rng.randrange(10_000)
        return (
            f"<html><head><title>{topic.title()}</title></head><body>"
            f"<h1>{topic.title()}</h1>"
            f"<p>Welcome to the home of the {topic} (site #{host_id}, "
            f"rev {serial}). We meet weekly; schedules, archives and "
            f"member contributions are below.</p>"
            f"<ul><li>About us</li><li>News</li><li>Archive</li></ul>"
            f"</body></html>"
        )
    raise ValueError(f"unknown page category: {category!r}")
