"""The simulated university network.

This subpackage is the substitute for the data the paper had and we do
not: 90 days of live traffic and scan results from a 16,130-address
campus.  It synthesises a *population* of hosts and services whose
behavioural mixture is calibrated to what the paper measured
(Tables 2-6), then lets dynamics -- Poisson client arrivals with
heavy-tailed popularity, diurnal cycles, transient-address churn,
births, deaths, firewalls -- produce the packet-level observables.

Modules
-------
topology    address blocks (static / DHCP / PPP / VPN / wireless)
host        host state: liveness windows, firewall policy, UDP policy
service     services with client-arrival activity models
churn       transient sessions and the address-assignment ledger
categories  the declarative behaviour-category table (paper Table 4)
webpages    root-page content for web servers (paper Table 5)
population  synthesis of the full campus from a profile
profiles    semester / winter-break / all-ports study profiles
"""

from repro.campus.categories import BehaviorCategory, CategorySpec
from repro.campus.host import FirewallPolicy, Host, UdpPolicy
from repro.campus.population import CampusPopulation, synthesize_population
from repro.campus.profiles import (
    CampusProfile,
    allports_profile,
    break_profile,
    semester_profile,
)
from repro.campus.service import ActivityPattern, Service
from repro.campus.topology import CampusTopology, build_topology
from repro.campus.webpages import PageCategory, render_root_page

__all__ = [
    "ActivityPattern",
    "BehaviorCategory",
    "CampusPopulation",
    "CampusProfile",
    "CampusTopology",
    "CategorySpec",
    "FirewallPolicy",
    "Host",
    "PageCategory",
    "Service",
    "UdpPolicy",
    "allports_profile",
    "break_profile",
    "build_topology",
    "render_root_page",
    "semester_profile",
    "synthesize_population",
]
