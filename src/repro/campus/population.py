"""Population synthesis.

Turns a :class:`~repro.campus.profiles.CampusProfile` into a concrete
:class:`CampusPopulation`: hosts with liveness windows and firewall
policies, services with realised activity rates, the address ledger,
and rendered web pages.  Everything is a pure function of
``(profile, seed, duration)``.

Three synthesisers live here:

* :func:`synthesize_population` -- the main category-table driven
  campus (semester / break profiles);
* :func:`synthesize_allports_population` -- the DTCPall lab /24 with
  services on arbitrary ports;
* :func:`attach_udp_population` -- the UDP service layer for DUDP,
  calibrated to the paper's Table 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.campus.categories import (
    BehaviorCategory,
    CategorySpec,
    NonServerSpec,
    RateKind,
    RateSpec,
)
from repro.campus.churn import (
    AddressLedger,
    AssignmentPolicy,
    SESSION_STYLES,
    build_ledger,
    generate_sessions,
)
from repro.campus.host import FirewallPolicy, FirewallScope, Host, UdpPolicy
from repro.campus.profiles import CampusProfile
from repro.campus.service import ActivityPattern, Service
from repro.campus.topology import (
    CampusTopology,
    build_allports_topology,
    build_topology,
)
from repro.campus.webpages import PageCategory, render_root_page
from repro.net.addr import AddressBlock, AddressClass
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.net.ports import (
    PORT_DNS,
    PORT_FTP,
    PORT_GAME,
    PORT_HTTP,
    PORT_MYSQL,
    PORT_NETBIOS_NS,
    PORT_SSH,
)
from repro.simkernel.clock import SECONDS_PER_HOUR, days, hours
from repro.simkernel.rng import RngStreams, weighted_choice, zipf_weights

#: Assignment policy per transient class.
_POLICIES: dict[AddressClass, AssignmentPolicy] = {
    AddressClass.DHCP: AssignmentPolicy.STICKY,
    AddressClass.PPP: AssignmentPolicy.ROTATING,
    AddressClass.VPN: AssignmentPolicy.ROTATING,
    AddressClass.WIRELESS: AssignmentPolicy.ROTATING,
}

#: Web content category mix per behaviour category; the joint
#: distribution behind the paper's Table 5 (see DESIGN.md).
_WEB_CATEGORY_MIX: dict[BehaviorCategory, tuple[tuple[PageCategory, float], ...]] = {
    BehaviorCategory.ACTIVE_POPULAR: ((PageCategory.CUSTOM, 1.0),),
    BehaviorCategory.SERVER_DEATH_BOTH: ((PageCategory.CUSTOM, 0.5), (PageCategory.DEFAULT, 0.5)),
    BehaviorCategory.FIREWALL_LATER: ((PageCategory.CUSTOM, 1.0),),
    BehaviorCategory.MOSTLY_IDLE: (
        (PageCategory.DEFAULT, 0.70),
        (PageCategory.CONFIG_STATUS, 0.22),
        (PageCategory.MINIMAL, 0.04),
        (PageCategory.CUSTOM, 0.04),
    ),
    BehaviorCategory.IDLE_INTERMITTENT: (
        (PageCategory.DEFAULT, 0.6),
        (PageCategory.CONFIG_STATUS, 0.4),
    ),
    BehaviorCategory.SEMI_IDLE: (
        (PageCategory.DEFAULT, 0.40),
        (PageCategory.CONFIG_STATUS, 0.34),
        (PageCategory.DATABASE, 0.10),
        (PageCategory.CUSTOM, 0.10),
        (PageCategory.RESTRICTED, 0.03),
        (PageCategory.MINIMAL, 0.03),
    ),
    BehaviorCategory.IDLE_HIDDEN: (
        (PageCategory.DEFAULT, 0.5),
        (PageCategory.CONFIG_STATUS, 0.5),
    ),
    BehaviorCategory.INTERMITTENT_PASSIVE: (
        (PageCategory.CUSTOM, 0.4),
        (PageCategory.DEFAULT, 0.6),
    ),
    BehaviorCategory.BIRTH_EARLY: ((PageCategory.CUSTOM, 1.0),),
    BehaviorCategory.POSSIBLE_FIREWALL: (
        (PageCategory.CUSTOM, 0.55),
        (PageCategory.CONFIG_STATUS, 0.30),
        (PageCategory.RESTRICTED, 0.15),
    ),
    BehaviorCategory.SERVER_DEATH_PASSIVE: ((PageCategory.CUSTOM, 1.0),),
    BehaviorCategory.BIRTH_MOSTLY_IDLE: ((PageCategory.DEFAULT, 1.0),),
    BehaviorCategory.INTERMITTENT_ACTIVE: (
        (PageCategory.CUSTOM, 0.30),
        (PageCategory.DEFAULT, 0.50),
        (PageCategory.CONFIG_STATUS, 0.20),
    ),
    BehaviorCategory.BIRTH_STATIC_BOTH: (
        (PageCategory.CUSTOM, 0.35),
        (PageCategory.DEFAULT, 0.45),
        (PageCategory.CONFIG_STATUS, 0.20),
    ),
    BehaviorCategory.INTERMITTENT_IDLE: (
        (PageCategory.DEFAULT, 0.55),
        (PageCategory.CONFIG_STATUS, 0.40),
        (PageCategory.MINIMAL, 0.05),
    ),
    BehaviorCategory.BIRTH_IDLE: (
        (PageCategory.DEFAULT, 0.5),
        (PageCategory.CONFIG_STATUS, 0.5),
    ),
    BehaviorCategory.FIREWALL_TRANSIENT: (
        (PageCategory.CONFIG_STATUS, 0.70),
        (PageCategory.CUSTOM, 0.12),
        (PageCategory.DEFAULT, 0.18),
    ),
    BehaviorCategory.FIREWALL_BIRTH: (
        (PageCategory.CONFIG_STATUS, 0.45),
        (PageCategory.CUSTOM, 0.40),
        (PageCategory.RESTRICTED, 0.15),
    ),
}


@dataclass
class CampusPopulation:
    """A fully synthesised campus: the simulator's ground truth.

    The monitors and probers only ever interact with it through
    :meth:`occupant_host` and the hosts' probe-response methods; the
    ground-truth accessors exist for calibration and tests.
    """

    topology: CampusTopology
    hosts: dict[int, Host]
    ledger: AddressLedger
    duration: float
    profile_name: str
    seed: int

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def occupant_host(self, address: int, t: float) -> Host | None:
        """The host holding *address* at time *t*, or None."""
        host_id = self.ledger.occupant(address, t)
        return self.hosts.get(host_id) if host_id is not None else None

    def address_of(self, host_id: int, t: float) -> int | None:
        return self.ledger.address_of(host_id, t)

    def services(self):
        """Yield every ``(host, service)`` pair in the population."""
        for host in self.hosts.values():
            for service in host.services.values():
                yield host, service

    def server_hosts(self):
        """Yield hosts that run at least one service."""
        return (h for h in self.hosts.values() if h.services)

    # ---- ground-truth accessors (tests/calibration only) -----------

    def ground_truth_endpoints(self, proto: int = PROTO_TCP) -> set[tuple[int, int]]:
        """Every (address, port) that is ever probeable or active.

        For transient hosts this enumerates every address tenure, since
        the paper counts discoveries per IP address.
        """
        endpoints: set[tuple[int, int]] = set()
        for host in self.hosts.values():
            ports = [s.port for s in host.services.values() if s.proto == proto]
            if not ports:
                continue
            for tenure in self.ledger.tenures_of_host(host.host_id):
                for port in ports:
                    endpoints.add((tenure.address, port))
        return endpoints

    def category_of_address(self, address: int) -> str | None:
        """Ground-truth behaviour category of the host that *first* held
        the address (calibration helper)."""
        tenures = self.ledger.tenures_of_address(address)
        if not tenures:
            return None
        return self.hosts[tenures[0].host_id].category


def _popularity_weights(member_count: int, rate: RateSpec) -> list[float]:
    """Popularity weights for a ZIPF category, honouring explicit shares.

    The first ``len(rate.shares)`` members take those shares verbatim;
    the rest split the residual by Zipf rank.  This reproduces the
    paper's extreme skew (a handful of servers carrying ~99 % of
    connections) that plain Zipf cannot express.
    """
    shares = list(rate.shares[:member_count])
    remaining = member_count - len(shares)
    residual = max(0.0, 1.0 - sum(shares))
    if remaining > 0:
        tail = zipf_weights(remaining, rate.exponent)
        shares.extend(residual * w for w in tail)
    elif shares:
        # Renormalise when truncation dropped part of the share vector.
        total = sum(shares)
        shares = [s / total for s in shares]
    if rate.uniform_mix > 0.0 and member_count > 0:
        mix = rate.uniform_mix
        uniform = 1.0 / member_count
        shares = [(1.0 - mix) * s + mix * uniform for s in shares]
    return shares


def _realize_rates(
    spec: CategorySpec, member_count: int, rng
) -> list[tuple[float, tuple[tuple[float, float], ...] | None, int]]:
    """Realise (base_rate, windows, client_pool) for each category member."""
    rate = spec.rate
    out: list[tuple[float, tuple[tuple[float, float], ...] | None, int]] = []
    if rate.kind is RateKind.ZIPF:
        weights = _popularity_weights(member_count, rate)
        for w in weights:
            base = rate.total_rate * w
            pool = max(3, int(spec.client_pool * w))
            out.append((base, None, pool))
        return out
    for _ in range(member_count):
        if rate.kind is RateKind.SILENT:
            out.append((0.0, None, 1))
        elif rate.kind is RateKind.BURST:
            window = (rate.window_start, rate.window_end)
            length = max(window[1] - window[0], 1.0)
            base = rate.mean_flows / length
            out.append((base, (window,), spec.client_pool))
        elif rate.kind is RateKind.TAIL:
            base = -math.log(max(1.0 - rate.p_seen, 1e-12)) / rate.horizon
            # Heavy-tailed jitter with unit mean: lognormal(-s^2/2, s).
            sigma = 1.2
            base *= math.exp(rng.gauss(-sigma * sigma / 2.0, sigma))
            out.append((base, None, spec.client_pool))
        elif rate.kind is RateKind.SESSION:
            base = rate.flows_per_hour / SECONDS_PER_HOUR
            out.append((base, None, spec.client_pool))
        else:  # pragma: no cover - exhaustive over RateKind
            raise ValueError(f"unhandled rate kind: {rate.kind}")
    return out


class _AddressAllocator:
    """Hands out static addresses and transient block slots."""

    def __init__(self, topology: CampusTopology, rng) -> None:
        self._static_pool: list[int] = []
        for block in topology.blocks_of_class(AddressClass.STATIC):
            self._static_pool.extend(block.addresses())
        rng.shuffle(self._static_pool)
        self._blocks: dict[AddressClass, list[AddressBlock]] = {
            cls: topology.blocks_of_class(cls)
            for cls in (
                AddressClass.DHCP,
                AddressClass.PPP,
                AddressClass.VPN,
                AddressClass.WIRELESS,
            )
        }

    def take_static(self) -> int:
        if not self._static_pool:
            raise RuntimeError("static address pool exhausted")
        return self._static_pool.pop()

    def block_for(self, address_class: AddressClass, rng) -> AddressBlock:
        blocks = self._blocks.get(address_class)
        if not blocks:
            raise RuntimeError(f"no blocks for class {address_class}")
        weights = [b.size for b in blocks]
        return weighted_choice(rng, blocks, weights)


def _make_service(
    spec: CategorySpec,
    host: Host,
    port: int,
    base_rate: float,
    windows: tuple[tuple[float, float], ...] | None,
    client_pool: int,
    duration: float,
    rng,
    activity_scale: float,
) -> Service:
    """Build one service for *host* under category *spec*."""
    birth = 0.0
    if spec.birth_window is not None:
        lo, hi = spec.birth_window
        birth = rng.uniform(lo, min(hi, duration))
    death = None
    if spec.death_window is not None:
        lo, hi = spec.death_window
        death = max(rng.uniform(lo, min(hi, duration)), birth + 60.0)
    blocks_external = False
    if port == PORT_MYSQL and rng.random() < spec.mysql_hides_from_external:
        blocks_external = True
    web_category = None
    web_page = None
    if port == PORT_HTTP:
        mix = _WEB_CATEGORY_MIX[spec.category]
        choice = weighted_choice(rng, [c for c, _ in mix], [w for _, w in mix])
        web_category = choice.value
        web_page = render_root_page(choice, rng, host.host_id)
    return Service(
        host_id=host.host_id,
        port=port,
        proto=PROTO_TCP,
        activity=ActivityPattern(
            base_rate=base_rate * activity_scale,
            windows=windows,
            client_pool=client_pool,
        ),
        birth=birth,
        death=death,
        blocks_external_probes=blocks_external,
        web_category=web_category,
        web_page=web_page,
    )


def synthesize_population(
    profile: CampusProfile,
    seed: int,
    duration: float,
    topology: CampusTopology | None = None,
) -> CampusPopulation:
    """Build the campus population for *profile*.

    Deterministic in ``(profile, seed, duration)``.
    """
    if topology is None:
        topology = build_topology()
    streams = RngStreams(seed)
    alloc_rng = streams.stream("population.alloc")
    allocator = _AddressAllocator(topology, alloc_rng)

    hosts: dict[int, Host] = {}
    static_assignments: list[tuple[int, int]] = []
    transient_sessions: list = []
    next_host_id = 0

    def new_host(category: str, address_class: AddressClass) -> Host:
        nonlocal next_host_id
        host = Host(host_id=next_host_id, category=category, address_class=address_class)
        next_host_id += 1
        hosts[host.host_id] = host
        return host

    def place_host(host: Host, rng) -> None:
        """Give the host an address (static) or sessions (transient)."""
        if host.address_class is AddressClass.STATIC:
            host.static_address = allocator.take_static()
            host.up_windows = [(0.0, duration)]
            static_assignments.append((host.static_address, host.host_id))
        else:
            style = SESSION_STYLES[host.address_class.value]
            sessions = generate_sessions(rng, style, duration)
            if not sessions:
                # Ensure every synthesised host exists on the network at
                # least once, else it could never match its category.
                start = rng.uniform(0.0, max(duration - hours(2), 1.0))
                sessions = [(start, min(start + hours(2), duration))]
            host.up_windows = list(sessions)
            block = allocator.block_for(host.address_class, rng)
            policy = _POLICIES[host.address_class]
            transient_sessions.append((host.host_id, block, policy, sessions))
        host.finalize()

    # ---- server hosts, one category at a time ----------------------
    for spec in profile.category_specs:
        category_rng = streams.stream(f"population.category.{spec.category.value}")
        rates = _realize_rates(spec, spec.count, category_rng)
        class_names = [cls for cls, _ in spec.address_classes]
        class_weights = [w for _, w in spec.address_classes]
        for base_rate, windows, client_pool in rates:
            address_class = AddressClass(
                weighted_choice(category_rng, class_names, class_weights)
            )
            host = new_host(spec.category.value, address_class)
            blocks_internal = category_rng.random() < spec.firewall_internal
            blocks_external = category_rng.random() < spec.firewall_external
            # Most firewalls protect specific service ports and let the
            # kernel RST the rest (the paper confirms 32 of 35 suspects
            # via that mixed-response signature); a minority are
            # default-deny host firewalls that stay entirely dark.
            scope = (
                FirewallScope.HOST
                if category_rng.random() < 0.1
                else FirewallScope.SERVICE
            )
            host.firewall = FirewallPolicy(
                blocks_internal=blocks_internal,
                blocks_external=blocks_external,
                effective_from=spec.firewall_effective_from,
                scope=scope,
            )
            place_host(host, category_rng)

            primary = weighted_choice(
                category_rng,
                [p for p, _ in spec.primary_ports],
                [w for _, w in spec.primary_ports],
            )
            host.add_service(
                _make_service(
                    spec, host, primary, base_rate, windows, client_pool,
                    duration, category_rng, profile.activity_scale,
                )
            )
            if spec.extra_ports and category_rng.random() < spec.extra_port_prob:
                extra = weighted_choice(
                    category_rng,
                    [p for p, _ in spec.extra_ports],
                    [w for _, w in spec.extra_ports],
                )
                if extra != primary:
                    # Extra services share the host's fate but are
                    # quieter than the primary.
                    host.add_service(
                        _make_service(
                            spec, host, extra, base_rate * 0.3, windows,
                            max(1, client_pool // 2), duration, category_rng,
                            profile.activity_scale,
                        )
                    )

    # ---- live non-server hosts --------------------------------------
    ns = profile.non_server
    ns_rng = streams.stream("population.nonserver")
    for address_class, count in (
        (AddressClass.STATIC, ns.static_count),
        (AddressClass.DHCP, ns.dhcp_count),
        (AddressClass.PPP, ns.ppp_count),
        (AddressClass.WIRELESS, ns.wireless_count),
        (AddressClass.VPN, ns.vpn_count),
    ):
        for _ in range(count):
            host = new_host(BehaviorCategory.NON_SERVER.value, address_class)
            silent = ns_rng.random() < ns.silent_fraction
            host.firewall = FirewallPolicy(
                blocks_internal=silent,
                blocks_external=silent,
                scope=FirewallScope.HOST,
            )
            host.udp_policy = (
                UdpPolicy.SILENT_DROP if silent else UdpPolicy.ICMP_RESPONDER
            )
            place_host(host, ns_rng)

    ledger = build_ledger(static_assignments, transient_sessions, duration)
    return CampusPopulation(
        topology=topology,
        hosts=hosts,
        ledger=ledger,
        duration=duration,
        profile_name=profile.name,
        seed=seed,
    )


# ---------------------------------------------------------------------
# DTCPall: the lab /24 with services on arbitrary ports.
# ---------------------------------------------------------------------

#: (port, host_count, rate_kind, pool) rows for the lab subnet; counts
#: follow Figure 11's service bands.  ``pool`` selects which half of
#: the lab runs the service: the paper's passive/active split (131
#: passive of ~250 union) only works if the Unix machines (whose sshd
#: and ftpd external scans unveil) and the Windows machines (whose
#: NT services never attract wide-area traffic) are largely distinct
#: host populations.
_ALLPORTS_ROWS: tuple[tuple[int, int, str, str], ...] = (
    (22, 118, "quiet", "unix"),      # sshd on the Unix lab machines
    (21, 15, "quiet", "unix"),       # legacy FTP
    (25, 6, "tail", "unix"),         # SMTP relays
    (111, 40, "local", "unix"),      # Sun RPC
    (6000, 30, "local", "unix"),     # X11
    (7100, 25, "local", "unix"),     # X fonts
    (9, 4, "quiet", "unix"),         # discard
    (13, 4, "quiet", "unix"),        # daytime
    (37, 3, "quiet", "unix"),        # time
    (3306, 5, "local", "unix"),      # lab MySQL
    (135, 115, "local", "windows"),  # Microsoft epmap
    (139, 112, "local", "windows"),  # NetBIOS session
    (445, 108, "local", "windows"),  # microsoft-ds
)

#: Ephemeral/high ports that appear passively only (P2P and the like).
_ALLPORTS_EPHEMERAL: tuple[int, ...] = (6881, 28960, 41170, 51413, 32459, 58291)


def synthesize_allports_population(seed: int, duration: float) -> CampusPopulation:
    """Build the DTCPall population: one /24 of homogeneous lab machines.

    Characteristics the paper reports and this synthesis encodes:

    * ~250 live hosts, one of which serves 97 % of inbound connections;
    * sshd everywhere, found passively only thanks to an external scan;
    * a large band of Windows/NT and X11 services that never attract
      wide-area traffic ("local" services -- active-only discoveries);
    * six web servers born *after* the single active scan (passive-only);
    * a few ephemeral high ports visible passively only.
    """
    topology = build_allports_topology()
    streams = RngStreams(seed)
    rng = streams.stream("allports.synthesis")
    block = topology.block("lab-allports")

    live_count = 250
    addresses = list(block.addresses())[:live_count]
    hosts: dict[int, Host] = {}
    static_assignments: list[tuple[int, int]] = []
    for index, address in enumerate(addresses):
        host = Host(
            host_id=index,
            category="lab",
            address_class=AddressClass.STATIC,
            static_address=address,
            up_windows=[(0.0, duration)],
        )
        host.finalize()
        hosts[index] = host
        static_assignments.append((address, index))

    def add(host: Host, port: int, rate: float, windows=None, pool: int = 2,
            birth: float = 0.0, category: str | None = None) -> None:
        page = None
        if port == PORT_HTTP:
            page_category = PageCategory(category) if category else PageCategory.CUSTOM
            category = page_category.value
            page = render_root_page(page_category, rng, host.host_id)
        host.add_service(
            Service(
                host_id=host.host_id,
                port=port,
                activity=ActivityPattern(base_rate=rate, windows=windows, client_pool=pool),
                birth=birth,
                web_category=category,
                web_page=page,
            )
        )

    host_ids = list(hosts)
    # The dominant server: 97 % of the subnet's inbound connections.
    dominant = hosts[host_ids[0]]
    add(dominant, PORT_HTTP, rate=0.05, pool=600, category="custom")
    helper = hosts[host_ids[1]]
    add(helper, PORT_HTTP, rate=0.05 * 0.02, pool=20, category="custom")

    # Six web servers born after the active scan completes (~24 h).
    for host_id in host_ids[2:8]:
        birth = rng.uniform(hours(26), duration * 0.6)
        add(hosts[host_id], PORT_HTTP, rate=1.0 / days(2), pool=3,
            birth=birth, category="default")

    # Split the lab: the first half are Unix workstations, the second
    # half Windows machines (minus the web hosts set up above).
    midpoint = len(host_ids) // 2
    pools = {
        "unix": host_ids[8:midpoint],
        "windows": host_ids[midpoint:],
    }
    for port, count, kind, pool_name in _ALLPORTS_ROWS:
        members = pools[pool_name][:]
        rng.shuffle(members)
        chosen = [
            h for h in members if (port, PROTO_TCP) not in hosts[h].services
        ]
        for host_id in chosen[:count]:
            if kind == "tail":
                rate, pool = 1.0 / days(4), 3
            else:  # quiet / local: no wide-area clients
                rate, pool = 0.0, 1
            add(hosts[host_id], port, rate=rate, pool=pool)

    # Ephemeral high ports: brief passive-only activity bursts.
    for port in _ALLPORTS_EPHEMERAL:
        host_id = rng.choice(host_ids[8:])
        if (port, PROTO_TCP) in hosts[host_id].services:
            continue
        start = rng.uniform(0.0, duration * 0.8)
        window = (start, min(start + hours(6), duration))
        host = hosts[host_id]
        host.firewall = FirewallPolicy(
            blocks_internal=True, scope=FirewallScope.HOST
        )
        add(host, port, rate=4.0 / hours(6), windows=(window,), pool=4)

    ledger = build_ledger(static_assignments, [], duration)
    return CampusPopulation(
        topology=topology,
        hosts=hosts,
        ledger=ledger,
        duration=duration,
        profile_name="allports",
        seed=seed,
    )


# ---------------------------------------------------------------------
# DUDP: the UDP service layer, calibrated to Table 7.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class UdpLayerSpec:
    """Counts for the UDP population (paper Table 7).

    ``responders`` answer a generic probe with a UDP reply;
    ``silent_open`` have the port open but ignore malformed probes
    (reported "possibly open"); ``chatty`` is the subset of responders
    plus silent-open hosts that emit real traffic during the day
    (discovered passively).
    """

    port: int
    responders: int
    silent_open: int
    chatty: int


#: Default UDP layer, matching Table 7's per-port rows.
UDP_LAYER_SPECS: tuple[UdpLayerSpec, ...] = (
    UdpLayerSpec(port=PORT_HTTP, responders=0, silent_open=137, chatty=0),
    UdpLayerSpec(port=PORT_DNS, responders=52, silent_open=376, chatty=32),
    UdpLayerSpec(port=PORT_NETBIOS_NS, responders=64, silent_open=4238, chatty=4),
    UdpLayerSpec(port=PORT_GAME, responders=0, silent_open=111, chatty=1),
)


def attach_udp_population(
    population: CampusPopulation,
    seed: int,
    specs: tuple[UdpLayerSpec, ...] = UDP_LAYER_SPECS,
    scale: float = 1.0,
) -> None:
    """Attach UDP services to an existing population (in place).

    Services are spread over live hosts; chatty ones get a small
    activity rate so 24 hours of passive monitoring hears them.  With
    ``scale`` below 1.0 the counts shrink proportionally (tests).
    """
    streams = RngStreams(seed)
    rng = streams.stream("udp.attach")
    candidates = [
        h for h in population.hosts.values()
        if h.address_class is not AddressClass.WIRELESS
    ]
    rng.shuffle(candidates)
    for spec in specs:
        responders = max(0, int(round(spec.responders * scale)))
        silent_open = max(0, int(round(spec.silent_open * scale)))
        chatty = min(max(0, int(round(spec.chatty * scale))), responders + silent_open)
        pool = [
            h for h in candidates if (spec.port, PROTO_UDP) not in h.services
        ]
        chosen = pool[: responders + silent_open]
        if len(chosen) < responders + silent_open:
            raise RuntimeError(
                f"not enough hosts for UDP port {spec.port}: "
                f"need {responders + silent_open}, have {len(chosen)}"
            )
        for index, host in enumerate(chosen):
            is_responder = index < responders
            # Chatty services are drawn preferentially from responders.
            is_chatty = index < chatty
            rate = (6.0 / days(1)) if is_chatty else 0.0
            host.add_service(
                Service(
                    host_id=host.host_id,
                    port=spec.port,
                    proto=PROTO_UDP,
                    activity=ActivityPattern(
                        base_rate=rate,
                        client_pool=3 if is_chatty else 1,
                    ),
                    udp_generic_responder=is_responder,
                )
            )
        rng.shuffle(candidates)
