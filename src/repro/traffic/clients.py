"""Legitimate client traffic to campus services.

Each non-silent service runs an inhomogeneous Poisson arrival process
(its :class:`~repro.campus.service.ActivityPattern` rate, modulated by
the campus diurnal profile) gated by the owning host's liveness windows
and the service's lifetime.  Each arrival picks a client from the
service's deterministic client pool with a Zipf preference, so the
paper's *client-weighted* and *flow-weighted* completeness metrics both
have meaningful ground truth.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.campus.host import Host
from repro.campus.population import CampusPopulation
from repro.campus.service import Service
from repro.net.flow import FlowKey, FlowRecord
from repro.simkernel.rng import RngStreams, zipf_weights
from repro.simkernel.schedule import DiurnalProfile, thinned_poisson_times
from repro.traffic.links import is_academic_client, link_for_client

#: External client addresses are drawn from this base prefix upward;
#: far away from the campus 128.125/16.
_CLIENT_BASE = 0x10_00_00_00  # 16.0.0.0


class ClientDirectory:
    """Deterministic client pools per service.

    The pool for a service is a pure function of (master seed, host id,
    port), so the same clients return across regenerations of the same
    dataset -- unique-client counting stays meaningful.
    """

    def __init__(self, streams: RngStreams, academic_fraction: float = 0.0) -> None:
        self._streams = streams
        self._academic_fraction = academic_fraction
        self._pools: dict[tuple[int, int, int], list[tuple[int, str]]] = {}

    def pool_for(self, service: Service) -> list[tuple[int, str]]:
        """Return the service's ``(client_address, link)`` pool."""
        key = (service.host_id, service.port, service.proto)
        pool = self._pools.get(key)
        if pool is None:
            rng = self._streams.stream(
                f"clients.{service.host_id}.{service.port}.{service.proto}"
            )
            pool = []
            for _ in range(service.activity.client_pool):
                address = _CLIENT_BASE + rng.getrandbits(27)
                academic = is_academic_client(address, self._academic_fraction)
                pool.append((address, link_for_client(address, academic)))
            self._pools[key] = pool
        return pool


def _intersect(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Intersect two sorted disjoint window lists."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def service_flow_stream(
    host: Host,
    service: Service,
    directory: ClientDirectory,
    streams: RngStreams,
    diurnal: DiurnalProfile | None,
    start: float,
    end: float,
) -> Iterator[FlowRecord]:
    """Yield this service's client flows in ``[start, end)``, time-ordered."""
    activity = service.activity
    if activity.is_silent:
        return
    windows = _intersect(
        activity.active_windows(start, end),
        _intersect(host.up_windows_clipped(start, end), service.lifetime_windows(start, end)),
    )
    if not windows:
        return
    rng = streams.stream(
        f"flows.{service.host_id}.{service.port}.{service.proto}"
    )
    pool = directory.pool_for(service)
    # Flat-ish preference: popular services should exhibit most of
    # their client pool over the study (the client-weighted metric
    # counts *observed* unique clients).
    pool_weights = zipf_weights(len(pool), exponent=0.3)
    # Precompute cumulative weights once; arrivals sample by inverse CDF.
    cumulative: list[float] = []
    total = 0.0
    for w in pool_weights:
        total += w
        cumulative.append(total)
    key = FlowKey(server=0, port=service.port, proto=service.proto)  # addr set per flow
    for w_start, w_end in windows:
        for t in thinned_poisson_times(rng, activity.base_rate, w_start, w_end, diurnal):
            point = rng.random()
            index = _bisect(cumulative, point)
            client, link = pool[index]
            yield FlowRecord(
                time=t,
                client=client,
                key=key,  # placeholder; server address resolved by caller
                client_port=1024 + rng.getrandbits(14),
                accepted=True,
                rtt=0.02 + rng.random() * 0.08,
                link=link,
            )


def _bisect(cumulative: list[float], point: float) -> int:
    import bisect

    index = bisect.bisect_left(cumulative, point * cumulative[-1])
    return min(index, len(cumulative) - 1)


def client_flow_stream(
    population: CampusPopulation,
    streams: RngStreams,
    diurnal: DiurnalProfile | None,
    start: float,
    end: float,
    academic_fraction: float = 0.0,
) -> Iterator[FlowRecord]:
    """Merged, time-ordered stream of all legitimate client flows.

    Server addresses are resolved against the address ledger at flow
    time, so a transient host's flows land on whatever address it
    holds during each session.  Flows from moments where the host holds
    no address (shouldn't happen, as activity is gated on liveness) are
    dropped defensively.
    """
    directory = ClientDirectory(streams, academic_fraction)

    def resolved(host: Host, service: Service) -> Iterator[FlowRecord]:
        for flow in service_flow_stream(
            host, service, directory, streams, diurnal, start, end
        ):
            if host.static_address is not None:
                address = host.static_address
            else:
                address = population.ledger.address_of(host.host_id, flow.time)
                if address is None:
                    continue
            yield FlowRecord(
                time=flow.time,
                client=flow.client,
                key=FlowKey(server=address, port=flow.key.port, proto=flow.key.proto),
                client_port=flow.client_port,
                accepted=flow.accepted,
                rtt=flow.rtt,
                link=flow.link,
            )

    sources = [
        resolved(host, service) for host, service in population.services()
    ]
    return heapq.merge(*sources, key=lambda flow: flow.time)
