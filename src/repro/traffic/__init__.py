"""Workload generators.

Turns a :class:`~repro.campus.population.CampusPopulation` into the
border packet stream a passive monitor would capture:

* :mod:`repro.traffic.clients` -- legitimate client flows to campus
  services (heavy-tailed popularity, diurnal modulation, per-client
  peering-link routing);
* :mod:`repro.traffic.scans` -- external scanners sweeping the campus
  address space (the paper's unexpected ally of passive monitoring);
* :mod:`repro.traffic.noise` -- campus-as-client outbound traffic, which
  carries no service evidence but exercises the monitor's direction
  filtering;
* :mod:`repro.traffic.generator` -- composition of all sources into one
  approximately time-ordered packet stream.

The stream is *approximately* time-ordered (flows are emitted in start
order; a flow's response trails its request by one RTT).  Every
consumer in :mod:`repro.passive` is order-insensitive by design, so
this costs nothing and avoids a global sort of millions of records.
"""

from repro.traffic.clients import ClientDirectory, client_flow_stream
from repro.traffic.generator import TrafficMix, border_packet_stream
from repro.traffic.noise import outbound_noise_stream
from repro.traffic.scans import ScanPlan, ScanSweep, build_scan_plan, scan_packet_stream

__all__ = [
    "ClientDirectory",
    "ScanPlan",
    "ScanSweep",
    "TrafficMix",
    "border_packet_stream",
    "build_scan_plan",
    "client_flow_stream",
    "outbound_noise_stream",
    "scan_packet_stream",
]
