"""Peering links and client routing.

The university reaches the Internet through three peerings: two
commercial links and Internet2 (paper Section 5.2).  Routing here is
source-based: every external address deterministically uses one link.
Academic clients ride Internet2; everyone else splits across the two
commercial links with a mild asymmetry (commercial-1 carries more
traffic, which is why it sees more exclusive servers in Table 8).
"""

from __future__ import annotations

import hashlib

LINK_COMMERCIAL1 = "commercial1"
LINK_COMMERCIAL2 = "commercial2"
LINK_INTERNET2 = "internet2"

ALL_LINKS = (LINK_COMMERCIAL1, LINK_COMMERCIAL2, LINK_INTERNET2)

#: Share of *commercial* clients using commercial-1.
COMMERCIAL1_SHARE = 0.62


def _stable_unit(address: int, salt: str) -> float:
    """Deterministic uniform(0,1) from an address (stable across runs)."""
    digest = hashlib.sha256(f"{salt}:{address}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def link_for_client(address: int, academic: bool) -> str:
    """Return the peering link traffic from *address* crosses."""
    if academic:
        return LINK_INTERNET2
    if _stable_unit(address, "link") < COMMERCIAL1_SHARE:
        return LINK_COMMERCIAL1
    return LINK_COMMERCIAL2


def is_academic_client(address: int, academic_fraction: float) -> bool:
    """Deterministically decide whether a client is an Internet2 peer."""
    return _stable_unit(address, "academic") < academic_fraction


def link_for_scanner(address: int) -> str:
    """Scanners come in over the commercial links (Internet2's
    acceptable-use policy keeps sweeps off it)."""
    if _stable_unit(address, "scanner-link") < 0.75:
        return LINK_COMMERCIAL1
    return LINK_COMMERCIAL2
