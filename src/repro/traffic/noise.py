"""Campus-as-client outbound traffic.

Campus hosts also *originate* connections to the outside world.  None
of that traffic is evidence of a campus service -- the SYN leaves
campus and the SYN-ACK arrives from an external server -- but it
crosses the same taps, so the passive monitor's direction filtering
has to discard it.  This generator produces a modest stream of such
flows purely to keep that code path honest.
"""

from __future__ import annotations

from typing import Iterator

from repro.campus.population import CampusPopulation
from repro.net.addr import AddressClass
from repro.net.packet import PacketRecord, tcp_syn, tcp_synack
from repro.net.ports import PORT_HTTP, PORT_HTTPS
from repro.simkernel.clock import SECONDS_PER_DAY
from repro.simkernel.rng import RngStreams
from repro.traffic.links import link_for_client

#: External web servers campus users browse.
_EXTERNAL_WEB_BASE = 0x08_00_00_00  # 8.0.0.0


def outbound_noise_stream(
    population: CampusPopulation,
    streams: RngStreams,
    flows_per_day: float,
    start: float,
    end: float,
) -> Iterator[PacketRecord]:
    """Yield outbound browse flows (SYN out, SYN-ACK back in).

    Sources are live campus hosts (static hosts, for simplicity: they
    are always attached).  A homogeneous Poisson process is plenty --
    this stream only needs to *exist*, not be realistic in volume.
    """
    if flows_per_day <= 0 or end <= start:
        return
    rng = streams.stream("noise.outbound")
    static_hosts = [
        h for h in population.hosts.values()
        if h.address_class is AddressClass.STATIC and h.static_address is not None
    ]
    if not static_hosts:
        return
    rate = flows_per_day / SECONDS_PER_DAY
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return
        host = rng.choice(static_hosts)
        external = _EXTERNAL_WEB_BASE + rng.getrandbits(26)
        port = PORT_HTTP if rng.random() < 0.7 else PORT_HTTPS
        sport = 1024 + rng.getrandbits(14)
        link = link_for_client(external, academic=False)
        yield tcp_syn(t, host.static_address, external, sport, port, link)
        yield tcp_synack(t + 0.05, external, host.static_address, port, sport, link)
