"""External scanners.

"Perhaps ironically, external, possibly malicious scans of our network
provide great assistance in rapidly detecting services" (paper,
Section 4.3).  This module generates those scans: sweeps of the campus
address space from single external sources, each probing one TCP port
over a contiguous period.  Every probe is resolved against the shared
host state machine, producing the SYN / SYN-ACK / RST border packets
passive monitoring feeds on -- and the >=100-RST signature the paper's
scan-removal heuristic keys on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.campus.host import ProbeOutcome
from repro.campus.population import CampusPopulation
from repro.campus.profiles import ScanClimate
from repro.net.packet import PacketRecord, tcp_rst, tcp_syn, tcp_synack
from repro.simkernel.clock import SECONDS_PER_DAY
from repro.simkernel.rng import RngStreams, weighted_choice
from repro.traffic.links import link_for_scanner

#: External scanner addresses are drawn from this base upward (distinct
#: from the legitimate-client range so tests can tell them apart).
_SCANNER_BASE = 0xC6_00_00_00  # 198.0.0.0


@dataclass(frozen=True)
class ScanSweep:
    """One external scan: a single source sweeping one port.

    Attributes
    ----------
    scanner:
        Source address of the sweep.
    port:
        TCP port probed.
    start:
        Sweep start time (dataset seconds).
    rate:
        Probe rate in addresses per second.
    coverage:
        Fraction of the campus address space probed (1.0 = full sweep).
    link:
        Peering link the scanner's packets cross.
    """

    scanner: int
    port: int
    start: float
    rate: float
    coverage: float
    link: str

    def duration(self, space_size: int) -> float:
        """Sweep duration in seconds for a space of *space_size* addresses."""
        probes = max(1, int(space_size * self.coverage))
        return probes / self.rate


@dataclass(frozen=True)
class ScanPlan:
    """All external sweeps of one dataset, time-ordered."""

    sweeps: tuple[ScanSweep, ...]

    def __len__(self) -> int:
        return len(self.sweeps)

    def scanner_addresses(self) -> set[int]:
        return {sweep.scanner for sweep in self.sweeps}


def build_scan_plan(
    climate: ScanClimate,
    streams: RngStreams,
    duration: float,
) -> ScanPlan:
    """Realise a :class:`ScanPlan` from a profile's scan climate.

    Major sweeps land at their configured day offsets; minor scans
    arrive as a Poisson process over the whole dataset.  Scanner
    addresses are drawn from a pool of ``climate.scanner_ip_count``
    sources; one source may scan repeatedly (as real scanners do).
    """
    rng = streams.stream("scans.plan")
    pool = [
        _SCANNER_BASE + rng.getrandbits(24)
        for _ in range(max(1, climate.scanner_ip_count))
    ]
    sweeps: list[ScanSweep] = []
    for day_offset, port, coverage in climate.major_sweeps:
        start = day_offset * SECONDS_PER_DAY
        if start >= duration:
            continue
        scanner = rng.choice(pool)
        sweeps.append(
            ScanSweep(
                scanner=scanner,
                port=port,
                start=start,
                rate=rng.uniform(40.0, 120.0),
                coverage=coverage,
                link=link_for_scanner(scanner),
            )
        )
    expected_minor = climate.minor_scans_per_day * duration / SECONDS_PER_DAY
    minor_count = _poisson(rng, expected_minor)
    ports = [p for p, _ in climate.minor_port_weights]
    weights = [w for _, w in climate.minor_port_weights]
    lo, hi = climate.minor_coverage
    for _ in range(minor_count):
        scanner = rng.choice(pool)
        sweeps.append(
            ScanSweep(
                scanner=scanner,
                port=weighted_choice(rng, ports, weights),
                start=rng.uniform(0.0, duration),
                rate=rng.uniform(20.0, 200.0),
                coverage=rng.uniform(lo, hi),
                link=link_for_scanner(scanner),
            )
        )
    sweeps.sort(key=lambda sweep: sweep.start)
    return ScanPlan(sweeps=tuple(sweeps))


def _poisson(rng, mean: float) -> int:
    """Small-mean Poisson sampler (inversion; mean is tens at most)."""
    if mean <= 0:
        return 0
    import math

    limit = math.exp(-mean)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def sweep_packet_stream(
    population: CampusPopulation,
    sweep: ScanSweep,
    streams: RngStreams,
    end: float,
) -> Iterator[PacketRecord]:
    """Yield the border packets of one sweep, time-ordered.

    The scanner walks a deterministic sample of the campus space in
    address order at ``sweep.rate``.  Responses are resolved against
    the occupant host at probe time with ``internal=False`` -- the
    paths that keep firewalled and hidden services dark to outsiders.
    """
    rng = streams.stream(f"scans.sweep.{sweep.scanner}.{sweep.start:.0f}")
    addresses = list(population.topology.space.addresses())
    if sweep.coverage < 1.0:
        sample_size = max(1, int(len(addresses) * sweep.coverage))
        addresses = sorted(rng.sample(addresses, sample_size))
    interval = 1.0 / sweep.rate
    sport = 30000 + rng.getrandbits(12)
    t = sweep.start
    for address in addresses:
        if t >= end:
            return
        yield tcp_syn(t, sweep.scanner, address, sport, sweep.port, sweep.link)
        host = population.occupant_host(address, t)
        if host is not None:
            outcome = host.tcp_probe_response(sweep.port, t, internal=False)
            if outcome is ProbeOutcome.SYNACK:
                yield tcp_synack(
                    t + 0.03, address, sweep.scanner, sweep.port, sport, sweep.link
                )
            elif outcome is ProbeOutcome.RST:
                yield tcp_rst(
                    t + 0.03, address, sweep.scanner, sweep.port, sport, sweep.link
                )
        t += interval


def scan_packet_stream(
    population: CampusPopulation,
    plan: ScanPlan,
    streams: RngStreams,
    end: float,
) -> Iterator[PacketRecord]:
    """Merged stream of all sweeps' packets."""
    sources = [
        sweep_packet_stream(population, sweep, streams, end) for sweep in plan.sweeps
    ]
    return heapq.merge(*sources, key=lambda record: record.time)
