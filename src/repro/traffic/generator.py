"""Composition of all traffic sources into the border packet stream.

:func:`border_packet_stream` is what dataset builders hand to passive
observers: one pass over every packet a tap at the campus border would
capture during ``[start, end)``.  It is a generator -- nothing is
materialised -- and deterministic in ``(population, mix, seed)``, so a
dataset can be replayed as many times as the analyses need.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.campus.population import CampusPopulation
from repro.net.packet import PacketRecord
from repro.simkernel.clock import Calendar
from repro.simkernel.rng import RngStreams
from repro.simkernel.schedule import DiurnalProfile
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.traffic.clients import client_flow_stream
from repro.traffic.noise import outbound_noise_stream
from repro.traffic.scans import ScanPlan, scan_packet_stream

#: Version stamp of the generated stream.  Bump whenever a change makes
#: :func:`border_packet_stream` emit different records for the same
#: ``(population, mix, seed)`` -- it keys the record-once trace cache,
#: so stale recordings are invalidated automatically.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class TrafficMix:
    """Everything that shapes a dataset's border traffic.

    Attributes
    ----------
    scan_plan:
        The realised external scan schedule (may be empty).
    diurnal:
        Day/night modulation for client arrivals; None disables it.
    academic_fraction:
        Probability that a legitimate client routes via Internet2.
    outbound_noise_flows_per_day:
        Rate of campus-as-client browse flows.
    """

    scan_plan: ScanPlan
    diurnal: DiurnalProfile | None = None
    academic_fraction: float = 0.0
    outbound_noise_flows_per_day: float = 0.0

    @classmethod
    def quiet(cls) -> "TrafficMix":
        """A mix with no scans and no noise (unit tests)."""
        return cls(scan_plan=ScanPlan(sweeps=()))


def default_diurnal(calendar: Calendar) -> DiurnalProfile:
    """The standard campus diurnal profile used by all datasets."""
    return DiurnalProfile(calendar=calendar)


def border_packet_stream(
    population: CampusPopulation,
    mix: TrafficMix,
    seed: int,
    start: float,
    end: float,
) -> Iterator[PacketRecord]:
    """One pass over the border packet capture for ``[start, end)``.

    The three sources -- client flows (expanded to their SYN/SYN-ACK
    pairs), external scan sweeps, and outbound noise -- are merged on
    packet timestamps.  Ordering is approximate within one RTT (a
    flow's SYN-ACK is emitted with its SYN); all shipped observers are
    order-insensitive.
    """
    streams = RngStreams(seed)
    reg = _telemetry_registry()
    instrumented = reg.enabled

    def flow_packets() -> Iterator[PacketRecord]:
        flows = client_flow_stream(
            population, streams, mix.diurnal, start, end, mix.academic_fraction
        )
        if not instrumented:
            for flow in flows:
                yield from flow.packets()
            return
        # Gated wrapper: count flows and their packets, flushing once
        # when the source drains.  The records the merge sees are the
        # same objects either way.
        count = 0
        try:
            for flow in flows:
                count += 1
                yield from flow.packets()
        finally:
            reg.counter(
                "repro_traffic_flows_total",
                "Traffic flows generated, by source category.",
                category="client",
            ).inc(count)

    def counted(source: Iterator[PacketRecord], category: str) -> Iterator[PacketRecord]:
        count = 0
        try:
            for record in source:
                count += 1
                yield record
        finally:
            reg.counter(
                "repro_traffic_records_total",
                "Packet records generated, by source category.",
                category=category,
            ).inc(count)

    labelled: list[tuple[str, Iterator[PacketRecord]]] = [
        ("client", flow_packets())
    ]
    if mix.scan_plan.sweeps:
        labelled.append(
            ("scan", scan_packet_stream(population, mix.scan_plan, streams, end))
        )
    if mix.outbound_noise_flows_per_day > 0:
        labelled.append(
            (
                "noise",
                outbound_noise_stream(
                    population, streams, mix.outbound_noise_flows_per_day, start, end
                ),
            )
        )
    if instrumented:
        sources = [counted(source, category) for category, source in labelled]
    else:
        sources = [source for _, source in labelled]
    if len(sources) == 1:
        return sources[0]
    return heapq.merge(*sources, key=lambda record: record.time)


def count_packets(stream: Iterator[PacketRecord]) -> int:
    """Drain *stream* and return how many records it produced."""
    count = 0
    for _ in stream:
        count += 1
    return count
