"""Packet-header trace recording.

The paper's LANDER infrastructure stored 64-byte packet headers and the
published datasets are anonymised.  This package provides the same
pipeline for our simulated captures:

* :mod:`repro.trace.format` -- a compact binary record format with a
  streaming writer/reader and a batched chunk reader;
* :mod:`repro.trace.columnar` -- the chunked columnar layout (format
  v2): one contiguous array per field per chunk, read zero-copy via
  mmap into numpy views, plus converters between versions;
* :mod:`repro.trace.anonymize` -- deterministic, prefix-preserving
  address anonymisation (campus addresses stay campus addresses, so
  every analysis still works on anonymised traces);
* :mod:`repro.trace.cache` -- the record-once trace cache that lets a
  dataset's border traffic be generated once and replayed many times.
"""

from repro.trace.anonymize import Anonymizer
from repro.trace.cache import TraceCache, default_trace_cache
from repro.trace.columnar import (
    ColumnarTraceWriter,
    RecordColumns,
    convert_trace,
    read_trace_columns,
)
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    TraceReader,
    TraceWriter,
    read_records_chunked,
    read_trace,
    trace_is_intact,
    trace_version,
    write_trace,
)

__all__ = [
    "Anonymizer",
    "ColumnarTraceWriter",
    "RecordColumns",
    "TRACE_FORMAT_VERSION",
    "TraceCache",
    "TraceReader",
    "TraceWriter",
    "convert_trace",
    "default_trace_cache",
    "read_records_chunked",
    "read_trace",
    "read_trace_columns",
    "trace_is_intact",
    "trace_version",
    "write_trace",
]
