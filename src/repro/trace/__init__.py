"""Packet-header trace recording.

The paper's LANDER infrastructure stored 64-byte packet headers and the
published datasets are anonymised.  This package provides the same
pipeline for our simulated captures:

* :mod:`repro.trace.format` -- a compact binary record format with a
  streaming writer/reader;
* :mod:`repro.trace.anonymize` -- deterministic, prefix-preserving
  address anonymisation (campus addresses stay campus addresses, so
  every analysis still works on anonymised traces).
"""

from repro.trace.anonymize import Anonymizer
from repro.trace.format import TraceReader, TraceWriter, read_trace, write_trace

__all__ = [
    "Anonymizer",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
]
