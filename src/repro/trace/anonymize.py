"""Deterministic, prefix-preserving address anonymisation.

"Due to privacy concerns both passive and active results are anonymized
after collection, and all processing was done on anonymized traces"
(paper Section 3.3).  We reproduce the property that matters: the
anonymisation is a *bijection* that preserves campus membership, so
every analysis (direction filtering, per-address categorisation,
transience-by-block) gives identical results on anonymised data.

The mapping is a keyed 4-round Feistel permutation over the host bits
of each side (campus host bits, or the full 32 bits for external
addresses), so it needs no state table and is trivially invertible with
the key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.net.addr import parse_cidr
from repro.net.packet import PacketRecord

_ROUNDS = 4


def _round_mix(key: int, round_index: int, value: int, width: int) -> int:
    """Key-derived round function: *width* pseudo-random bits of SHA-256."""
    digest = hashlib.sha256(f"{key}:{round_index}:{value}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << width) - 1)


def _feistel(value: int, bits: int, key: int, decrypt: bool = False) -> int:
    """Keyed 4-round Feistel permutation over *bits*-wide integers.

    The permutation operates on the low ``2 * (bits // 2)`` bits with a
    classic balanced Feistel; an odd top bit, if present, is XOR'd with
    one key-derived bit (an involution), keeping the whole map a
    bijection for any width >= 1.
    """
    if bits < 1:
        return value
    half = bits // 2
    top_bit_width = bits - 2 * half
    body_mask = (1 << (2 * half)) - 1
    body = value & body_mask
    top = value >> (2 * half) if top_bit_width else 0
    if top_bit_width:
        top ^= _round_mix(key, 99, 0, 1)
    if half > 0:
        left = body >> half
        right = body & ((1 << half) - 1)
        if not decrypt:
            for round_index in range(_ROUNDS):
                left, right = right, left ^ _round_mix(key, round_index, right, half)
        else:
            for round_index in range(_ROUNDS - 1, -1, -1):
                left, right = right ^ _round_mix(key, round_index, left, half), left
        body = (left << half) | right
    return (top << (2 * half)) | body


@dataclass(frozen=True)
class Anonymizer:
    """Bijective, campus-preserving address anonymisation.

    Parameters
    ----------
    key:
        Secret key; the same key always yields the same mapping.
    campus_cidr:
        Prefix whose members must remain members after anonymisation.
    """

    key: int
    campus_cidr: str = "128.125.0.0/16"

    def _campus(self) -> tuple[int, int]:
        network, prefix = parse_cidr(self.campus_cidr)
        return network, prefix

    def anonymize_address(self, address: int) -> int:
        network, prefix = self._campus()
        host_bits = 32 - prefix
        mask = (1 << host_bits) - 1
        if (address & ~mask & 0xFFFFFFFF) == network:
            host = address & mask
            return network | _feistel(host, host_bits, self.key)
        scrambled = _feistel(address, 32, self.key ^ 0x5EED)
        if (scrambled & ~mask & 0xFFFFFFFF) == network:
            # Rare collision into the campus prefix: flip the top bit,
            # which cannot itself be campus (prefix < 32 guaranteed by
            # construction) -- keeps the mapping campus-preserving at
            # the cost of strict bijectivity outside campus, which no
            # analysis depends on.
            scrambled ^= 0x80000000
        return scrambled

    def deanonymize_campus_address(self, address: int) -> int:
        """Invert the mapping for campus addresses (key holders only)."""
        network, prefix = self._campus()
        host_bits = 32 - prefix
        mask = (1 << host_bits) - 1
        if (address & ~mask & 0xFFFFFFFF) != network:
            raise ValueError("can only deanonymise campus addresses")
        host = address & mask
        return network | _feistel(host, host_bits, self.key, decrypt=True)

    def anonymize(self, record: PacketRecord) -> PacketRecord:
        """Anonymise one packet record (ports and timing untouched,
        as in the published datasets)."""
        return PacketRecord(
            time=record.time,
            src=self.anonymize_address(record.src),
            dst=self.anonymize_address(record.dst),
            sport=record.sport,
            dport=record.dport,
            proto=record.proto,
            flags=record.flags,
            icmp=record.icmp,
            link=record.link,
        )

    def anonymize_stream(self, records):
        """Generator form of :meth:`anonymize`."""
        for record in records:
            yield self.anonymize(record)
