"""Record-once trace cache.

The paper's LANDER methodology is record-once/analyze-many: headers
were captured to disk once and every analysis ran offline over the
stored trace.  :class:`TraceCache` gives our synthetic captures the
same shape.  The first full-duration replay of a dataset spills its
border traffic through the binary trace writer into an on-disk cache;
every later replay streams the stored records back through the batched
reader instead of regenerating the traffic.

Cache entries are content-addressed by ``(dataset name, seed, scale,
generator version)`` plus the on-disk trace format version
(:data:`repro.trace.format.TRACE_FORMAT_VERSION`), so a change to the
traffic generator or the record layout invalidates old entries without
any bookkeeping -- v1 and v2 artifacts of the same trace can never
collide on one path.  Writes go to a temporary file in the
cache directory and are published with an atomic rename, so concurrent
builders (e.g. ``runner --jobs N`` workers) can race on the same key
safely -- both produce identical bytes and the last rename wins.

Environment knobs::

    REPRO_TRACE_CACHE=/path/to/dir   relocate the cache
    REPRO_TRACE_CACHE=off            disable caching entirely
                                     (also: none / disabled / 0)

The default location is ``~/.cache/repro``.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import registry as _telemetry_registry

#: Environment variable overriding the cache directory (or disabling it).
ENV_VAR = "REPRO_TRACE_CACHE"

_DISABLED_VALUES = frozenset({"off", "none", "disabled", "0"})

#: Bump when the on-disk trace layout or the cache keying changes.
CACHE_FORMAT_VERSION = 1

#: Cache entry suffix (same format as ``python -m repro record`` output).
TRACE_SUFFIX = ".rprt"

#: Cross-process hit/miss accumulator kept inside the cache directory.
STATS_FILE = "cache-stats.json"

_PERSISTED_FIELDS = ("hits", "misses", "evictions")


@dataclass
class TraceCacheStats:
    """Counters for one process's trace-cache traffic.

    ``records_replayed`` / ``replay_seconds`` accumulate over every
    :meth:`repro.datasets.builder.BuiltDataset.replay` call (cached or
    generated), so ``records_per_sec`` is the realised replay
    throughput of the process so far.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    records_replayed: int = 0
    replay_seconds: float = 0.0

    @property
    def records_per_sec(self) -> float:
        if self.replay_seconds <= 0:
            return 0.0
        return self.records_replayed / self.replay_seconds

    def note_replay(self, records: int, seconds: float) -> None:
        self.records_replayed += records
        self.replay_seconds += seconds

    def snapshot(self) -> "TraceCacheStats":
        return dataclasses.replace(self)


@dataclass
class PendingTrace:
    """An in-progress cache write: fill ``tmp_path``, then commit.

    The temporary file lives next to the final path so the rename is
    atomic (same filesystem).  ``abort`` removes the partial file; an
    uncommitted pending trace never becomes visible to readers.
    """

    tmp_path: Path
    final_path: Path

    def commit(self) -> Path:
        os.replace(self.tmp_path, self.final_path)
        return self.final_path

    def abort(self) -> None:
        try:
            self.tmp_path.unlink()
        except FileNotFoundError:
            pass


@dataclass
class TraceCache:
    """Content-addressed store of recorded border traces.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    enabled:
        When False every lookup misses and nothing is written; replay
        falls back to fresh generation (the tests' default-off mode).
    """

    root: Path = field(default_factory=lambda: Path.home() / ".cache" / "repro")
    enabled: bool = True
    stats: TraceCacheStats = field(default_factory=TraceCacheStats)
    #: Watermarks of counters already folded into ``cache-stats.json``,
    #: so repeated flushes write only deltas.
    _flushed: dict = field(default_factory=dict, repr=False)
    _atexit_registered: bool = field(default=False, repr=False)

    @classmethod
    def from_env(cls) -> "TraceCache":
        """Build a cache per the ``REPRO_TRACE_CACHE`` environment knob."""
        value = os.environ.get(ENV_VAR)
        if value is not None and value.strip().lower() in _DISABLED_VALUES:
            return cls(enabled=False)
        if value:
            return cls(root=Path(value).expanduser())
        return cls()

    def path_for(self, key: tuple, format_version: int | None = None) -> Path:
        """The cache path a key maps to (whether or not it exists).

        The digest covers the on-disk trace format version alongside
        the content key: an entry recorded in one format can never be
        served for a lookup expecting another.  *format_version*
        defaults to the version new recordings are written in.
        """
        if format_version is None:
            from repro.trace.format import TRACE_FORMAT_VERSION

            format_version = TRACE_FORMAT_VERSION
        digest = hashlib.sha256(
            repr(
                (CACHE_FORMAT_VERSION, format_version) + tuple(key)
            ).encode("utf-8")
        ).hexdigest()
        stem = str(key[0]) if key else "trace"
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in stem)
        return self.root / f"{safe}-v{format_version}-{digest[:16]}{TRACE_SUFFIX}"

    def lookup(self, key: tuple) -> Path | None:
        """Return the stored trace for *key*, counting a hit or miss.

        A damaged entry (bad header, or size not matching the record
        count the writer stamped on close) is removed and reported as a
        miss, so replay regenerates and re-records rather than feeding
        observers a partial stream.
        """
        if not self.enabled:
            return None
        self._register_flush()
        reg = _telemetry_registry()
        path = self.path_for(key)
        if path.is_file():
            from repro.trace.format import trace_is_intact

            if trace_is_intact(path):
                self.stats.hits += 1
                reg.counter(
                    "repro_cache_hits_total",
                    "Trace-cache lookups served from a stored recording.",
                ).inc()
                if reg.enabled:
                    try:
                        reg.counter(
                            "repro_cache_bytes_read_total",
                            "Bytes of stored trace handed to batched replay.",
                        ).inc(path.stat().st_size)
                    except OSError:
                        pass
                return path
            self.stats.evictions += 1
            reg.counter(
                "repro_cache_corrupt_evictions_total",
                "Damaged cache entries removed at lookup time.",
            ).inc()
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self.stats.misses += 1
        reg.counter(
            "repro_cache_misses_total",
            "Trace-cache lookups that fell back to fresh generation.",
        ).inc()
        return None

    def begin_write(self, key: tuple) -> PendingTrace:
        """Open an atomic write for *key* (write tmp, then ``commit``)."""
        final = self.path_for(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        return PendingTrace(tmp_path=tmp, final_path=final)

    def entries(self) -> list[Path]:
        """All stored traces, largest first."""
        if not self.root.is_dir():
            return []
        found = [p for p in self.root.glob(f"*{TRACE_SUFFIX}") if p.is_file()]
        return sorted(found, key=lambda p: p.stat().st_size, reverse=True)

    def clear(self) -> int:
        """Remove every stored trace; return how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        try:
            self.stats_path().unlink()
        except OSError:
            pass
        self.stats = TraceCacheStats()
        self._flushed = {}
        return removed

    # ---- persistent hit/miss counters -------------------------------

    def stats_path(self) -> Path:
        """Where the cross-process counters live (inside the cache)."""
        return self.root / STATS_FILE

    def _register_flush(self) -> None:
        if not self._atexit_registered:
            self._atexit_registered = True
            atexit.register(self.flush_persistent_stats)

    def _read_stats_file(self) -> dict:
        try:
            payload = json.loads(self.stats_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {name: 0 for name in _PERSISTED_FIELDS}
        return {
            name: int(payload.get(name, 0) or 0) for name in _PERSISTED_FIELDS
        }

    def flush_persistent_stats(self) -> None:
        """Fold this process's unflushed counters into ``cache-stats.json``.

        Best-effort by design: counters are advisory, so a read-modify-
        write race with another process may under-count, and any OSError
        is swallowed.  Only deltas since the previous flush are written,
        making the method safe to call any number of times (it also runs
        atexit once a lookup has happened).
        """
        if not self.enabled:
            return
        deltas = {
            name: getattr(self.stats, name) - self._flushed.get(name, 0)
            for name in _PERSISTED_FIELDS
        }
        if not any(deltas.values()):
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            payload = self._read_stats_file()
            for name, delta in deltas.items():
                payload[name] += delta
            tmp = self.stats_path().with_name(
                f"{STATS_FILE}.tmp.{os.getpid()}"
            )
            tmp.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.stats_path())
        except OSError:
            return
        for name in _PERSISTED_FIELDS:
            self._flushed[name] = getattr(self.stats, name)

    def persistent_stats(self) -> dict:
        """Accumulated hit/miss/eviction counts across all processes.

        The stored file plus this process's not-yet-flushed deltas, so
        ``python -m repro cache`` reflects the current process too.
        """
        payload = self._read_stats_file()
        for name in _PERSISTED_FIELDS:
            payload[name] += getattr(self.stats, name) - self._flushed.get(
                name, 0
            )
        return payload


_default: TraceCache | None = None
_default_env: str | None = None


def default_trace_cache() -> TraceCache:
    """The process-wide cache configured from the environment.

    Re-reads ``REPRO_TRACE_CACHE`` on every call so tests can repoint
    or disable the cache with ``monkeypatch.setenv``; the instance (and
    its stats) is only rebuilt when the variable actually changes.
    """
    global _default, _default_env
    value = os.environ.get(ENV_VAR)
    if _default is None or value != _default_env:
        _default = TraceCache.from_env()
        _default_env = value
    return _default


def replay_stats() -> TraceCacheStats:
    """Live counters of the default cache (mutated by replays)."""
    return default_trace_cache().stats


def replay_stats_snapshot() -> TraceCacheStats:
    """An immutable copy of the current counters (for deltas)."""
    return replay_stats().snapshot()
