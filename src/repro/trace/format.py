"""Binary trace format.

A trace file is a 16-byte header followed by fixed-width 24-byte
records.  The format stores exactly the fields the monitors consume --
the simulated analogue of the paper's 64-byte header captures.

Layout (little endian)::

    header:  magic "RPRT" | u16 version | u16 flags | u64 record count
    record:  f64 time | u32 src | u32 dst | u16 sport | u16 dport
             | u8 proto | u8 tcp flags | u8 link index | u8 icmp marker

The record count in the header is written on close; a reader tolerates
a zero count (e.g. a truncated writer) by reading to EOF.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import ICMP_PORT_UNREACHABLE, PacketRecord, TcpFlags

_MAGIC = b"RPRT"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_RECORD = struct.Struct("<dIIHHBBBB")

#: Link names are stored as one-byte indices.
_LINKS: tuple[str, ...] = ("", "commercial1", "commercial2", "internet2")
_LINK_INDEX = {name: index for index, name in enumerate(_LINKS)}

#: icmp marker values.
_ICMP_NONE = 0
_ICMP_PORT_UNREACH = 1


class TraceWriter:
    """Streaming writer of packet records.

    Use as a context manager::

        with TraceWriter.open(path) as writer:
            for record in stream:
                writer.write(record)
    """

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        self._count = 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, 0, 0))

    @classmethod
    def open(cls, path: str | Path) -> "TraceWriter":
        return cls(open(path, "wb"))

    def write(self, record: PacketRecord) -> None:
        link_index = _LINK_INDEX.get(record.link)
        if link_index is None:
            raise ValueError(f"unknown link {record.link!r}")
        icmp_marker = _ICMP_NONE
        if record.icmp is not None:
            if record.icmp != ICMP_PORT_UNREACHABLE:
                raise ValueError(f"unsupported ICMP kind: {record.icmp}")
            icmp_marker = _ICMP_PORT_UNREACH
        self._file.write(
            _RECORD.pack(
                record.time,
                record.src,
                record.dst,
                record.sport,
                record.dport,
                record.proto,
                int(record.flags),
                link_index,
                icmp_marker,
            )
        )
        self._count += 1

    def close(self) -> None:
        """Finalise the header and close the file."""
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, 0, self._count))
        self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._count


class TraceReader:
    """Streaming reader; iterates :class:`PacketRecord` values."""

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        header = self._file.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError("trace file too short for header")
        magic, version, _, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"bad trace magic: {magic!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported trace version: {version}")
        self.declared_count = count

    @classmethod
    def open(cls, path: str | Path) -> "TraceReader":
        return cls(open(path, "rb"))

    def __iter__(self) -> Iterator[PacketRecord]:
        read = self._file.read
        size = _RECORD.size
        unpack = _RECORD.unpack
        while True:
            chunk = read(size)
            if len(chunk) < size:
                if chunk:
                    raise ValueError("truncated record at end of trace")
                return
            (time, src, dst, sport, dport, proto, flags, link_index, icmp) = unpack(
                chunk
            )
            yield PacketRecord(
                time=time,
                src=src,
                dst=dst,
                sport=sport,
                dport=dport,
                proto=proto,
                flags=TcpFlags(flags),
                icmp=ICMP_PORT_UNREACHABLE if icmp == _ICMP_PORT_UNREACH else None,
                link=_LINKS[link_index],
            )

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(path: str | Path, records: Iterable[PacketRecord]) -> int:
    """Write all *records* to *path*; return the record count."""
    with TraceWriter.open(path) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def read_trace(path: str | Path) -> list[PacketRecord]:
    """Read a whole trace into memory (tests and small traces only)."""
    with TraceReader.open(path) as reader:
        return list(reader)


def trace_bytes(records: Iterable[PacketRecord]) -> bytes:
    """Serialise records to bytes in memory (round-trip tests)."""
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    for record in records:
        writer.write(record)
    # Finalise header without closing the BytesIO.
    buffer.seek(0)
    buffer.write(_HEADER.pack(_MAGIC, _VERSION, 0, writer.records_written))
    return buffer.getvalue()
