"""Binary trace format.

A trace file is a 16-byte header followed by fixed-width 24-byte
records.  The format stores exactly the fields the monitors consume --
the simulated analogue of the paper's 64-byte header captures.

Layout (little endian)::

    header:  magic "RPRT" | u16 version | u16 flags | u64 record count
    record:  f64 time | u32 src | u32 dst | u16 sport | u16 dport
             | u8 proto | u8 tcp flags | u8 link index | u8 icmp marker

The record count in the header is written on close; a reader tolerates
a zero count (e.g. a truncated writer) by reading to EOF.
"""

from __future__ import annotations

import io
import os
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import ICMP_PORT_UNREACHABLE, PacketRecord, TcpFlags

_MAGIC = b"RPRT"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_RECORD = struct.Struct("<dIIHHBBBB")

#: Format versions readers understand.  1 is the flat packed-record
#: stream this module writes; 2 is the chunked columnar layout of
#: :mod:`repro.trace.columnar`.
KNOWN_VERSIONS = (1, 2)

#: The version new recordings are written in (the trace cache keys
#: entries by this, so bumping it invalidates stale-format entries).
TRACE_FORMAT_VERSION = 2

#: Link names are stored as one-byte indices.
_LINKS: tuple[str, ...] = ("", "commercial1", "commercial2", "internet2")
_LINK_INDEX = {name: index for index, name in enumerate(_LINKS)}

#: icmp marker values.
_ICMP_NONE = 0
_ICMP_PORT_UNREACH = 1

#: Decode lookup tables for the batched reader: one-byte fields map
#: through tuples instead of calling the enum constructor per record.
_FLAG_VALUES: tuple[TcpFlags, ...] = tuple(TcpFlags(value) for value in range(256))
_ICMP_VALUES: tuple[tuple[int, int] | None, ...] = (None, ICMP_PORT_UNREACHABLE)

#: Default number of records decoded per batch by the chunked reader.
DEFAULT_BATCH_RECORDS = 8192


class TraceWriter:
    """Streaming writer of packet records.

    Use as a context manager::

        with TraceWriter.open(path) as writer:
            for record in stream:
                writer.write(record)
    """

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        self._count = 0
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, 0, 0))

    @classmethod
    def open(cls, path: str | Path) -> "TraceWriter":
        return cls(open(path, "wb"))

    def write(self, record: PacketRecord) -> None:
        link_index = _LINK_INDEX.get(record.link)
        if link_index is None:
            raise ValueError(f"unknown link {record.link!r}")
        icmp_marker = _ICMP_NONE
        if record.icmp is not None:
            if record.icmp != ICMP_PORT_UNREACHABLE:
                raise ValueError(f"unsupported ICMP kind: {record.icmp}")
            icmp_marker = _ICMP_PORT_UNREACH
        self._file.write(
            _RECORD.pack(
                record.time,
                record.src,
                record.dst,
                record.sport,
                record.dport,
                record.proto,
                int(record.flags),
                link_index,
                icmp_marker,
            )
        )
        self._count += 1

    def close(self) -> None:
        """Finalise the header and close the file."""
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, 0, self._count))
        self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._count


def read_header(fileobj: BinaryIO) -> tuple[int, int]:
    """Validate the header at the file position.

    Returns ``(version, declared record count)``; accepts every version
    in :data:`KNOWN_VERSIONS`.
    """
    header = fileobj.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise ValueError("trace file too short for header")
    magic, version, _, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise ValueError(f"bad trace magic: {magic!r}")
    if version not in KNOWN_VERSIONS:
        raise ValueError(f"unsupported trace version: {version}")
    return version, count


def _read_header(fileobj: BinaryIO) -> int:
    """Validate a *v1* header; return the record count."""
    version, count = read_header(fileobj)
    if version != _VERSION:
        raise ValueError(f"expected a v1 trace, found version {version}")
    return count


def trace_version(path: str | Path) -> int:
    """The format version of the trace file at *path*."""
    with open(path, "rb") as fileobj:
        version, _count = read_header(fileobj)
    return version


def _stream_size(fileobj: BinaryIO) -> int:
    """Total byte size of a seekable stream (position preserved)."""
    position = fileobj.tell()
    fileobj.seek(0, io.SEEK_END)
    size = fileobj.tell()
    fileobj.seek(position)
    return size


def trace_is_intact(path: str | Path) -> bool:
    """Cheap integrity probe: header valid and size matches its count.

    A writer that closed cleanly stamps the record count into the
    header, which fixes the file's exact size (for v2 together with the
    chunk structure).  A zero count with a non-empty body means the
    writer never finished.
    """
    try:
        with open(path, "rb") as fileobj:
            version, count = read_header(fileobj)
        if version != _VERSION:
            from repro.trace.columnar import columnar_is_intact

            return columnar_is_intact(path)
        size = os.stat(path).st_size
    except (OSError, ValueError):
        return False
    return size == _HEADER.size + count * _RECORD.size


class TraceReader:
    """Streaming reader; iterates :class:`PacketRecord` values.

    Reads both format versions: v1 decodes the packed record stream in
    place; v2 delegates to the columnar reader and materialises
    records batch by batch.  A zero record count in the header (a
    writer that never finalised) is repaired by computing the count
    from the file size, so downstream consumers that pre-size buffers
    or seek by record index still take their batched paths.
    """

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        self.version, declared = read_header(fileobj)
        if declared == 0 and self.version == _VERSION:
            # Truncated-writer tolerance: records are fixed width, so
            # the stream size fixes the count exactly.  A trailing
            # partial record is ignored here and raises on iteration,
            # matching the read-to-EOF behaviour.
            body = _stream_size(fileobj) - _HEADER.size
            declared = body // _RECORD.size
        self.declared_count = declared

    @classmethod
    def open(cls, path: str | Path) -> "TraceReader":
        reader = cls(open(path, "rb"))
        if reader.version != _VERSION:
            reader._path = Path(path)
            if reader.declared_count == 0:
                from repro.trace.columnar import columnar_record_count

                reader.declared_count = columnar_record_count(path)
        return reader

    _path: Path | None = None

    def _columnar_batches(
        self, batch_size: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[list[PacketRecord]]:
        if self._path is None:
            raise ValueError(
                "columnar traces must be opened by path (TraceReader.open)"
            )
        from repro.trace.columnar import read_columns_batched

        return read_columns_batched(self._path, batch_size)

    def __iter__(self) -> Iterator[PacketRecord]:
        if self.version != _VERSION:
            for batch in self._columnar_batches():
                yield from batch
            return
        read = self._file.read
        size = _RECORD.size
        unpack = _RECORD.unpack
        while True:
            chunk = read(size)
            if len(chunk) < size:
                if chunk:
                    raise ValueError("truncated record at end of trace")
                return
            (time, src, dst, sport, dport, proto, flags, link_index, icmp) = unpack(
                chunk
            )
            yield PacketRecord(
                time=time,
                src=src,
                dst=dst,
                sport=sport,
                dport=dport,
                proto=proto,
                flags=TcpFlags(flags),
                icmp=ICMP_PORT_UNREACHABLE if icmp == _ICMP_PORT_UNREACH else None,
                link=_LINKS[link_index],
            )

    def iter_batches(
        self, batch_size: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[list[PacketRecord]]:
        """Decode the remaining records in bulk, *batch_size* at a time."""
        if self.version != _VERSION:
            return self._columnar_batches(batch_size)
        return _iter_batches(self._file, batch_size)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _iter_batches(
    fileobj: BinaryIO, batch_size: int
) -> Iterator[list[PacketRecord]]:
    """Yield lists of records decoded with one bulk ``iter_unpack`` each.

    Reading whole chunks and unpacking them in one C call (instead of a
    24-byte ``read`` + ``unpack`` per record) is what makes cached-trace
    replay cheap; the record objects produced are identical to the
    streaming reader's.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    record_size = _RECORD.size
    chunk_bytes = batch_size * record_size
    iter_unpack = _RECORD.iter_unpack
    flag_values = _FLAG_VALUES
    icmp_values = _ICMP_VALUES
    links = _LINKS
    make = PacketRecord
    read = fileobj.read
    while True:
        data = read(chunk_bytes)
        if not data:
            return
        if len(data) % record_size:
            raise ValueError("truncated record at end of trace")
        yield [
            make(
                time=time,
                src=src,
                dst=dst,
                sport=sport,
                dport=dport,
                proto=proto,
                flags=flag_values[flags],
                icmp=icmp_values[icmp],
                link=links[link_index],
            )
            for (
                time, src, dst, sport, dport, proto, flags, link_index, icmp
            ) in iter_unpack(data)
        ]


def read_records_chunked(
    path: str | Path,
    batch_size: int = DEFAULT_BATCH_RECORDS,
    skip_records: int = 0,
) -> Iterator[list[PacketRecord]]:
    """Read a trace file as record batches (the replay-engine fast path).

    Equivalent to ``TraceReader`` record-for-record, but yields lists of
    *batch_size* records decoded in bulk.  The file is closed when the
    generator is exhausted or discarded.

    *skip_records* positions the reader past the first N records with a
    single seek (records are fixed width), which is how a resumed
    stream run (:mod:`repro.stream`) re-enters a cached trace at its
    checkpoint offset without decoding the prefix.
    """
    if skip_records < 0:
        raise ValueError("skip_records must be >= 0")
    fileobj = open(path, "rb")
    try:
        version, _count = read_header(fileobj)
        if version != _VERSION:
            fileobj.close()
            fileobj = None
            from repro.trace.columnar import read_columns_batched

            yield from read_columns_batched(path, batch_size, skip_records)
            return
        if skip_records:
            fileobj.seek(skip_records * _RECORD.size, io.SEEK_CUR)
        yield from _iter_batches(fileobj, batch_size)
    finally:
        if fileobj is not None:
            fileobj.close()


def write_trace(path: str | Path, records: Iterable[PacketRecord]) -> int:
    """Write all *records* to *path*; return the record count."""
    with TraceWriter.open(path) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def read_trace(path: str | Path) -> list[PacketRecord]:
    """Read a whole trace into memory (tests and small traces only)."""
    with TraceReader.open(path) as reader:
        return list(reader)


def trace_bytes(records: Iterable[PacketRecord]) -> bytes:
    """Serialise records to bytes in memory (round-trip tests)."""
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    for record in records:
        writer.write(record)
    # Finalise header without closing the BytesIO.
    buffer.seek(0)
    buffer.write(_HEADER.pack(_MAGIC, _VERSION, 0, writer.records_written))
    return buffer.getvalue()
