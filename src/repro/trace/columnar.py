"""Columnar trace format (v2): chunked column layout, zero-copy reads.

Format v1 (:mod:`repro.trace.format`) stores a trace as a stream of
packed 24-byte records; decoding dispatches one ``PacketRecord`` object
per record, which caps replay around a few hundred thousand records per
second.  Format v2 keeps the same 16-byte file header (version bumped
to 2) but lays the body out in *chunks*, each storing one contiguous
array per field::

    header:  magic "RPRT" | u16 version=2 | u16 flags | u64 record count
    chunk:   u32 record count n | u32 reserved
             | f8[n] time | u4[n] src | u4[n] dst
             | u2[n] sport | u2[n] dport
             | u1[n] proto | u1[n] flags | u1[n] link | u1[n] icmp
             | padding to the next 8-byte boundary

Chunks start 8-byte aligned (the header is 16 bytes and every chunk's
total size is a multiple of 8), so the ``time`` column of an mmap'd
file is always a properly aligned ``float64`` view.  Readers map the
whole file once and hand out :class:`RecordColumns` batches whose
arrays are numpy views straight into the mapping -- no copies, no
per-record objects.  The record count in the file header is stamped on
close; readers tolerate a zero count (truncated writer) by walking the
chunk headers.

Lifetime rule: column views keep the underlying ``mmap`` alive (numpy
holds a buffer export), so the mapping is released only when the last
view is garbage collected.  Readers therefore never explicitly close
the mapping; they close the file descriptor immediately after mapping,
which is safe -- the mapping outlives the descriptor.

V1 files can also be read as columns: the packed v1 record layout is
exactly a numpy structured dtype (:data:`V1_DTYPE`), so a v1 file is
mmap'd into one structured view and its fields are strided column
views.  V2's advantage is contiguity (each field is a dense array, so
vector ops run at memory bandwidth) plus per-chunk locality.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

from repro.net.packet import ICMP_PORT_UNREACHABLE, PacketRecord

from repro.trace.format import (
    _HEADER,
    _ICMP_NONE,
    _ICMP_PORT_UNREACH,
    _ICMP_VALUES,
    _FLAG_VALUES,
    _LINK_INDEX,
    _LINKS,
    _MAGIC,
    _RECORD,
    read_header,
)

#: The version this module writes.
VERSION_COLUMNAR = 2

#: Records per chunk written by :class:`ColumnarTraceWriter` (and the
#: batch size v1 files are sliced into when read as columns).
DEFAULT_CHUNK_RECORDS = 65536

#: Chunk header: u32 record count, u32 reserved (keeps chunks 8-aligned).
_CHUNK_HEADER = struct.Struct("<II")

#: (field name, dtype) in on-disk order.  The dtypes are little-endian
#: and match the v1 packed record field for field.
COLUMN_FIELDS: tuple[tuple[str, np.dtype], ...] = (
    ("time", np.dtype("<f8")),
    ("src", np.dtype("<u4")),
    ("dst", np.dtype("<u4")),
    ("sport", np.dtype("<u2")),
    ("dport", np.dtype("<u2")),
    ("proto", np.dtype("u1")),
    ("flags", np.dtype("u1")),
    ("link", np.dtype("u1")),
    ("icmp", np.dtype("u1")),
)

#: Bytes per record across all columns (equals the v1 record size).
_BYTES_PER_RECORD = sum(dtype.itemsize for _, dtype in COLUMN_FIELDS)

#: The v1 packed record as a numpy structured dtype (itemsize 24, no
#: padding) -- lets a v1 file be viewed as columns without decoding.
V1_DTYPE = np.dtype([(name, dtype) for name, dtype in COLUMN_FIELDS])

assert V1_DTYPE.itemsize == _RECORD.size == _BYTES_PER_RECORD


def _chunk_payload_bytes(count: int) -> int:
    """On-disk size of one chunk body (columns + alignment padding)."""
    raw = count * _BYTES_PER_RECORD
    return raw + (-raw % 8)


@dataclass
class RecordColumns:
    """One batch of records as parallel numpy arrays (one per field).

    The columnar counterpart of ``list[PacketRecord]``: index *i* of
    every array describes the same record.  Arrays may be zero-copy
    views into an mmap'd trace -- treat them as read-only.

    ``link_names`` maps the ``link`` column's one-byte indices back to
    link name strings (index 0 is the empty link).
    """

    time: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    sport: np.ndarray
    dport: np.ndarray
    proto: np.ndarray
    flags: np.ndarray
    link: np.ndarray
    icmp: np.ndarray
    link_names: tuple[str, ...] = _LINKS
    #: Lazily materialised scalar form, shared by every observer of the
    #: batch that needs per-record objects (the scalar-fallback path).
    _records: "list[PacketRecord] | None" = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.time)

    # ---- construction ------------------------------------------------

    @classmethod
    def from_records(cls, records: "list[PacketRecord]") -> "RecordColumns":
        """Columnise a record list (validates links and ICMP kinds)."""
        link_index = _LINK_INDEX
        links = []
        icmps = []
        for record in records:
            index = link_index.get(record.link)
            if index is None:
                raise ValueError(f"unknown link {record.link!r}")
            links.append(index)
            if record.icmp is None:
                icmps.append(_ICMP_NONE)
            elif record.icmp == ICMP_PORT_UNREACHABLE:
                icmps.append(_ICMP_PORT_UNREACH)
            else:
                raise ValueError(f"unsupported ICMP kind: {record.icmp}")
        return cls(
            time=np.array([r.time for r in records], dtype="<f8"),
            src=np.array([r.src for r in records], dtype="<u4"),
            dst=np.array([r.dst for r in records], dtype="<u4"),
            sport=np.array([r.sport for r in records], dtype="<u2"),
            dport=np.array([r.dport for r in records], dtype="<u2"),
            proto=np.array([r.proto for r in records], dtype="u1"),
            flags=np.array([int(r.flags) for r in records], dtype="u1"),
            link=np.array(links, dtype="u1"),
            icmp=np.array(icmps, dtype="u1"),
        )

    @classmethod
    def from_structured(cls, view: np.ndarray) -> "RecordColumns":
        """Columns over a :data:`V1_DTYPE` structured view (zero-copy)."""
        return cls(*(view[name] for name, _ in COLUMN_FIELDS))

    # ---- conversion ----------------------------------------------------

    def to_records(self) -> "list[PacketRecord]":
        """Materialise the batch as ``PacketRecord`` objects.

        Identical to what the v1 batched reader would decode; the
        result is cached on the batch so several scalar-fallback
        observers of one replay pass share a single materialisation.
        """
        if self._records is None:
            make = PacketRecord
            flag_values = _FLAG_VALUES
            icmp_values = _ICMP_VALUES
            links = self.link_names
            self._records = [
                make(
                    time=time, src=src, dst=dst, sport=sport, dport=dport,
                    proto=proto, flags=flag_values[flags],
                    icmp=icmp_values[icmp], link=links[link],
                )
                for time, src, dst, sport, dport, proto, flags, link, icmp
                in zip(
                    self.time.tolist(), self.src.tolist(), self.dst.tolist(),
                    self.sport.tolist(), self.dport.tolist(),
                    self.proto.tolist(), self.flags.tolist(),
                    self.link.tolist(), self.icmp.tolist(),
                )
            ]
        return self._records

    def to_structured(self) -> np.ndarray:
        """Pack the batch into a fresh :data:`V1_DTYPE` array (v1 bytes)."""
        out = np.empty(len(self), dtype=V1_DTYPE)
        for name, _ in COLUMN_FIELDS:
            out[name] = getattr(self, name)
        return out

    # ---- selection -----------------------------------------------------

    def _rebuild(self, selector) -> "RecordColumns":
        return RecordColumns(
            *(getattr(self, name)[selector] for name, _ in COLUMN_FIELDS),
            link_names=self.link_names,
        )

    def take(self, indices: np.ndarray) -> "RecordColumns":
        """Rows at *indices* (fancy indexing; copies)."""
        return self._rebuild(indices)

    def compress(self, mask: np.ndarray) -> "RecordColumns":
        """Rows where the boolean *mask* is True (copies)."""
        return self._rebuild(mask)

    def slice(self, start: int, stop: "int | None" = None) -> "RecordColumns":
        """Contiguous row range (zero-copy views)."""
        return self._rebuild(np.s_[start:stop])


class ColumnarTraceWriter:
    """Streaming v2 writer: buffers records, spills full chunks.

    Interface-compatible with :class:`repro.trace.format.TraceWriter`
    (``write``/``close``/``records_written``, context manager), plus
    :meth:`write_columns` for bulk input that is already columnar.
    """

    def __init__(
        self, fileobj: BinaryIO, chunk_records: int = DEFAULT_CHUNK_RECORDS
    ) -> None:
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self._file = fileobj
        self._chunk_records = chunk_records
        self._count = 0
        self._buffers: list[list] = [[] for _ in COLUMN_FIELDS]
        self._file.write(_HEADER.pack(_MAGIC, VERSION_COLUMNAR, 0, 0))

    @classmethod
    def open(
        cls, path: "str | Path", chunk_records: int = DEFAULT_CHUNK_RECORDS
    ) -> "ColumnarTraceWriter":
        return cls(open(path, "wb"), chunk_records)

    def write(self, record: PacketRecord) -> None:
        link_index = _LINK_INDEX.get(record.link)
        if link_index is None:
            raise ValueError(f"unknown link {record.link!r}")
        icmp_marker = _ICMP_NONE
        if record.icmp is not None:
            if record.icmp != ICMP_PORT_UNREACHABLE:
                raise ValueError(f"unsupported ICMP kind: {record.icmp}")
            icmp_marker = _ICMP_PORT_UNREACH
        buffers = self._buffers
        buffers[0].append(record.time)
        buffers[1].append(record.src)
        buffers[2].append(record.dst)
        buffers[3].append(record.sport)
        buffers[4].append(record.dport)
        buffers[5].append(record.proto)
        buffers[6].append(int(record.flags))
        buffers[7].append(link_index)
        buffers[8].append(icmp_marker)
        self._count += 1
        if len(buffers[0]) >= self._chunk_records:
            self._flush_chunk()

    def write_columns(self, columns: RecordColumns) -> None:
        """Append a whole columnar batch (bulk path for converters)."""
        self._flush_chunk()
        total = len(columns)
        for start in range(0, total, self._chunk_records):
            part = columns.slice(start, min(start + self._chunk_records, total))
            self._write_chunk_arrays(
                [getattr(part, name) for name, _ in COLUMN_FIELDS]
            )
        self._count += total

    def _flush_chunk(self) -> None:
        if not self._buffers[0]:
            return
        arrays = [
            np.asarray(values, dtype=dtype)
            for values, (_, dtype) in zip(self._buffers, COLUMN_FIELDS)
        ]
        self._write_chunk_arrays(arrays)
        self._buffers = [[] for _ in COLUMN_FIELDS]

    def _write_chunk_arrays(self, arrays: list) -> None:
        count = len(arrays[0])
        if count == 0:
            return
        write = self._file.write
        write(_CHUNK_HEADER.pack(count, 0))
        for array, (_, dtype) in zip(arrays, COLUMN_FIELDS):
            if array.dtype != dtype:
                array = array.astype(dtype)
            write(np.ascontiguousarray(array).tobytes())
        padding = -(count * _BYTES_PER_RECORD) % 8
        if padding:
            write(b"\x00" * padding)

    def close(self) -> None:
        """Flush the tail chunk, finalise the header, close the file."""
        self._flush_chunk()
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, VERSION_COLUMNAR, 0, self._count))
        self._file.close()

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._count


def _mmap_file(path: "str | Path") -> mmap.mmap:
    """Map *path* read-only; the descriptor is closed immediately."""
    with open(path, "rb") as fileobj:
        return mmap.mmap(fileobj.fileno(), 0, access=mmap.ACCESS_READ)


def _iter_v2_chunks(
    buffer: mmap.mmap, skip_records: int
) -> Iterator[RecordColumns]:
    """Walk a v2 mapping's chunks, yielding zero-copy column batches."""
    size = len(buffer)
    offset = _HEADER.size
    remaining_skip = skip_records
    while offset < size:
        if offset + _CHUNK_HEADER.size > size:
            raise ValueError("truncated chunk header at end of trace")
        count, _reserved = _CHUNK_HEADER.unpack_from(buffer, offset)
        if count == 0:
            raise ValueError("empty chunk in columnar trace")
        payload = _chunk_payload_bytes(count)
        data_start = offset + _CHUNK_HEADER.size
        if data_start + payload > size:
            raise ValueError("truncated chunk at end of trace")
        if remaining_skip >= count:
            remaining_skip -= count
            offset = data_start + payload
            continue
        columns = []
        column_offset = data_start
        for _, dtype in COLUMN_FIELDS:
            columns.append(
                np.frombuffer(buffer, dtype=dtype, count=count,
                              offset=column_offset)
            )
            column_offset += count * dtype.itemsize
        batch = RecordColumns(*columns)
        if remaining_skip:
            batch = batch.slice(remaining_skip)
            remaining_skip = 0
        yield batch
        offset = data_start + payload


def read_trace_columns(
    path: "str | Path",
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    skip_records: int = 0,
) -> Iterator[RecordColumns]:
    """Read any trace file as :class:`RecordColumns` batches.

    V2 files yield the writer's chunks as zero-copy views into one
    mmap of the file; v1 files are mmap'd into a structured view and
    yielded in *chunk_records* slices (still zero-copy, but each field
    is a strided view rather than a dense array).  *skip_records*
    drops the first N records -- whole skipped chunks cost one header
    read, and a partial skip is a view slice.
    """
    if skip_records < 0:
        raise ValueError("skip_records must be >= 0")
    if chunk_records <= 0:
        raise ValueError("chunk_records must be positive")
    with open(path, "rb") as fileobj:
        version, _count = read_header(fileobj)
    buffer = _mmap_file(path)
    if version == VERSION_COLUMNAR:
        yield from _iter_v2_chunks(buffer, skip_records)
        return
    body = len(buffer) - _HEADER.size
    if body % _RECORD.size:
        raise ValueError("truncated record at end of trace")
    view = np.frombuffer(
        buffer, dtype=V1_DTYPE, count=body // _RECORD.size,
        offset=_HEADER.size,
    )
    for start in range(skip_records, len(view), chunk_records):
        yield RecordColumns.from_structured(
            view[start:start + chunk_records]
        )


def read_columns_batched(
    path: "str | Path",
    batch_size: int,
    skip_records: int = 0,
) -> Iterator["list[PacketRecord]"]:
    """Decode a v2 trace into ``PacketRecord`` batches (v1 compatibility).

    The scalar view of a columnar file: record-for-record identical to
    reading the trace's v1 form through
    :func:`repro.trace.format.read_records_chunked`.  Chunks are
    re-sliced to *batch_size* so consumers see the batch shape they
    asked for.
    """
    for columns in read_trace_columns(path, skip_records=skip_records):
        total = len(columns)
        if total <= batch_size:
            yield columns.to_records()
            continue
        for start in range(0, total, batch_size):
            yield columns.slice(start, start + batch_size).to_records()


def columnar_record_count(path: "str | Path") -> int:
    """Total records in a v2 file, by walking chunk headers (cheap)."""
    count = 0
    with open(path, "rb") as fileobj:
        read_header(fileobj)
        size = os.fstat(fileobj.fileno()).st_size
        offset = _HEADER.size
        while offset < size:
            header = fileobj.read(_CHUNK_HEADER.size)
            if len(header) < _CHUNK_HEADER.size:
                raise ValueError("truncated chunk header at end of trace")
            chunk_count, _reserved = _CHUNK_HEADER.unpack(header)
            count += chunk_count
            offset += _CHUNK_HEADER.size + _chunk_payload_bytes(chunk_count)
            fileobj.seek(offset)
    return count


def columnar_is_intact(path: "str | Path") -> bool:
    """V2 integrity probe: chunk walk consistent with header and size.

    Mirrors the v1 rule: a cleanly closed writer stamps the record
    count, which (with the chunk structure) fixes the exact file size;
    a zero count with a non-empty body means the writer never finished.
    Truncation anywhere -- mid-chunk-header, mid-column, lost tail --
    breaks either the walk or the count match.
    """
    try:
        size = os.stat(path).st_size
        with open(path, "rb") as fileobj:
            _version, declared = read_header(fileobj)
            offset = _HEADER.size
            walked = 0
            while offset < size:
                header = fileobj.read(_CHUNK_HEADER.size)
                if len(header) < _CHUNK_HEADER.size:
                    return False
                chunk_count, _reserved = _CHUNK_HEADER.unpack(header)
                if chunk_count == 0:
                    return False
                walked += chunk_count
                offset += (
                    _CHUNK_HEADER.size + _chunk_payload_bytes(chunk_count)
                )
                fileobj.seek(offset)
    except (OSError, ValueError):
        return False
    return offset == size and walked == declared


def convert_trace(
    source: "str | Path",
    destination: "str | Path",
    to_version: int = VERSION_COLUMNAR,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> int:
    """Convert a trace file between format versions; return record count.

    Both directions are supported (v1 -> v2 for the fast columnar
    replay path, v2 -> v1 for tools that want the flat record stream);
    converting a file to its own version rewrites it canonically.  The
    record sequence is preserved exactly -- ``read_trace`` of source
    and destination yield identical ``PacketRecord`` lists.
    """
    if to_version not in (1, VERSION_COLUMNAR):
        raise ValueError(f"unsupported target version: {to_version}")
    total = 0
    if to_version == VERSION_COLUMNAR:
        with ColumnarTraceWriter.open(destination, chunk_records) as writer:
            for columns in read_trace_columns(source):
                writer.write_columns(columns)
            total = writer.records_written
        return total
    # v2 (or v1) -> v1: stream packed record bytes through a v1 header.
    with open(destination, "wb") as out:
        out.write(_HEADER.pack(_MAGIC, 1, 0, 0))
        for columns in read_trace_columns(source):
            out.write(columns.to_structured().tobytes())
            total += len(columns)
        out.seek(0)
        out.write(_HEADER.pack(_MAGIC, 1, 0, total))
    return total
