"""The paper's analyses as a library.

Everything in this package operates on *observations* -- passive
service tables and active scan reports -- never on simulator ground
truth, exactly as the paper's offline analysis operated on captured
traces and Nmap logs.

* :mod:`repro.core.timeline` -- discovery timelines and cumulative
  curves (the machinery behind every figure);
* :mod:`repro.core.completeness` -- union ground truth, overlap
  summaries (Table 2), weighted completeness (Figure 1);
* :mod:`repro.core.categorize` -- the address-behaviour
  categorisations of Tables 3 and 4 and the firewall confirmation
  methods of Section 4.2.4;
* :mod:`repro.core.report` -- plain-text tables and series renderers
  used by the experiment harness and EXPERIMENTS.md.
"""

from repro.core.completeness import (
    CompletenessSummary,
    summarize_overlap,
    weighted_discovery_curve,
)
from repro.core.categorize import (
    categorize_extended,
    categorize_initial,
    confirm_firewalls,
)
from repro.core.report import TextTable, format_percent, render_series
from repro.core.timeline import DiscoveryTimeline, cumulative_curve, time_to_fraction

__all__ = [
    "CompletenessSummary",
    "DiscoveryTimeline",
    "TextTable",
    "categorize_extended",
    "categorize_initial",
    "confirm_firewalls",
    "cumulative_curve",
    "format_percent",
    "render_series",
    "summarize_overlap",
    "time_to_fraction",
    "weighted_discovery_curve",
]
