"""Plain-text report rendering.

The benchmark harness prints the same rows/series the paper's tables
and figures report; this module is the shared renderer.  Output is
monospace-friendly Markdown so EXPERIMENTS.md can embed it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_percent(value: float, decimals: int = 1) -> str:
    """Render a percentage the way the paper does (``"98%"``, ``"2.3%"``)."""
    if value >= 10 or value == 0:
        return f"{value:.0f}%"
    return f"{value:.{decimals}f}%"


def format_count_pct(count: int, pct: float) -> str:
    """``"1,748 (100%)"`` style cells."""
    return f"{count:,} ({format_percent(pct)})"


def format_count(value: float) -> str:
    """Thousands-separated count cells (``"1,748"``; floats keep 2 dp)."""
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.2f}"


def count_rows(
    counts: dict[str, float | int],
    label_prefix: str = "",
    descending: bool = True,
) -> list[tuple[str, str]]:
    """Labelled counts as ``(label, formatted)`` table rows.

    The shared shape behind ``python -m repro stats`` and
    ``trace-stats``: counts sort by value (largest first by default,
    ties broken by label for stable output) and render through
    :func:`format_count`.
    """
    ordered = sorted(
        counts.items(),
        key=lambda item: ((-item[1] if descending else item[1]), item[0]),
    )
    return [
        (f"{label_prefix}{label}", format_count(value))
        for label, value in ordered
    ]


def survey_table(
    dataset: str,
    scale: float,
    seed: int,
    records: int,
    scans: int,
    summary,
) -> "TextTable":
    """The passive/active overlap report (the quickstart's output).

    Shared by the batch path (``python -m repro survey``) and the
    streaming engine's final merge: both build their report through
    this one function, which is what makes a streamed report
    byte-identical to the batch report for the same configuration.
    *summary* is any object with ``as_rows()`` yielding
    ``(label, count, percent)`` rows
    (:class:`repro.core.completeness.CompletenessSummary`).
    """
    table = TextTable(
        title=(
            f"{dataset} (scale {scale}, seed {seed}): "
            f"{records:,} headers, {scans} scans"
        ),
        headers=["Measure", "Servers"],
    )
    for name, count, pct in summary.as_rows():
        table.add_row(name, format_count_pct(count, pct))
    return table


@dataclass
class TextTable:
    """A simple aligned text table with a title."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Render as a Markdown pipe table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                if index < len(widths):
                    widths[index] = max(widths[index], len(cell))
                else:
                    widths.append(len(cell))

        def line(cells: Sequence[str]) -> str:
            padded = [
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(cells)
            ]
            return "| " + " | ".join(padded) + " |"

        out = [f"### {self.title}", ""]
        out.append(line(self.headers))
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in self.rows:
            out.append(line(row))
        if self.notes:
            out.append("")
            out.extend(f"> {note}" for note in self.notes)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def render_series(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    x_label: str = "time",
    y_label: str = "value",
    max_points: int = 20,
) -> str:
    """Render named (x, y) series as a compact Markdown table.

    Long series are downsampled to *max_points* evenly spaced samples
    (always keeping the last point), which is enough to judge a curve's
    shape in a text report.
    """
    out = [f"### {title}", "", f"x = {x_label}, y = {y_label}", ""]
    names = list(series)
    sampled: dict[str, list[tuple[float, float]]] = {}
    for name in names:
        points = series[name]
        if len(points) > max_points:
            stride = max(1, len(points) // max_points)
            kept = points[::stride]
            if kept[-1] != points[-1]:
                kept.append(points[-1])
            sampled[name] = kept
        else:
            sampled[name] = list(points)
    table = TextTable(title="", headers=["series"] + [x_label, y_label])
    lines = []
    for name in names:
        for x, y in sampled[name]:
            lines.append(f"| {name} | {x:g} | {y:.2f} |")
    header = f"| series | {x_label} | {y_label} |"
    divider = "|---|---|---|"
    out.append(header)
    out.append(divider)
    out.extend(lines)
    del table  # TextTable kept simple; manual rows keep column count right
    return "\n".join(out)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a unicode sparkline of *values* (quick visual checks)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )
