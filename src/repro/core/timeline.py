"""Discovery timelines.

A :class:`DiscoveryTimeline` maps discovered items (addresses or
endpoints) to the time each was *first* found by some method.  All of
the paper's figures are cumulative views of such timelines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

Item = Hashable


@dataclass
class DiscoveryTimeline:
    """First-seen times for a set of discovered items."""

    first_seen: dict[Item, float] = field(default_factory=dict)
    #: Lazy port -> addresses index over tuple items; rebuilt after any
    #: :meth:`record` (it is the only mutator).
    _port_index: dict[int, set[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[Item, float]) -> "DiscoveryTimeline":
        return cls(first_seen=dict(mapping))

    @classmethod
    def from_events(cls, events: Iterable[tuple[float, Item]]) -> "DiscoveryTimeline":
        """Build from (time, item) events, keeping the earliest per item."""
        timeline = cls()
        for t, item in events:
            timeline.record(item, t)
        return timeline

    def record(self, item: Item, t: float) -> None:
        """Note that *item* was observed at time *t* (keeps the minimum)."""
        previous = self.first_seen.get(item)
        if previous is None or t < previous:
            self.first_seen[item] = t
            self._port_index = None

    def merge(self, other: "DiscoveryTimeline") -> "DiscoveryTimeline":
        """Earliest-of-both timeline (e.g. passive-union-active)."""
        merged = DiscoveryTimeline(first_seen=dict(self.first_seen))
        for item, t in other.first_seen.items():
            merged.record(item, t)
        return merged

    def restrict(self, items: Iterable[Item]) -> "DiscoveryTimeline":
        """Timeline limited to the given item set."""
        keep = set(items)
        return DiscoveryTimeline(
            first_seen={i: t for i, t in self.first_seen.items() if i in keep}
        )

    def before(self, cutoff: float) -> "DiscoveryTimeline":
        """Timeline of items discovered strictly before *cutoff*."""
        return DiscoveryTimeline(
            first_seen={i: t for i, t in self.first_seen.items() if t < cutoff}
        )

    def items(self) -> set[Item]:
        return set(self.first_seen)

    def __len__(self) -> int:
        return len(self.first_seen)

    def __contains__(self, item: Item) -> bool:
        return item in self.first_seen

    def sorted_times(self) -> list[float]:
        return sorted(self.first_seen.values())

    def count_before(self, t: float) -> int:
        """Number of items discovered at or before time *t*."""
        times = self.sorted_times()
        return bisect.bisect_right(times, t)

    def addresses_for_port(self, port: int) -> set[int]:
        """Addresses whose ``(address, port[, proto])`` item was found.

        The per-port experiments (Tables 5 and 6) ask this once per
        watched port; the timeline is indexed by port on the first call
        instead of re-scanning every item per query.
        """
        index = self._port_index
        if index is None:
            index = {}
            for item in self.first_seen:
                if isinstance(item, tuple) and len(item) >= 2:
                    index.setdefault(item[1], set()).add(item[0])
            self._port_index = index
        return set(index.get(port, ()))

    def addresses(self) -> "DiscoveryTimeline":
        """Collapse endpoint items ``(address, ...)`` to address level.

        Items that are tuples are keyed by their first element; scalar
        items pass through unchanged.
        """
        collapsed = DiscoveryTimeline()
        for item, t in self.first_seen.items():
            key = item[0] if isinstance(item, tuple) else item
            collapsed.record(key, t)
        return collapsed


def cumulative_curve(
    timeline: DiscoveryTimeline,
    start: float,
    end: float,
    step: float,
) -> list[tuple[float, int]]:
    """Sampled cumulative discovery counts over ``[start, end]``.

    Returns (time, count) points every *step* seconds, inclusive of the
    endpoint -- the series behind Figures 1-10 and 12.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    times = timeline.sorted_times()
    points: list[tuple[float, int]] = []
    t = start
    while t < end:
        points.append((t, bisect.bisect_right(times, t)))
        t += step
    points.append((end, bisect.bisect_right(times, end)))
    return points


def time_to_fraction(
    timeline: DiscoveryTimeline,
    fraction: float,
    total: int | None = None,
) -> float | None:
    """Earliest time by which *fraction* of *total* items were found.

    *total* defaults to the timeline's own size (fraction of what was
    eventually found); pass the union size for completeness-style
    fractions.  Returns None when the fraction is never reached.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    times = timeline.sorted_times()
    denominator = total if total is not None else len(times)
    if denominator <= 0:
        return None
    needed = fraction * denominator
    import math

    index = math.ceil(needed) - 1
    if index >= len(times):
        return None
    return times[max(index, 0)]


def discovery_rate(
    timeline: DiscoveryTimeline, window_start: float, window_end: float
) -> float:
    """Mean discoveries per hour within a window (the paper quotes
    "one per hour in the last five days" style rates)."""
    if window_end <= window_start:
        raise ValueError("window must have positive length")
    count = sum(
        1 for t in timeline.first_seen.values() if window_start <= t < window_end
    )
    return count / ((window_end - window_start) / 3600.0)
