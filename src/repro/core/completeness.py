"""Completeness analysis (paper Sections 4.1, 4.2.4).

Ground truth is the union of what passive and active found; each
method's completeness is measured against it.  Table 2 is a family of
:class:`CompletenessSummary` values at growing observation durations;
Figure 1 is :func:`weighted_discovery_curve` under three weightings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.timeline import DiscoveryTimeline

Item = Hashable


@dataclass(frozen=True)
class CompletenessSummary:
    """Overlap of passive and active discovery against their union."""

    union: int
    both: int
    active_only: int
    passive_only: int

    @property
    def active_total(self) -> int:
        return self.both + self.active_only

    @property
    def passive_total(self) -> int:
        return self.both + self.passive_only

    def _pct(self, value: int) -> float:
        return 100.0 * value / self.union if self.union else 0.0

    @property
    def both_pct(self) -> float:
        return self._pct(self.both)

    @property
    def active_only_pct(self) -> float:
        return self._pct(self.active_only)

    @property
    def passive_only_pct(self) -> float:
        return self._pct(self.passive_only)

    @property
    def active_pct(self) -> float:
        return self._pct(self.active_total)

    @property
    def passive_pct(self) -> float:
        return self._pct(self.passive_total)

    def as_rows(self) -> list[tuple[str, int, float]]:
        """(label, count, percent) rows in Table 2's order."""
        return [
            ("Total servers found (union)", self.union, 100.0),
            ("Passive AND Active", self.both, self.both_pct),
            ("Active only", self.active_only, self.active_only_pct),
            ("Passive only", self.passive_only, self.passive_only_pct),
            ("Active", self.active_total, self.active_pct),
            ("Passive", self.passive_total, self.passive_pct),
        ]


def summarize_overlap(
    passive_items: set[Item], active_items: set[Item]
) -> CompletenessSummary:
    """Build a :class:`CompletenessSummary` from two discovery sets."""
    both = passive_items & active_items
    return CompletenessSummary(
        union=len(passive_items | active_items),
        both=len(both),
        active_only=len(active_items - both),
        passive_only=len(passive_items - both),
    )


def weighted_discovery_curve(
    timeline: DiscoveryTimeline,
    weights: Mapping[Item, float],
    start: float,
    end: float,
    step: float,
    universe: set[Item] | None = None,
) -> list[tuple[float, float]]:
    """Cumulative *weighted* discovery fraction over time (Figure 1).

    Each item carries ``weights[item]`` (its flow or client count over
    the whole study; missing items weigh zero -- unweighted curves just
    pass a weight of 1 for everything).  The denominator is the total
    weight of *universe* (default: the timeline's items), so the curve
    expresses "fraction of all eventually-relevant weight discovered by
    time t".
    """
    if step <= 0:
        raise ValueError("step must be positive")
    items = universe if universe is not None else timeline.items()
    total = sum(weights.get(item, 0.0) for item in items)
    events = sorted(
        (t, weights.get(item, 0.0))
        for item, t in timeline.first_seen.items()
        if item in items
    )
    points: list[tuple[float, float]] = []
    cumulative = 0.0
    index = 0
    t = start
    while True:
        while index < len(events) and events[index][0] <= t:
            cumulative += events[index][1]
            index += 1
        points.append((t, 100.0 * cumulative / total if total > 0 else 0.0))
        if t >= end:
            break
        t = min(t + step, end)
    return points


def curve_time_to_percent(
    curve: list[tuple[float, float]], percent: float
) -> float | None:
    """First sampled time at which the curve reaches *percent*."""
    for t, value in curve:
        if value >= percent:
            return t
    return None


def unit_weights(items: set[Item]) -> dict[Item, float]:
    """Weight 1.0 for every item (the unweighted curves)."""
    return {item: 1.0 for item in items}
