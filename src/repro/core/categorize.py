"""Address-behaviour categorisation (paper Tables 3 and 4).

The paper interprets each address's observation vector:

* Table 3 uses 12 hours of passive data and one scan;
* Table 4 refines it with the remaining 17.5 days of both methods and
  the address's transience.

The functions here implement those decision tables over *observations
only*; in tests the output is compared with the simulator's generative
ground-truth categories, reproducing the paper's interpretation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.active.results import ScanReport
from repro.core.timeline import DiscoveryTimeline

# Table 3 labels.
T3_ACTIVE_SERVER = "active server address"
T3_IDLE_SERVER = "idle server address"
T3_FIREWALLED_OR_BIRTH = "firewalled address or birth"
T3_NON_SERVER = "non-server address"

# Table 4 labels (verbatim from the paper).
T4_ACTIVE = "active server address"
T4_SERVER_DEATH = "server death"
T4_INTERMITTENT_FW = "intermittent"
T4_MOSTLY_IDLE = "mostly idle"
T4_IDLE_INTERMITTENT = "idle/intermittent"
T4_SEMI_IDLE = "semi-idle"
T4_IDLE = "idle"
T4_INTERMITTENT_PASSIVE = "intermittent (passive)"
T4_BIRTH = "birth"
T4_POSSIBLE_FIREWALL = "possible firewall"
T4_DEATH = "death"
T4_BIRTH_MOSTLY_IDLE = "birth/mostly idle"
T4_NON_SERVER = "non-server address"
T4_INTERMITTENT_ACTIVE = "intermittent/active"
T4_LATE_BIRTH = "birth (late)"
T4_INTERMITTENT_IDLE = "intermittent/idle"
T4_BIRTH_IDLE = "birth/idle"
T4_POSSIBLE_FW_INTERMITTENT = "possible firewall/intermittent"
T4_POSSIBLE_FW_BIRTH = "possible firewall/birth"


def categorize_initial(
    addresses: Iterable[int],
    passive_12h: set[int],
    active_first: set[int],
) -> dict[str, set[int]]:
    """Table 3: classify addresses from 12 h passive + one active scan."""
    result: dict[str, set[int]] = {
        T3_ACTIVE_SERVER: set(),
        T3_IDLE_SERVER: set(),
        T3_FIREWALLED_OR_BIRTH: set(),
        T3_NON_SERVER: set(),
    }
    for address in addresses:
        passive = address in passive_12h
        active = address in active_first
        if passive and active:
            result[T3_ACTIVE_SERVER].add(address)
        elif active:
            result[T3_IDLE_SERVER].add(address)
        elif passive:
            result[T3_FIREWALLED_OR_BIRTH].add(address)
        else:
            result[T3_NON_SERVER].add(address)
    return result


@dataclass(frozen=True)
class ObservationVector:
    """The five observable bits Table 4 branches on."""

    passive_early: bool   # passive evidence within the first 12 hours
    active_early: bool    # found by the first scan
    passive_late: bool    # passive evidence after the first 12 hours
    active_late: bool     # found by any later scan
    transient: bool       # address lies in a transient block


def classify_vector(v: ObservationVector) -> str:
    """Map one observation vector to its Table 4 label."""
    if v.passive_early and v.active_early:
        if v.passive_late and v.active_late:
            return T4_ACTIVE
        if not v.passive_late and not v.active_late:
            return T4_SERVER_DEATH
        if v.passive_late:
            return T4_INTERMITTENT_FW
        return T4_MOSTLY_IDLE
    if v.active_early:  # and not passive_early
        if v.transient:
            return T4_IDLE_INTERMITTENT
        if v.passive_late:
            return T4_SEMI_IDLE
        return T4_IDLE
    if v.passive_early:  # and not active_early
        if v.transient:
            return T4_INTERMITTENT_PASSIVE
        if v.passive_late and v.active_late:
            return T4_BIRTH
        if v.passive_late:
            return T4_POSSIBLE_FIREWALL
        if v.active_late:
            return T4_BIRTH_MOSTLY_IDLE
        return T4_DEATH
    # Nothing in the first 12 hours.
    if not v.passive_late and not v.active_late:
        return T4_NON_SERVER
    if v.passive_late and v.active_late:
        return T4_INTERMITTENT_ACTIVE if v.transient else T4_LATE_BIRTH
    if v.active_late:
        return T4_INTERMITTENT_IDLE if v.transient else T4_BIRTH_IDLE
    return T4_POSSIBLE_FW_INTERMITTENT if v.transient else T4_POSSIBLE_FW_BIRTH


def categorize_extended(
    addresses: Iterable[int],
    passive_timeline: DiscoveryTimeline,
    active_first_scan: set[int],
    active_later_scans: set[int],
    is_transient: Callable[[int], bool],
    early_cutoff: float,
) -> dict[str, set[int]]:
    """Table 4: classify addresses with the full observation period.

    Parameters
    ----------
    passive_timeline:
        Address-level passive first-seen times over the whole dataset.
    active_first_scan / active_later_scans:
        Addresses found open by scan 1 / by any subsequent scan.
    early_cutoff:
        End of the "first 12 hours" window, dataset seconds.
    """
    result: dict[str, set[int]] = {}
    for address in addresses:
        first = passive_timeline.first_seen.get(address)
        vector = ObservationVector(
            passive_early=first is not None and first < early_cutoff,
            active_early=address in active_first_scan,
            passive_late=first is not None and first >= early_cutoff
            or _reseen_late(passive_timeline, address, early_cutoff),
            active_late=address in active_later_scans,
            transient=is_transient(address),
        )
        label = classify_vector(vector)
        result.setdefault(label, set()).add(address)
    return result


def _reseen_late(
    timeline: DiscoveryTimeline, address: int, cutoff: float
) -> bool:
    """Whether the address has passive evidence after *cutoff*.

    A plain first-seen timeline cannot answer this for addresses first
    seen early; callers that need the distinction should supply a
    :class:`LateEvidence` via :func:`categorize_extended_with_evidence`.
    This fallback under-reports "seen again later", which matters only
    for the active-server / mostly-idle split.
    """
    return False


@dataclass
class LateEvidence:
    """Addresses with passive evidence after a cutoff (for Table 4)."""

    addresses: set[int]

    def __contains__(self, address: int) -> bool:
        return address in self.addresses


def categorize_extended_with_evidence(
    addresses: Iterable[int],
    passive_timeline: DiscoveryTimeline,
    passive_late_evidence: LateEvidence,
    active_first_scan: set[int],
    active_later_scans: set[int],
    is_transient: Callable[[int], bool],
    early_cutoff: float,
) -> dict[str, set[int]]:
    """Table 4 classification with exact "seen passively later" data.

    ``passive_late_evidence`` must contain every address with *any*
    passive evidence at or after ``early_cutoff`` (not merely first
    discoveries), which the window-activity observer provides.
    """
    result: dict[str, set[int]] = {}
    for address in addresses:
        first = passive_timeline.first_seen.get(address)
        vector = ObservationVector(
            passive_early=first is not None and first < early_cutoff,
            active_early=address in active_first_scan,
            passive_late=address in passive_late_evidence,
            active_late=address in active_later_scans,
            transient=is_transient(address),
        )
        label = classify_vector(vector)
        result.setdefault(label, set()).add(address)
    return result


# ---------------------------------------------------------------------
# Firewall confirmation (Section 4.2.4).
# ---------------------------------------------------------------------

def confirm_firewalls(
    candidates: set[int],
    scan_reports: Sequence[ScanReport],
    passive_activity_windows: Mapping[int, set[int]] | None = None,
) -> dict[str, set[int]]:
    """Confirm suspected firewalled servers by the paper's two methods.

    Method 1: during a single scan, the address sent TCP RSTs from some
    ports but nothing from others -- it is up and selectively dropping.

    Method 2: passive activity was observed from the address *during* a
    scan in which the address did not respond to probes -- it was up
    and serving while blocking the prober.

    Parameters
    ----------
    candidates:
        Addresses suspected of firewalling (passive-only discoveries).
    scan_reports:
        All scans of the dataset.
    passive_activity_windows:
        address -> set of scan indices during which passive evidence
        from that address was captured (from the window observer);
        None disables method 2.

    Returns
    -------
    dict with keys ``"method1"``, ``"method2"``, ``"either"`` and
    ``"unconfirmed"``.
    """
    method1: set[int] = set()
    for report in scan_reports:
        method1 |= candidates & report.mixed_response_addresses
    method2: set[int] = set()
    if passive_activity_windows is not None:
        for index, report in enumerate(scan_reports):
            silent = (
                candidates
                - report.responding_addresses
                - report.open_addresses()
            )
            for address in silent:
                if index in passive_activity_windows.get(address, ()):
                    method2.add(address)
    either = method1 | method2
    return {
        "method1": method1,
        "method2": method2,
        "either": either,
        "unconfirmed": candidates - either,
    }
