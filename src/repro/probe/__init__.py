"""Online active probing: in-stream probe scheduling and evidence.

The build-time scanner (:mod:`repro.active`) materialises scan reports
before a stream starts, as the paper's Nmap logs were; this package
runs the active side *online* -- a :class:`ProbeScheduler` inside the
engine's event loop dispatches seeded half-open probes in simulated
time, interleaved with the packet stream, and its evidence feeds
watermarks, ``/liveness``, ``/healthz`` and the final report the
moment each probe completes.

Policies (:mod:`repro.probe.policy`):

* ``periodic`` -- the paper's 12-hour sweep, scheduled online;
* ``heartbeat`` -- Beverly & Allman's continuous low-rate prober.

See ``DESIGN.md`` section 16 for the architecture and the checkpoint
identity of scheduler state.
"""

from repro.probe.policy import (
    POLICY_NAMES,
    HeartbeatPolicy,
    PeriodicSweepPolicy,
    SWEEP_SECONDS,
    build_policy,
)
from repro.probe.scheduler import (
    ProbeEvidenceView,
    ProbeScheduler,
    build_prober,
    resolve_probe_ports,
)

__all__ = [
    "POLICY_NAMES",
    "SWEEP_SECONDS",
    "HeartbeatPolicy",
    "PeriodicSweepPolicy",
    "ProbeEvidenceView",
    "ProbeScheduler",
    "build_policy",
    "build_prober",
    "resolve_probe_ports",
]
