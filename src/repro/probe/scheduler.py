"""The online probe scheduler: in-stream dispatch and live evidence.

:class:`ProbeScheduler` runs inside the streaming engine's (or fabric
supervisor's) event loop.  Each time stream time advances, the engine
calls :meth:`ProbeScheduler.advance`, which dispatches every probe the
policy scheduled at or before the new instant -- resolving each
through the same host state machine that generates passive traffic
(:meth:`~repro.campus.host.Host.tcp_probe_response`), so online active
discovery disagrees with passive exactly where the paper says the two
methods should.

The scheduler *is* the run's active side: when online probing is
enabled, watermarks, the final report, ``/liveness`` and ``/healthz``
all read from its evidence instead of the build-time scan reports.
Evidence accumulates the moment a probe completes -- a sweep still in
flight contributes opens (and per-address negative evidence) without
waiting for the sweep to finish.

Everything the scheduler knows is plain picklable data, captured by
:meth:`state_dict` and restored by :meth:`restore_state`; the engine
embeds it in stream checkpoints and the fabric supervisor in its
commit manifest, so killed-and-resumed online runs are byte-identical
and probe scheduling survives shard failover untouched (the evidence
lives with the supervisor, never in a worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.campus.host import ProbeOutcome, UdpProbeOutcome
from repro.telemetry.metrics import registry as _telemetry_registry
from repro.telemetry.tracing import tracer as _tracer


@dataclass(frozen=True)
class ProbeEvidenceView:
    """An immutable copy of the scheduler's evidence, for readers.

    The probe-side analogue of :class:`repro.query.liveness.ActiveView`
    -- same query methods, so ``infer_liveness`` swaps one for the
    other -- published inside each :class:`DiscoverySnapshot` while
    ingest (and probing) continue.  ``last_probed`` is the sharper
    evidence the online path adds: per-address probe times, so
    "probed since and silent" is decidable mid-sweep instead of only
    at sweep completion.
    """

    policy: str
    rate: float
    proto: str
    issued: int
    synacks: int
    rsts: int
    silent: int
    udp_replies: int
    first_open: Mapping[tuple[int, int], float]
    last_open: Mapping[int, float]
    last_probed: Mapping[int, float]
    sweeps: tuple[tuple[float, frozenset[int]], ...]
    sweeps_planned: int
    current_sweep: int
    sweep_progress: float

    # ---- the ActiveView interface -------------------------------------

    def active_last_seen(self, address: int, now: float) -> float | None:
        """Latest active open of *address* at or before stream time."""
        when = self.last_open.get(address)
        return when if when is not None and when <= now else None

    def probed_since(self, address: int, after: float, now: float) -> bool:
        """A probe in ``(after, now]`` saw *address* silent or closed.

        Finer-grained than the sweep-level rule: an in-flight sweep's
        probes count as negative evidence the moment they complete.
        """
        probed = self.last_probed.get(address)
        if probed is None or not (after < probed <= now):
            return False
        opened = self.last_open.get(address)
        return opened is None or opened < probed

    def sweeps_completed(self, now: float) -> int:
        return sum(1 for end, _ in self.sweeps if end <= now)

    # ---- /healthz -----------------------------------------------------

    def health(self) -> dict:
        """The ``probes`` object ``/healthz`` reports."""
        return {
            "policy": self.policy,
            "rate": self.rate,
            "proto": self.proto,
            "issued": self.issued,
            "synacks": self.synacks,
            "rsts": self.rsts,
            "silent": self.silent,
            "udp_replies": self.udp_replies,
            "sweeps_completed": len(self.sweeps),
            "sweeps_planned": self.sweeps_planned,
            "current_sweep": self.current_sweep,
            "sweep_progress": round(self.sweep_progress, 4),
        }


class ProbeScheduler:
    """Dispatch one policy's probes in stream time; accumulate evidence.

    ``proto`` selects the probe type: ``"tcp"`` half-open SYN probes
    (SYN-ACK / RST / silence), ``"udp"`` generic datagrams (reply /
    ICMP unreachable / silence, the paper's Section 4.5 scan).
    """

    def __init__(self, population, policy, proto: str = "tcp",
                 internal: bool = True) -> None:
        if proto not in ("tcp", "udp"):
            raise ValueError(f"unknown probe proto {proto!r}")
        self.population = population
        self.policy = policy
        self.proto = proto
        self.internal = internal
        self.cursor = 0
        self.exhausted = False
        self.issued = 0
        self.synacks = 0
        self.rsts = 0
        self.silent = 0
        self.udp_replies = 0
        self.udp_unreachable = 0
        #: (address, port) -> first open probe time (the active
        #: analogue of the passive table's first_seen).
        self.first_open: dict[tuple[int, int], float] = {}
        #: address -> latest open probe time.
        self.last_open: dict[int, float] = {}
        #: address -> latest probe time, open or not (mid-sweep
        #: negative evidence).
        self.last_probed: dict[int, float] = {}
        #: Per-address first opens in dispatch (= time) order; the
        #: watermark timeline (mirrors ActiveTimeline's event list).
        self.open_events: list[tuple[float, int]] = []
        #: Completed sweeps: (nominal end, frozenset(open addresses)).
        self.sweeps: list[tuple[float, frozenset[int]]] = []
        self._current_sweep_opens: set[int] = set()
        # addresses_by cursor state (rebuildable, not checkpointed).
        self._known: set[int] = set()
        self._events_cursor = 0

    # ---- dispatch -----------------------------------------------------

    def advance(self, now: float) -> int:
        """Dispatch every probe scheduled at or before *now*.

        Returns the number of probes dispatched by this call.  The
        evidence after advancing to any instant is independent of the
        call pattern that got there -- probes fire at policy times with
        outcomes that are pure functions of (address, port, time) --
        which is what makes the engine and the fabric byte-identical.
        """
        policy = self.policy
        occupant = self.population.occupant_host
        issued_before = self.issued
        trc = _tracer()
        while not self.exhausted:
            task = policy.task(self.cursor)
            if task is None:
                self.exhausted = True
                break
            when, address, port = task
            if when > now:
                break
            self._dispatch(when, address, port, occupant)
            self.cursor += 1
            if self.cursor % policy.sweep_size == 0:
                self._complete_sweep(policy.sweep_of(self.cursor - 1), trc)
        dispatched = self.issued - issued_before
        if dispatched:
            self._flush_telemetry(dispatched)
        return dispatched

    def _dispatch(self, when: float, address: int, port: int,
                  occupant) -> None:
        self.issued += 1
        self.last_probed[address] = when
        host = occupant(address, when)
        opened = False
        if host is None:
            self.silent += 1
        elif self.proto == "udp":
            outcome = host.udp_probe_response(port, when,
                                              internal=self.internal)
            if outcome is UdpProbeOutcome.REPLY:
                self.udp_replies += 1
                opened = True
            elif outcome is UdpProbeOutcome.ICMP_UNREACHABLE:
                self.udp_unreachable += 1
            else:
                self.silent += 1
        else:
            outcome = host.tcp_probe_response(port, when,
                                              internal=self.internal)
            if outcome is ProbeOutcome.SYNACK:
                self.synacks += 1
                opened = True
            elif outcome is ProbeOutcome.RST:
                self.rsts += 1
            else:
                self.silent += 1
        if opened:
            key = (address, port)
            if key not in self.first_open:
                self.first_open[key] = when
                if address not in self.last_open:
                    self.open_events.append((when, address))
            if self.last_open.get(address, -1.0) < when:
                self.last_open[address] = when
            self._current_sweep_opens.add(address)

    def _complete_sweep(self, sweep: int, trc) -> None:
        _, sweep_end = self.policy.sweep_bounds(sweep)
        opens = frozenset(self._current_sweep_opens)
        self.sweeps.append((sweep_end, opens))
        self._current_sweep_opens = set()
        if trc.enabled:
            trc.event(
                "probe.sweep", sweep=sweep, end=sweep_end, opens=len(opens),
            )
        reg = _telemetry_registry()
        if reg.enabled:
            reg.counter(
                "repro_probe_sweeps_total",
                "Online probe sweeps (coverage passes) completed.",
            ).inc()

    def _flush_telemetry(self, dispatched: int) -> None:
        """Fold this advance's outcome deltas into the registry.

        Called once per advance that dispatched anything, with
        aggregate deltas -- the disabled cost stays a handful of no-op
        calls no matter the probe volume.
        """
        reg = _telemetry_registry()
        if not reg.enabled:
            return
        self._flushed = getattr(self, "_flushed", {
            "issued": 0, "synacks": 0, "rsts": 0, "silent": 0,
            "udp_replies": 0,
        })
        deltas = {
            "issued": self.issued,
            "synacks": self.synacks,
            "rsts": self.rsts,
            "silent": self.silent,
            "udp_replies": self.udp_replies,
        }
        names = {
            "issued": ("repro_probe_dispatched_total",
                       "Online probes dispatched into the stream."),
            "synacks": ("repro_probe_synacks_total",
                        "Online probes answered with SYN-ACK."),
            "rsts": ("repro_probe_rsts_total",
                     "Online probes answered with RST."),
            "silent": ("repro_probe_silent_total",
                       "Online probes that timed out (down, firewalled, "
                       "or unpopulated)."),
            "udp_replies": ("repro_probe_udp_replies_total",
                            "Online UDP probes that drew a reply."),
        }
        for key, total in deltas.items():
            delta = total - self._flushed[key]
            if delta:
                name, help_text = names[key]
                reg.counter(name, help_text).inc(delta)
                self._flushed[key] = total

    # ---- the watermark timeline ---------------------------------------

    def addresses_by(self, t: float) -> set[int]:
        """Addresses with an online-probe open at or before *t*.

        The same monotone-cursor contract as
        :meth:`repro.stream.watermark.ActiveTimeline.addresses_by` --
        the engine and supervisor advance the scheduler past a mark
        before asking, so every event at or before it has fired.
        """
        events = self.open_events
        cursor = self._events_cursor
        known = self._known
        while cursor < len(events) and events[cursor][0] <= t:
            known.add(events[cursor][1])
            cursor += 1
        self._events_cursor = cursor
        return known

    @property
    def total_addresses(self) -> int:
        return len(self.last_open)

    # ---- final-report inputs ------------------------------------------

    def open_addresses(self) -> set[int]:
        """Every address any probe ever found open."""
        return set(self.last_open)

    def sweeps_recorded(self) -> int:
        """Sweeps whose every probe has been dispatched."""
        return len(self.sweeps)

    # ---- checkpoints ---------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed run needs, as plain picklable data."""
        return {
            "cursor": self.cursor,
            "exhausted": self.exhausted,
            "issued": self.issued,
            "synacks": self.synacks,
            "rsts": self.rsts,
            "silent": self.silent,
            "udp_replies": self.udp_replies,
            "udp_unreachable": self.udp_unreachable,
            "first_open": dict(self.first_open),
            "last_open": dict(self.last_open),
            "last_probed": dict(self.last_probed),
            "open_events": list(self.open_events),
            "sweeps": list(self.sweeps),
            "current_sweep_opens": set(self._current_sweep_opens),
        }

    def restore_state(self, state: dict) -> None:
        self.cursor = int(state["cursor"])
        self.exhausted = bool(state["exhausted"])
        self.issued = int(state["issued"])
        self.synacks = int(state["synacks"])
        self.rsts = int(state["rsts"])
        self.silent = int(state["silent"])
        self.udp_replies = int(state["udp_replies"])
        self.udp_unreachable = int(state["udp_unreachable"])
        self.first_open = dict(state["first_open"])
        self.last_open = dict(state["last_open"])
        self.last_probed = dict(state["last_probed"])
        self.open_events = list(state["open_events"])
        self.sweeps = list(state["sweeps"])
        self._current_sweep_opens = set(state["current_sweep_opens"])
        # The addresses_by cursor rebuilds from the restored event
        # list as watermarks advance; identical sets either way.
        self._known = set()
        self._events_cursor = 0

    # ---- snapshots -----------------------------------------------------

    def view(self) -> ProbeEvidenceView:
        """An immutable copy for publication inside a snapshot."""
        policy = self.policy
        sweep_size = policy.sweep_size
        if self.exhausted or sweep_size == 0:
            current = len(self.sweeps)
            progress = 1.0 if self.exhausted and sweep_size else 0.0
        else:
            current = policy.sweep_of(self.cursor)
            progress = (self.cursor % sweep_size) / sweep_size
        return ProbeEvidenceView(
            policy=policy.name,
            rate=policy.rate,
            proto=self.proto,
            issued=self.issued,
            synacks=self.synacks,
            rsts=self.rsts,
            silent=self.silent,
            udp_replies=self.udp_replies,
            first_open=dict(self.first_open),
            last_open=dict(self.last_open),
            last_probed=dict(self.last_probed),
            sweeps=tuple(self.sweeps),
            sweeps_planned=policy.sweep_count(),
            current_sweep=current,
            sweep_progress=progress,
        )


def resolve_probe_ports(ports, dataset) -> tuple[list[int], str]:
    """(ports to probe, probe proto) for a dataset.

    Explicit *ports* win (probed as the dataset's protocol); otherwise
    the dataset's watched port list is the target set, exactly what the
    build-time scanner sweeps.  DTCPall watches *all* TCP ports --
    online-probing 65k ports per address is a budget decision the
    operator must make, so it requires an explicit list.
    """
    if dataset.tcp_ports is not None and dataset.tcp_ports:
        proto = "tcp"
        default = sorted(dataset.tcp_ports)
    elif dataset.udp_ports:
        proto = "udp"
        default = sorted(dataset.udp_ports)
    elif dataset.tcp_ports is None:
        proto = "tcp"
        default = None
    else:
        proto = "tcp"
        default = []
    if ports is not None:
        return (sorted(ports), proto)
    if default is None:
        raise ValueError(
            f"dataset {dataset.spec.name} watches all TCP ports; online "
            f"probing needs an explicit --probe-ports list"
        )
    if not default:
        raise ValueError(
            f"dataset {dataset.spec.name} watches no ports; pass "
            f"--probe-ports to probe online"
        )
    return (default, proto)


def build_prober(
    dataset,
    policy_name: str | None,
    rate: float,
    ports,
    seed: int,
    end: float,
) -> ProbeScheduler | None:
    """The scheduler for one stream run, or ``None`` when probing is off.

    Deterministic in its arguments: the engine and the fabric
    supervisor build identical schedulers from the same
    :class:`~repro.stream.engine.StreamConfig`.
    """
    if policy_name is None:
        return None
    from repro.probe.policy import build_policy

    probe_ports, proto = resolve_probe_ports(ports, dataset)
    policy = build_policy(
        policy_name,
        dataset.probe_targets(),
        probe_ports,
        rate,
        seed,
        dataset.calendar,
        end,
    )
    return ProbeScheduler(dataset.population, policy, proto=proto)
