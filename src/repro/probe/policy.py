"""Probe scheduling policies: when to probe which (address, port).

A policy is a pure function of an integer task index: ``task(k)``
returns the *k*-th probe as ``(when, address, port)`` or ``None`` once
the schedule is exhausted.  That shape is what makes online probing
checkpointable with one integer -- the scheduler persists its cursor,
and a resumed run replays the identical tail of the schedule because
nothing about a task depends on when the engine happened to call for
it.

Two policies, the two sides of the trade-off this repo measures:

* :class:`PeriodicSweepPolicy` -- the paper's every-12-hours Nmap
  sweep, run online.  Sweep start times come from
  :func:`repro.active.schedule.scan_start_times` (11:00 and 23:00);
  each sweep walks the target list once at a linear pace.
* :class:`HeartbeatPolicy` -- Beverly & Allman's "Internet Heartbeat"
  prober: the same probe budget spread uniformly in time, one probe
  every ``1/rate`` seconds, walking a seeded random permutation of the
  (address, port) space.  One full pass over the permutation is one
  coverage "sweep".

Both policies treat ``rate <= 0`` as a null budget: no probes are ever
scheduled, so an online run at rate 0 is byte-identical to the passive
path.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.active.schedule import scan_start_times
from repro.simkernel.clock import Calendar, hours
from repro.simkernel.rng import derive_seed

#: Nominal length of one online periodic sweep -- the paper's 90-120
#: minute runs (the same figure as the build-time scanner's
#: ``SCAN_SWEEP_SECONDS``; duplicated so ``repro.probe`` does not pull
#: in the dataset builder at import time).
SWEEP_SECONDS = hours(1.75)

#: One scheduled probe: (dataset time, address, TCP/UDP port).
ProbeTask = tuple[float, int, int]

#: Policy names the CLI accepts, in help order.
POLICY_NAMES = ("periodic", "heartbeat")


class PeriodicSweepPolicy:
    """The paper's every-12-hours sweep, scheduled online.

    Sweeps begin at the scheduled 11:00/23:00 times; within a sweep,
    address ``i`` is probed at ``start + i * (duration / targets)``
    with every port probed at that instant (one scanning machine, the
    simplest deterministic walk).  The nominal 105-minute sweep is
    stretched when the probe budget demands it -- ``duration =
    max(nominal, probes / rate)``, the scanner's polite-timing rule --
    and a stretched sweep that overruns the next scheduled start pushes
    that sweep back to its own end: sweeps run back to back, never
    concurrently.
    """

    name = "periodic"

    def __init__(
        self,
        targets: Sequence[int],
        ports: Sequence[int],
        rate: float,
        calendar: Calendar,
        end: float,
    ) -> None:
        self.targets = list(targets)
        self.ports = list(ports)
        self.rate = float(rate)
        self.sweep_size = len(self.targets) * len(self.ports)
        starts: list[float] = []
        duration = 0.0
        if self.rate > 0 and self.sweep_size:
            duration = max(SWEEP_SECONDS, self.sweep_size / self.rate)
            previous_end: float | None = None
            for scheduled in scan_start_times(calendar, 0.0, end):
                start = scheduled
                if previous_end is not None and start < previous_end:
                    start = previous_end
                if start >= end:
                    # Pushed past the stream: this sweep (and every
                    # later one) would never begin.
                    break
                starts.append(start)
                previous_end = start + duration
        self.duration = duration
        self.starts = starts

    @property
    def total_tasks(self) -> int:
        return len(self.starts) * self.sweep_size

    def task(self, k: int) -> ProbeTask | None:
        if k >= self.total_tasks:
            return None
        sweep, within = divmod(k, self.sweep_size)
        address_index, port_index = divmod(within, len(self.ports))
        step = self.duration / len(self.targets)
        when = self.starts[sweep] + address_index * step
        return (when, self.targets[address_index], self.ports[port_index])

    def sweep_of(self, k: int) -> int:
        return k // self.sweep_size

    def sweep_count(self) -> int:
        """Sweeps the schedule will start before the stream ends."""
        return len(self.starts)

    def sweep_bounds(self, sweep: int) -> tuple[float, float]:
        """(start, nominal end) of one sweep."""
        start = self.starts[sweep]
        return (start, start + self.duration)


class HeartbeatPolicy:
    """A continuous low-rate prober (Beverly & Allman's heartbeat).

    Spreads the probe budget uniformly in time: probe ``k`` fires at
    ``(k + 1) / rate``, walking a seeded random permutation of the
    (address, port) pairs and wrapping around indefinitely.  A full
    pass over the permutation is one coverage "sweep" -- the moment
    every pair has been probed at least once more, which is the
    heartbeat's analogue of a completed Nmap run (and what negative
    liveness evidence keys on).
    """

    name = "heartbeat"

    def __init__(
        self,
        targets: Sequence[int],
        ports: Sequence[int],
        rate: float,
        seed: int,
        end: float,
    ) -> None:
        pairs = [(address, port) for address in targets for port in ports]
        rng = random.Random(derive_seed(seed, "probe.heartbeat"))
        rng.shuffle(pairs)
        self.pairs = pairs
        self.rate = float(rate)
        self.end = float(end)
        self.sweep_size = len(pairs)

    def task(self, k: int) -> ProbeTask | None:
        if self.rate <= 0 or not self.pairs:
            return None
        when = (k + 1) / self.rate
        if when > self.end:
            return None
        address, port = self.pairs[k % self.sweep_size]
        return (when, address, port)

    def sweep_of(self, k: int) -> int:
        return k // self.sweep_size

    def sweep_count(self) -> int:
        """Complete coverage passes that fit before the stream ends."""
        if self.rate <= 0 or not self.pairs:
            return 0
        return int(self.end * self.rate) // self.sweep_size

    def sweep_bounds(self, sweep: int) -> tuple[float, float]:
        """(first probe time, last probe time) of one coverage pass."""
        start = (sweep * self.sweep_size + 1) / self.rate
        return (start, ((sweep + 1) * self.sweep_size) / self.rate)


def build_policy(
    name: str,
    targets: Sequence[int],
    ports: Sequence[int],
    rate: float,
    seed: int,
    calendar: Calendar,
    end: float,
):
    """Construct the named policy (the CLI/engine entry point)."""
    if name == "periodic":
        return PeriodicSweepPolicy(targets, ports, rate, calendar, end)
    if name == "heartbeat":
        return HeartbeatPolicy(targets, ports, rate, seed, end)
    raise ValueError(
        f"unknown probe policy {name!r}; expected one of {POLICY_NAMES}"
    )
