"""Benchmark: regenerate Figure 12: winter break (paper Section 5.5).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure12(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure12", bench_seed, bench_scale)
    m = result.metrics
    # Break passive completeness beats mid-semester (paper: 82 vs 73).
    assert m["break_passive_pct"] > m["semester_11d_passive_pct"]
    assert m["break_passive_pct"] > 70.0
    assert m["break_static_passive_pct"] > 70.0
