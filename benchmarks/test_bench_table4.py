"""Benchmark: regenerate Table 4: extended categorisation + firewall confirmation (paper Section 4.2.4).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table4(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table4", bench_seed, bench_scale)
    m = result.metrics
    # The dominant row is semi-idle static servers, as in the paper.
    assert m["semi-idle"] > m["active_server_address"]
    assert m["intermittent_idle"] > m["intermittent_active"]
    # Firewall confirmation: method 1 confirms the large majority.
    if m["firewall_candidates"] > 0:
        assert m["firewall_method1"] >= 0.5 * m["firewall_candidates"]
