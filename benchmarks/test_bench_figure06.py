"""Benchmark: regenerate Figure 6: discovery by protocol (paper Section 4.4.3).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure06(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure06", bench_seed, bench_scale)
    m = result.metrics
    assert m["active_ssh_pct"] > 90.0
    assert m["active_ftp_pct"] > 90.0
    if bench_scale >= 0.5:  # MySQL is a tiny population; needs paper scale
        assert m["passive_mysql_pct"] < m["active_mysql_pct"] - 20.0
        assert m["passive_web_pct"] > m["passive_mysql_pct"]
