"""Benchmark: regenerate Table 1: dataset inventory (paper Section 3.3).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table1(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table1", bench_seed, bench_scale)
    assert result.metrics["dataset_count"] == 8
    assert result.metrics["main_address_count"] == 16_130
