"""Benchmark: regenerate Table 8: per-link perspectives (paper Section 5.2).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table8(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table8", bench_seed, bench_scale)
    m = result.metrics
    # Any commercial link sees most servers; Internet2 a minority.
    assert m["DTCP1-18d_commercial1_pct"] > 60.0
    assert m["DTCP1-18d_commercial2_pct"] > 40.0
    if bench_scale >= 0.5:  # link shares concentrate at paper scale
        assert m["DTCP1-18d_commercial1_pct"] > 75.0
        assert m["DTCP1-18d_commercial2_pct"] > 75.0
    assert m["DTCPbreak_internet2_pct"] < 60.0
    assert m["DTCPbreak_internet2_pct"] < m["DTCPbreak_commercial1_pct"]
    # Commercial-1 carries more exclusives than commercial-2.
    assert m["DTCP1-18d_commercial1_exclusive"] >= m["DTCP1-18d_commercial2_exclusive"]
