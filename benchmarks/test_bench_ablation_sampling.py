"""Ablation: the three sampling strategies at equal average coverage.

Section 5.3 evaluates fixed-period sampling and names two alternatives
as future work; we implemented them
(:class:`~repro.passive.sampling.ProbabilisticSampler`,
:class:`~repro.passive.sampling.CountBudgetSampler`) and compare all
three at the same ~17 % average coverage (the paper's 10-minutes-of-
each-hour point).

Measured ordering, which this bench asserts: **fixed-period wins**.
Service evidence is bursty -- an external sweep delivers hundreds of
SYN-ACKs in minutes -- so a contiguous kept window captures whole
segments of a sweep, while per-packet probabilistic thinning keeps a
rarely-seen server's single SYN-ACK only with probability p.
Count-budget sampling is worst: its per-hour budget is consumed by the
popular servers' flood at the top of each hour, leaving it blind when a
scan arrives mid-hour.  This is the quantitative version of the paper's
own observation that fixed-period sampling interacts favourably with
external scans (Section 5.3).
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.passive.monitor import PassiveServiceTable
from repro.passive.sampling import (
    CountBudgetSampler,
    FixedPeriodSampler,
    ProbabilisticSampler,
    SamplingTable,
)


def _compare(scale: float, seed: int):
    from repro.experiments.common import get_context

    context = get_context("DTCP1-18d", seed, scale)
    dataset = context.dataset

    def fresh_table(**kwargs):
        return PassiveServiceTable(
            is_campus=dataset.is_campus, tcp_ports=dataset.tcp_ports, **kwargs
        )

    fixed = fresh_table(sampler=FixedPeriodSampler(sample_minutes=10))
    probabilistic = SamplingTable(
        fresh_table(), ProbabilisticSampler(probability=10 / 60, salt=seed)
    )
    # Budget chosen to keep ~17% of the average per-hour record volume.
    per_hour = context.records_replayed / (dataset.duration / 3600.0)
    budget = SamplingTable(
        fresh_table(), CountBudgetSampler(budget_per_period=max(1, int(per_hour / 6)))
    )
    dataset.replay(fixed, probabilistic, budget)
    baseline = len(context.table.server_addresses())
    return {
        "baseline": baseline,
        "fixed-period 10min/h": len(fixed.server_addresses()),
        "probabilistic p=1/6": len(probabilistic.table.server_addresses()),
        "count-budget": len(budget.table.server_addresses()),
        "budget_fraction": budget.observed_fraction,
    }


def test_bench_ablation_sampling_strategies(benchmark):
    results = benchmark.pedantic(
        _compare, args=(BENCH_SCALE, BENCH_SEED), rounds=1, iterations=1
    )
    print("\nAblation (sampling strategies at ~17% coverage):")
    for name in ("baseline", "fixed-period 10min/h", "probabilistic p=1/6",
                 "count-budget"):
        share = 100.0 * results[name] / results["baseline"]
        print(f"  {name:<22} {results[name]:>5} servers ({share:.0f}%)")
        benchmark.extra_info[name] = results[name]
    baseline = results["baseline"]
    assert results["fixed-period 10min/h"] >= results["probabilistic p=1/6"]
    assert results["fixed-period 10min/h"] > 0.6 * baseline
    # Count-budget sampling shows the worst retention at comparable
    # coverage: its budget dies at the top of each hour.
    assert results["count-budget"] <= results["fixed-period 10min/h"]
