"""Benchmark: regenerate Table 7: UDP discovery (paper Section 4.5).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table7(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table7", bench_seed, bench_scale)
    m = result.metrics
    # Possibly-open dwarfs definite opens; NetBIOS dominates it.
    assert m["possibly_open"] > 10 * m["definitely_open"]
    assert m["netbios_possibly_open"] > 0.5 * m["possibly_open"]
    # Passive UDP finds few services, nearly all confirmed by active.
    assert m["passive_total"] < m["definitely_open"] * 3
