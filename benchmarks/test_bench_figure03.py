"""Benchmark: regenerate Figure 3: 90-day vs 18-day passive monitoring (paper Section 4.2.2).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure03(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure03", bench_seed, bench_scale)
    m = result.metrics
    # 90 days finds more than 18; static discovery nearly flattens
    # while all-hosts keeps climbing (address churn).
    assert m["90d_total"] > m["18d_total"]
    assert m["90d_all_last5d_per_hour"] > 2 * m["90d_static_last5d_per_hour"]
