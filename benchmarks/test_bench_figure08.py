"""Benchmark: regenerate Figure 8: fixed-period sampling (paper Section 5.3).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure08(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure08", bench_seed, bench_scale)
    m = result.metrics
    # Sampling/coverage is non-linear: 50% of the data loses only a few
    # percent of servers (paper: 5%); 17% loses ~11%.
    assert m["drop_pct_30min"] < 15.0
    assert m["drop_pct_30min"] <= m["drop_pct_10min"] <= m["drop_pct_2min"]
    assert m["drop_pct_2min"] < 65.0
