"""Benchmark: regenerate Figure 5: discovery by address transience (paper Section 4.4.2).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure05(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure05", bench_seed, bench_scale)
    m = result.metrics
    # VPN: active finds many, passive near none (paper: ~100 vs ~10).
    assert m["active_vpn"] > 5 * max(m["passive_vpn"], 1.0)
    # PPP inverts: passive at least matches active (paper: +15%).
    assert m["passive_ppp"] >= 0.85 * m["active_ppp"]
    # DHCP behaves like the general population: active ahead.
    assert m["active_dhcp"] > m["passive_dhcp"]
