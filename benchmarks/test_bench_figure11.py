"""Benchmark: regenerate Figure 11: open-port scatter bands (paper Section 5.4).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure11(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure11", bench_seed, bench_scale)
    m = result.metrics
    # External scans let passive find all sshd/ftpd; NT services stay
    # active-only; a few passive-only web births and high ports.
    assert m["ssh_passive"] >= 0.9 * m["ssh_union"]
    assert m["ftp_passive"] >= 0.9 * m["ftp_union"]
    assert m["epmap_passive"] == 0
    assert m["epmap_active"] > 50 * bench_scale
    assert m["web_passive_only"] >= 3
    assert m["high_port_passive_only"] >= 3
