"""Benchmark: regenerate Figure 4: the effect of external scans (paper Section 4.3).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure04(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure04", bench_seed, bench_scale)
    m = result.metrics
    # Removing detected scanners costs passive a third-ish of its
    # discoveries (paper: 36%) and the equivalent of days of observation
    # (paper: 9-15 days).
    assert 15.0 < m["reduction_pct"] < 60.0
    assert m["scanners_detected"] >= 5
    assert m["equivalent_days"] > 2.0
