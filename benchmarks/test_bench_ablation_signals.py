"""Ablation: SYN-ACK evidence vs full-handshake confirmation.

DESIGN.md design decision 1: the paper takes any SYN-ACK from a campus
host as service evidence.  The stricter alternative -- count a service
only after the client's final ACK completes the handshake -- discards
exactly the responses elicited by external half-open scans, which
Section 4.3 shows passive monitoring depends on.  This benchmark
quantifies the cost of the stricter signal.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.passive.monitor import PassiveServiceTable, ServiceSignal


def _tables(scale, seed):
    from repro.experiments.common import get_dataset

    dataset = get_dataset("DTCP1-18d", seed, scale)
    synack = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        signal=ServiceSignal.SYNACK,
    )
    handshake = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        signal=ServiceSignal.HANDSHAKE,
    )
    dataset.replay(synack, handshake)
    return synack, handshake


def test_bench_ablation_service_signal(benchmark):
    synack, handshake = benchmark.pedantic(
        _tables, args=(BENCH_SCALE, BENCH_SEED), rounds=1, iterations=1
    )
    loose = len(synack.server_addresses())
    strict = len(handshake.server_addresses())
    benchmark.extra_info.update(
        {"synack_servers": loose, "handshake_servers": strict}
    )
    print(
        f"\nAblation (service evidence signal): SYN-ACK finds {loose} "
        f"servers; handshake-confirmed finds {strict} "
        f"({100 * (loose - strict) / loose:.0f}% fewer -- the share of "
        "passive discovery owed to half-open external scans)."
    )
    # The strict signal must lose a substantial share: it forfeits every
    # scan-revealed idle server.
    assert strict < loose
    assert (loose - strict) / loose > 0.15
    # But every handshake-confirmed server is also a SYN-ACK server.
    assert handshake.server_addresses() <= synack.server_addresses()
