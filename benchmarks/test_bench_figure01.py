"""Benchmark: regenerate Figure 1: weighted vs unweighted 12-hour discovery (paper Section 4.1.2).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure01(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure01", bench_seed, bench_scale)
    m = result.metrics
    # Passive covers 99% of flow- and client-weight within the first
    # hour(s); the active sweep needs over an hour (paper: 5/14 min vs
    # "well over an hour").
    if bench_scale >= 0.5:  # the weighted tail thins out at paper scale
        assert m["passive_flow_weighted_t99_minutes"] < 90.0
        assert m["passive_client_weighted_t99_minutes"] < 90.0
        assert m["active_flow_weighted_t99_minutes"] > 60.0
    assert (
        m["passive_flow_weighted_t99_minutes"]
        <= m["active_flow_weighted_t99_minutes"]
    )
