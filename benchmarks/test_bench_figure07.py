"""Benchmark: regenerate Figure 7: scan time-of-day and frequency (paper Section 5.1).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure07(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure07", bench_seed, bench_scale)
    m = result.metrics
    # Full 12-hourly schedule beats every once-daily subset; day-only
    # edges night-only; both directions miss servers the other finds.
    assert m["every_12_hours_pct"] >= m["day_only_pct"]
    assert m["every_12_hours_pct"] >= m["night_only_pct"]
    assert m["day_only_pct"] >= m["night_only_pct"] - 1.0
    assert m["day_not_night"] > 0
    assert m["night_not_day"] > 0
    assert 0.0 <= m["frequency_cost_pct"] < 20.0
