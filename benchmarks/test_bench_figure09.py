"""Benchmark: regenerate Figure 9: all-ports 24-hour weighted discovery (paper Section 5.4).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure09(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure09", bench_seed, bench_scale)
    m = result.metrics
    # One server dominates the subnet (paper: 97% of connections) and
    # passive covers nearly all weight quickly.
    assert m["dominant_server_flow_share_pct"] > 90.0
    assert m["passive_flow_weighted_final"] > 95.0
