"""Benchmark: regenerate Figure 10: all-ports 10-day discovery (paper Section 5.4).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure10(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure10", bench_seed, bench_scale)
    m = result.metrics
    # Passive tops out at roughly half the union (paper: 131, ~52%).
    assert 35.0 < m["passive_share_of_union_pct"] < 70.0
    assert m["active_total"] > m["passive_total"]
