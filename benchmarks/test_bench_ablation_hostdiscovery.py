"""Ablation: host discovery before port scanning.

The paper scanned every address with no host-discovery phase and notes
the all-ports sweep "would be much faster if host scanning eliminated
probes of unpopulated addresses" (Section 5.4).  This bench measures
the trade-off on the main campus: probe-budget savings vs servers lost
to fully-dark firewalls that make live hosts look unpopulated.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.active.prober import HalfOpenScanner
from repro.net.ports import SELECTED_TCP_PORTS
from repro.simkernel.clock import hours


def _compare(scale: float, seed: int):
    from repro.experiments.common import get_dataset

    dataset = get_dataset("DTCP1-18d", seed, scale)
    scanner = HalfOpenScanner(dataset.population)
    targets = dataset.probe_targets()
    exhaustive = scanner.scan(
        targets, SELECTED_TCP_PORTS, start=hours(1), duration=hours(1.75)
    )
    fast, stats = scanner.scan_with_host_discovery(
        targets, SELECTED_TCP_PORTS, start=hours(1), duration=hours(1.75)
    )
    return exhaustive, fast, stats


def test_bench_ablation_host_discovery(benchmark):
    exhaustive, fast, stats = benchmark.pedantic(
        _compare, args=(BENCH_SCALE, BENCH_SEED), rounds=1, iterations=1
    )
    exhaustive_found = len(exhaustive.open_addresses())
    fast_found = len(fast.open_addresses())
    lost = exhaustive_found - fast_found
    print(
        f"\nAblation (host discovery): exhaustive sweep {stats.probes_naive:,} "
        f"probes -> {exhaustive_found} servers; two-phase "
        f"{stats.probes_sent:,} probes ({stats.savings_pct:.0f}% saved) -> "
        f"{fast_found} servers ({lost} lost)."
    )
    benchmark.extra_info.update(
        {
            "probes_naive": stats.probes_naive,
            "probes_sent": stats.probes_sent,
            "savings_pct": round(stats.savings_pct, 1),
            "servers_exhaustive": exhaustive_found,
            "servers_fast": fast_found,
        }
    )
    # The optimisation must deliver substantial savings...
    assert stats.savings_pct > 40.0
    # ...while losing only a small fraction of discoveries (probe-time
    # jitter on transient hosts plus dark firewalls).
    assert fast_found >= 0.85 * exhaustive_found
