"""Benchmark: regenerate Table 2: completeness at growing durations (paper Sections 4.1/4.2.4).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table2(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table2", bench_seed, bench_scale)
    m = result.metrics
    # Who wins and by roughly what factor (paper: 98/19 at 12 h, 94/71 at 18 d).
    assert m["active_pct_12h"] > 90.0
    assert m["passive_pct_12h"] < 35.0
    assert m["active_pct_12h"] > 2.5 * m["passive_pct_12h"]
    assert 55.0 < m["passive_pct_18d"] < 85.0
    assert m["active_pct_18d"] > m["passive_pct_18d"]
    assert 0.5 < m["passive_only_pct_18d"] < 12.0
