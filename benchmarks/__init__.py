"""Benchmark suite: one module per paper table and figure."""
