"""Benchmark: regenerate Table 3: 12-hour categorisation (paper Section 4.1.1).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table3(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table3", bench_seed, bench_scale)
    m = result.metrics
    # Idle servers dwarf active ones; a sliver is passive-only.
    assert m["idle_server_address"] > 2 * m["active_server_address"]
    assert 0 < m["firewalled_address_or_birth"] < m["active_server_address"]
    assert m["non-server_address"] > 10_000 * bench_scale
