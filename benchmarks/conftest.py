"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at
paper scale (16,130 addresses) by default, printing the reproduced rows
and asserting the shape properties DESIGN.md calls out.  Heavy builds
(dataset synthesis + trace replays) happen once per session through the
experiment-layer caches; the *measured* portion of each benchmark is
the analysis that turns observations into the table/figure.

Environment knobs::

    REPRO_BENCH_SCALE   population scale (default 1.0)
    REPRO_BENCH_SEED    master seed (default 0)

At paper scale the suite takes ~20 minutes on one core (the 90-day
dataset dominates); ``REPRO_BENCH_SCALE=0.25`` runs the same shape
checks on a quarter-size campus in a few minutes, with a handful of
assertions that need paper-scale statistics automatically relaxed.
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def run_and_report(benchmark, experiment_name: str, seed: int, scale: float):
    """Warm the caches, measure the analysis, print the reproduction.

    The first call builds datasets and replays traces (excluded from
    timing by running it before ``benchmark``); the measured call hits
    the caches and times the experiment's own analysis.  The trace
    passes behind the warm-up are served by the record-once trace cache
    (``REPRO_TRACE_CACHE``); its hit/miss/throughput counters are
    recorded in ``extra_info`` alongside the experiment metrics.
    """
    from repro.experiments.runner import run_experiment
    from repro.trace.cache import replay_stats_snapshot

    stats_before = replay_stats_snapshot()
    warm = run_experiment(experiment_name, seed, scale)

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_name, seed, scale),
        rounds=1,
        iterations=1,
    )
    stats_after = replay_stats_snapshot()
    benchmark.extra_info.update(
        {key: round(value, 3) for key, value in result.metrics.items()}
    )
    seconds = stats_after.replay_seconds - stats_before.replay_seconds
    records = stats_after.records_replayed - stats_before.records_replayed
    benchmark.extra_info.update(
        trace_cache_hits=stats_after.hits - stats_before.hits,
        trace_cache_misses=stats_after.misses - stats_before.misses,
        replay_records_per_sec=round(records / seconds, 1) if seconds > 0 else 0.0,
    )
    print()
    print(result.render())
    del warm
    return result
