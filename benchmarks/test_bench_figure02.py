"""Benchmark: regenerate Figure 2: 18-day discovery, all vs static (paper Section 4.2).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_figure02(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "figure02", bench_seed, bench_scale)
    m = result.metrics
    # All-hosts discovery keeps going; static-only slows far more
    # (paper: ~1/hour vs ~1/3 hours in the last five days).
    assert m["passive_all_last5d_per_hour"] > m["passive_static_last5d_per_hour"]
    # Most active discoveries come from the first scan (paper: 62%).
    assert 0.4 < m["active_first_scan_share"] < 0.9
    assert m["active_total"] > m["passive_total"]
