"""Benchmark: regenerate Table 5: web root-page content (paper Section 4.4.1).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table5(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table5", bench_seed, bench_scale)
    m = result.metrics
    # Custom content is found passively essentially completely.
    assert m["custom_passive_pct"] > 90.0
    # Config/status pages split between the methods; no-response is big
    # and transient-driven.
    assert m["no_response_total"] > 0.1 * (
        m["custom_content_total"] + m["default_content_total"]
        + m["config_status_pages_total"] + 1
    )
    assert m["config_status_pages_active_only"] > 0
