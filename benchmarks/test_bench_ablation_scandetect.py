"""Ablation: sensitivity of the external-scan detection thresholds.

DESIGN.md design decision 2: the paper flags sources contacting >=100
campus addresses with >=100 RST responses within 12 hours.  This
benchmark sweeps the thresholds and reports how the detected-scanner
set and the resulting scan-removal effect change -- loose thresholds
start flagging legitimate clients; tight ones let small sweeps through.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def _sweep(scale, seed):
    from repro.experiments.common import get_context

    context = get_context("DTCP1-18d", seed, scale)
    detector = context.detector
    return {
        thresholds: detector.scanners_with(*thresholds)
        for thresholds in ((25, 25), (50, 50), (100, 100), (200, 200), (400, 400))
    }


def test_bench_ablation_scandetect_thresholds(benchmark):
    by_threshold = benchmark.pedantic(
        _sweep, args=(BENCH_SCALE, BENCH_SEED), rounds=1, iterations=1
    )
    from repro.experiments.common import get_context

    context = get_context("DTCP1-18d", BENCH_SEED, BENCH_SCALE)
    actual = context.dataset.mix.scan_plan.scanner_addresses()

    print("\nAblation (scan-detection thresholds):")
    counts = {}
    for (min_targets, min_rsts), flagged in sorted(by_threshold.items()):
        false_positives = flagged - actual
        counts[min_targets] = len(flagged)
        print(
            f"  targets>={min_targets:>3}, rsts>={min_rsts:>3}: "
            f"{len(flagged):>3} flagged, {len(false_positives)} false positives"
        )
        benchmark.extra_info[f"flagged_{min_targets}"] = len(flagged)
        # No legitimate client emits hundreds of RSTs-drawing SYNs, so
        # the detector must never flag a non-scanner at any threshold.
        assert not false_positives
    # Monotone: loosening thresholds can only add scanners.
    assert counts[25] >= counts[100] >= counts[400]
    assert counts[100] > 0
