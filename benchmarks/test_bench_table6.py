"""Benchmark: regenerate Table 6: discovery by service type (paper Section 4.4.3).

Builds the underlying dataset(s) at paper scale, measures the analysis
that produces the reproduction, prints the reproduced rows/series next
to the paper's numbers, and asserts the shape properties hold.
"""

from benchmarks.conftest import run_and_report


def test_bench_table6(benchmark, bench_seed, bench_scale):
    result = run_and_report(benchmark, "table6", bench_seed, bench_scale)
    m = result.metrics
    # Active near-complete for FTP/SSH; MySQL splits (paper: 96 vs 52).
    assert m["ftp_active_pct"] > 90.0
    assert m["ssh_active_pct"] > 90.0
    assert m["mysql_active_pct"] > 85.0
    if m["mysql_union"] >= 20:  # statistically meaningful only near paper scale
        assert m["mysql_passive_pct"] < m["mysql_active_pct"] - 20.0
    assert m["web_union"] > m["ssh_union"] > m["mysql_union"]
