"""Benchmark: trace-replay throughput, generated vs. cached.

The record-once trace cache is the repo's single biggest wall-clock
lever: every analysis pass after the first should stream the stored
binary trace through the batched reader instead of regenerating the
synthetic traffic.  This benchmark measures both paths over the same
dataset with the standard observer set and records their throughput
(records/sec) in ``extra_info``, so the speedup is tracked in the perf
trajectory.  The acceptance floor is a 2x advantage for the cached
path; measured speedups are typically 3-4x.
"""

from __future__ import annotations

import time

DATASET = "DTCP1-18d"


def _fresh_observers(dataset):
    from repro.passive.monitor import PassiveServiceTable
    from repro.passive.scandetect import ExternalScanDetector

    table = PassiveServiceTable(
        is_campus=dataset.is_campus,
        tcp_ports=dataset.tcp_ports,
        udp_ports=dataset.udp_ports,
        links=frozenset(dataset.spec.monitored_links),
    )
    return table, ExternalScanDetector(is_campus=dataset.is_campus)


def test_bench_replay_throughput(benchmark, bench_seed, bench_scale):
    from repro.experiments.common import get_dataset
    from repro.passive.monitor import replay, replay_batched
    from repro.trace.cache import default_trace_cache
    from repro.trace.format import read_records_chunked

    dataset = get_dataset(DATASET, bench_seed, bench_scale)
    cache = default_trace_cache()
    assert cache.enabled, "replay benchmark needs the trace cache enabled"

    # Warm: ensure the trace is recorded (tees generation on first use).
    dataset.replay(*_fresh_observers(dataset))
    trace_path = cache.lookup(dataset.trace_cache_key)
    assert trace_path is not None

    # Reference path: regenerate the stream per pass (the pre-cache cost).
    started = time.perf_counter()
    generated_count = replay(dataset._generate_stream(), *_fresh_observers(dataset))
    generated_seconds = time.perf_counter() - started

    # Measured path: batched replay from the stored trace.
    def cached_pass():
        return replay_batched(
            read_records_chunked(trace_path), *_fresh_observers(dataset)
        )

    started = time.perf_counter()
    cached_count = benchmark.pedantic(cached_pass, rounds=1, iterations=1)
    cached_seconds = time.perf_counter() - started

    assert cached_count == generated_count
    generated_rps = generated_count / generated_seconds
    cached_rps = cached_count / cached_seconds
    speedup = cached_rps / generated_rps
    benchmark.extra_info.update(
        records=cached_count,
        generated_records_per_sec=round(generated_rps, 1),
        cached_records_per_sec=round(cached_rps, 1),
        cached_vs_generated_speedup=round(speedup, 2),
        trace_bytes=trace_path.stat().st_size,
    )
    print(
        f"\nreplay throughput ({DATASET}, scale {bench_scale}): "
        f"generated {generated_rps:,.0f} rec/s, cached {cached_rps:,.0f} rec/s "
        f"({speedup:.2f}x, {cached_count:,} records)"
    )
    # The whole point of record-once/analyze-many.
    assert speedup >= 2.0
