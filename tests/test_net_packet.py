"""Tests for repro.net.packet and repro.net.flow."""

import pytest

from repro.net.flow import FlowKey, FlowRecord
from repro.net.packet import (
    ICMP_PORT_UNREACHABLE,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PacketRecord,
    TcpFlags,
    icmp_port_unreachable,
    tcp_rst,
    tcp_syn,
    tcp_synack,
    udp_datagram,
)


class TestTcpFlags:
    def test_syn_only(self):
        assert TcpFlags.SYN.is_syn
        assert not TcpFlags.SYN.is_synack
        assert not TcpFlags.SYN.is_rst

    def test_synack(self):
        flags = TcpFlags.SYN | TcpFlags.ACK
        assert flags.is_synack
        assert not flags.is_syn

    def test_rst(self):
        assert TcpFlags.RST.is_rst
        assert (TcpFlags.RST | TcpFlags.ACK).is_rst

    def test_bare_ack_is_neither(self):
        assert not TcpFlags.ACK.is_syn
        assert not TcpFlags.ACK.is_synack


class TestConstructors:
    def test_tcp_syn(self):
        record = tcp_syn(1.0, 10, 20, 4000, 80, "commercial1")
        assert record.is_tcp and record.flags.is_syn
        assert (record.src, record.dst) == (10, 20)
        assert (record.sport, record.dport) == (4000, 80)
        assert record.link == "commercial1"

    def test_tcp_synack_mirrors_ports(self):
        record = tcp_synack(1.1, 20, 10, 80, 4000)
        assert record.flags.is_synack
        assert record.sport == 80

    def test_tcp_rst(self):
        assert tcp_rst(0.0, 1, 2, 80, 999).flags.is_rst

    def test_udp(self):
        record = udp_datagram(2.0, 1, 2, 53, 5353)
        assert record.is_udp
        assert record.flags is TcpFlags.NONE

    def test_icmp_quotes_probe_ports(self):
        record = icmp_port_unreachable(3.0, 2, 1, 40000, 137)
        assert record.is_icmp
        assert record.icmp == ICMP_PORT_UNREACHABLE
        assert (record.sport, record.dport) == (40000, 137)

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            PacketRecord(0.0, 1, 2, 70000, 80, PROTO_TCP)
        with pytest.raises(ValueError):
            PacketRecord(0.0, 1, 2, 80, -1, PROTO_TCP)


class TestFlowKey:
    def test_str_tcp(self):
        key = FlowKey(server=(128 << 24) | (125 << 16) | 7, port=80)
        assert str(key) == "128.125.0.7:80/tcp"

    def test_str_udp(self):
        key = FlowKey(server=1, port=53, proto=PROTO_UDP)
        assert str(key).endswith(":53/udp")

    def test_ordering(self):
        assert FlowKey(1, 80) < FlowKey(2, 21)


class TestFlowPackets:
    def test_accepted_tcp_flow_is_full_handshake(self):
        flow = FlowRecord(time=10.0, client=1, key=FlowKey(2, 80), rtt=0.1)
        packets = flow.packets()
        assert [p.flags for p in packets] == [
            TcpFlags.SYN,
            TcpFlags.SYN | TcpFlags.ACK,
            TcpFlags.ACK,
        ]
        syn, synack, ack = packets
        assert syn.time == 10.0
        assert synack.time == pytest.approx(10.1)
        assert ack.time == pytest.approx(10.2)
        # Direction: SYN and ACK from client, SYN-ACK from server.
        assert syn.src == ack.src == 1
        assert synack.src == 2
        assert synack.sport == 80

    def test_rejected_tcp_flow_is_lone_syn(self):
        flow = FlowRecord(time=0.0, client=1, key=FlowKey(2, 80), accepted=False)
        packets = flow.packets()
        assert len(packets) == 1
        assert packets[0].flags.is_syn

    def test_udp_flow_request_response(self):
        flow = FlowRecord(time=0.0, client=1, key=FlowKey(2, 53, PROTO_UDP))
        packets = flow.packets()
        assert len(packets) == 2
        assert packets[0].dport == 53
        assert packets[1].sport == 53

    def test_link_propagates(self):
        flow = FlowRecord(
            time=0.0, client=1, key=FlowKey(2, 80), link="internet2"
        )
        assert {p.link for p in flow.packets()} == {"internet2"}

    def test_unknown_protocol_rejected(self):
        flow = FlowRecord(time=0.0, client=1, key=FlowKey(2, 80, proto=PROTO_ICMP))
        with pytest.raises(ValueError):
            flow.packets()
