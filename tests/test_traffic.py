"""Tests for the traffic generators."""

import pytest

from repro.campus.host import Host
from repro.campus.population import synthesize_population
from repro.campus.profiles import semester_profile
from repro.campus.service import ActivityPattern, Service
from repro.net.addr import AddressClass, parse_ipv4
from repro.net.packet import PROTO_TCP
from repro.simkernel.clock import Calendar, days, hours
from repro.simkernel.rng import RngStreams
from repro.traffic.clients import (
    ClientDirectory,
    client_flow_stream,
    service_flow_stream,
)
from repro.traffic.generator import TrafficMix, border_packet_stream, default_diurnal
from repro.traffic.links import (
    LINK_COMMERCIAL1,
    LINK_COMMERCIAL2,
    LINK_INTERNET2,
    is_academic_client,
    link_for_client,
    link_for_scanner,
)
from repro.traffic.noise import outbound_noise_stream
from repro.traffic.scans import ScanSweep, build_scan_plan, sweep_packet_stream


def quiet_host(address=None, rate=0.01, windows=None, port=80) -> Host:
    host = Host(
        host_id=0,
        category="test",
        address_class=AddressClass.STATIC,
        static_address=address or parse_ipv4("128.125.64.10"),
        up_windows=[(0.0, days(10))],
    )
    host.finalize()
    host.add_service(
        Service(
            host_id=0,
            port=port,
            activity=ActivityPattern(base_rate=rate, windows=windows, client_pool=5),
        )
    )
    return host


class TestLinks:
    def test_academic_clients_use_internet2(self):
        address = parse_ipv4("171.64.1.1")
        assert link_for_client(address, academic=True) == LINK_INTERNET2

    def test_commercial_split_deterministic(self):
        address = parse_ipv4("17.1.2.3")
        first = link_for_client(address, academic=False)
        assert first == link_for_client(address, academic=False)
        assert first in (LINK_COMMERCIAL1, LINK_COMMERCIAL2)

    def test_commercial_split_roughly_62_38(self):
        base = parse_ipv4("16.0.0.0")
        links = [link_for_client(base + i, False) for i in range(4000)]
        share = links.count(LINK_COMMERCIAL1) / len(links)
        assert 0.57 <= share <= 0.67

    def test_academic_fraction_statistics(self):
        base = parse_ipv4("16.0.0.0")
        count = sum(
            1 for i in range(4000) if is_academic_client(base + i, 0.25)
        )
        assert 0.20 <= count / 4000 <= 0.30

    def test_scanners_never_internet2(self):
        base = parse_ipv4("198.0.0.0")
        assert all(
            link_for_scanner(base + i) != LINK_INTERNET2 for i in range(500)
        )


class TestServiceFlowStream:
    def _stream(self, host, start=0.0, end=days(5)):
        streams = RngStreams(1)
        directory = ClientDirectory(streams)
        service = host.services[(80, PROTO_TCP)]
        return list(
            service_flow_stream(host, service, directory, streams, None, start, end)
        )

    def test_flows_sorted_in_range(self):
        flows = self._stream(quiet_host(rate=0.001))
        assert flows == sorted(flows, key=lambda f: f.time)
        assert all(0.0 <= f.time < days(5) for f in flows)

    def test_rate_controls_volume(self):
        few = self._stream(quiet_host(rate=0.0001))
        many = self._stream(quiet_host(rate=0.003))
        assert len(many) > len(few) * 3

    def test_silent_service_emits_nothing(self):
        assert self._stream(quiet_host(rate=0.0)) == []

    def test_activity_windows_respected(self):
        windows = ((hours(1), hours(3)),)
        flows = self._stream(quiet_host(rate=0.01, windows=windows))
        assert flows
        assert all(hours(1) <= f.time < hours(3) for f in flows)

    def test_host_downtime_gates_flows(self):
        host = quiet_host(rate=0.01)
        host.up_windows = [(hours(2), hours(4))]
        host.finalize()
        flows = self._stream(host)
        assert flows
        assert all(hours(2) <= f.time < hours(4) for f in flows)

    def test_clients_come_from_pool(self):
        flows = self._stream(quiet_host(rate=0.005))
        clients = {f.client for f in flows}
        assert 1 <= len(clients) <= 5

    def test_deterministic(self):
        first = [(f.time, f.client) for f in self._stream(quiet_host())]
        second = [(f.time, f.client) for f in self._stream(quiet_host())]
        assert first == second


class TestScans:
    @pytest.fixture(scope="class")
    def population(self):
        return synthesize_population(
            semester_profile(scale=0.05), seed=21, duration=days(18)
        )

    def test_plan_determinism(self, population):
        profile = semester_profile(scale=0.05)
        plan1 = build_scan_plan(profile.scan_climate, RngStreams(5), days(18))
        plan2 = build_scan_plan(profile.scan_climate, RngStreams(5), days(18))
        assert plan1 == plan2

    def test_plan_has_major_sweeps(self, population):
        profile = semester_profile(scale=0.05)
        plan = build_scan_plan(profile.scan_climate, RngStreams(5), days(18))
        full = [s for s in plan.sweeps if s.coverage >= 0.9]
        assert len(full) >= 5

    def test_sweep_packets(self, population):
        sweep = ScanSweep(
            scanner=parse_ipv4("198.51.100.7"),
            port=80,
            start=hours(10),
            rate=200.0,
            coverage=1.0,
            link=LINK_COMMERCIAL1,
        )
        packets = list(
            sweep_packet_stream(population, sweep, RngStreams(9), days(18))
        )
        syns = [p for p in packets if p.flags.is_syn]
        synacks = [p for p in packets if p.flags.is_synack]
        rsts = [p for p in packets if p.flags.is_rst]
        assert len(syns) == population.topology.space.size
        assert synacks, "a full web sweep must reveal some servers"
        assert rsts, "live non-servers must reset"
        # Responses attribute to the scanned address.
        for packet in synacks:
            assert packet.dst == sweep.scanner
            assert packet.sport == 80

    def test_sweep_respects_end(self, population):
        sweep = ScanSweep(
            scanner=parse_ipv4("198.51.100.7"),
            port=80,
            start=0.0,
            rate=1.0,  # 16k addresses would take hours
            coverage=1.0,
            link=LINK_COMMERCIAL1,
        )
        packets = list(
            sweep_packet_stream(population, sweep, RngStreams(9), end=100.0)
        )
        assert all(p.time < 100.0 + 1.0 for p in packets)
        assert len(packets) < 300


class TestNoiseAndMix:
    def test_outbound_noise_shape(self):
        population = synthesize_population(
            semester_profile(scale=0.05), seed=2, duration=days(2)
        )
        packets = list(
            outbound_noise_stream(population, RngStreams(3), 200.0, 0.0, days(2))
        )
        assert packets
        for packet in packets:
            inside_src = population.topology.contains(packet.src)
            inside_dst = population.topology.contains(packet.dst)
            # browse flows: SYN out (campus src) or SYN-ACK back in.
            assert inside_src != inside_dst

    def test_border_stream_deterministic(self):
        population = synthesize_population(
            semester_profile(scale=0.03), seed=2, duration=days(1)
        )
        mix = TrafficMix.quiet()
        first = [
            (p.time, p.src, p.dst)
            for p in border_packet_stream(population, mix, 7, 0.0, days(1))
        ]
        second = [
            (p.time, p.src, p.dst)
            for p in border_packet_stream(population, mix, 7, 0.0, days(1))
        ]
        assert first == second

    def test_diurnal_default(self):
        profile = default_diurnal(Calendar())
        assert profile.factor(hours(5)) > profile.factor(hours(17))
