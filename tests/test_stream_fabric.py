"""Distributed shard fabric: membership, chaos identity, checkpoint store.

The fabric's contract is that supervision is *invisible in the output*:
whatever combination of worker crashes, stalls, and falsely-dropped
heartbeats occurs, the merged report must stay byte-identical to the
single-process batch path.  The chaos tests here inject every fault
kind deterministically (seeded :class:`WorkerFaultPlan`) and assert
exactly that.  The checkpoint tests cover the new durability layers:
CRC-trailer corruption detection and per-shard generation fallback.
SIGKILL-based failure injection (worker and supervisor) lives in
``test_fabric_recovery.py``.
"""

from __future__ import annotations

import tempfile
import threading
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.worker import WorkerFaultPlan
from repro.stream import (
    CheckpointCorrupt,
    CheckpointError,
    FabricConfig,
    FabricDegradedError,
    FabricSupervisor,
    IngestStallError,
    Membership,
    ShardCheckpointStore,
    StreamConfig,
    StreamIngestor,
    batch_survey_report,
    checkpoint_config,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.shard import ShardState

SMALL = dict(dataset="DTCP1-18d", seed=7, scale=0.04)

#: Supervision tuned for tests: fast heartbeats so injected stalls and
#: dropped heartbeats are detected in fractions of a second.
FAST = dict(
    heartbeat_interval=0.05,
    miss_budget=4,
    restart_backoff=0.01,
    restart_backoff_max=0.05,
)


# ---- membership -------------------------------------------------------


def test_membership_join_heartbeat_lifecycle():
    ms = Membership(shards=2, heartbeat_interval=0.1, miss_budget=3,
                    join_timeout=5.0)
    assert not ms.overdue(0, now=100.0)  # never launched

    inc = ms.launch(0, now=0.0)
    assert inc == 0
    assert not ms.members[0].joined
    assert ms.join(0, inc, now=0.2, pid=42)
    assert ms.members[0].pid == 42
    assert ms.heartbeat(0, inc, now=0.5)
    assert ms.heartbeat_age(0, now=0.7) == pytest.approx(0.2)
    assert not ms.overdue(0, now=0.5 + 0.3)
    assert ms.overdue(0, now=0.5 + 0.31)


def test_membership_unjoined_worker_times_out():
    ms = Membership(shards=1, heartbeat_interval=0.1, miss_budget=3,
                    join_timeout=2.0)
    ms.launch(0, now=10.0)
    assert not ms.overdue(0, now=11.9)
    assert ms.overdue(0, now=12.1)


def test_membership_rejects_stale_incarnations():
    ms = Membership(shards=1, heartbeat_interval=0.1, miss_budget=3,
                    join_timeout=5.0)
    old = ms.launch(0, now=0.0)
    ms.join(0, old, now=0.1)
    new = ms.launch(0, now=1.0)
    assert new == old + 1
    assert not ms.join(0, old, now=1.1)
    assert not ms.heartbeat(0, old, now=1.1)
    assert not ms.is_current(0, old)
    assert ms.is_current(0, new)
    # The relaunch reset liveness evidence: the new worker must join.
    assert not ms.members[0].joined


def test_membership_restart_counter():
    ms = Membership(shards=2, heartbeat_interval=0.1, miss_budget=3,
                    join_timeout=5.0)
    assert ms.restarts(1) == 0
    assert ms.note_restart(1) == 1
    assert ms.note_restart(1) == 2
    assert ms.restarts(0) == 0


# ---- worker fault plans ----------------------------------------------


def test_worker_fault_plan_is_deterministic():
    plan = WorkerFaultPlan(seed=3, crash_rate=1.0, stall_rate=0.5,
                           heartbeat_drop_rate=0.5)
    again = WorkerFaultPlan(seed=3, crash_rate=1.0, stall_rate=0.5,
                            heartbeat_drop_rate=0.5)
    for shard in range(4):
        assert plan.events_for(shard, 0) == again.events_for(shard, 0)
    other = WorkerFaultPlan(seed=4, crash_rate=1.0, stall_rate=0.5,
                            heartbeat_drop_rate=0.5)
    assert any(
        plan.events_for(shard, 0) != other.events_for(shard, 0)
        for shard in range(8)
    )


def test_worker_fault_plan_caps_per_shard():
    plan = WorkerFaultPlan(seed=1, crash_rate=1.0, crashes_per_shard=1)
    assert plan.events_for(0, 0).crash_at is not None
    # The replacement incarnation rolls no dice: runs converge.
    assert plan.events_for(0, 1).is_null
    deep = WorkerFaultPlan(seed=1, crash_rate=1.0, crashes_per_shard=3)
    assert deep.events_for(0, 2).crash_at is not None
    assert deep.events_for(0, 3).is_null


def test_worker_fault_plan_null():
    assert WorkerFaultPlan().is_null
    assert WorkerFaultPlan(seed=9).events_for(0, 0).is_null
    assert not WorkerFaultPlan(crash_rate=0.1).is_null


# ---- checkpoint integrity (CRC trailer satellite) ---------------------


def _identity():
    return checkpoint_config("DTCP1-18d", 7, 0.04, 2, None)


def _payload():
    return {
        "config": _identity(),
        "records_read": 1000,
        "records_delivered": 990,
        "now": 3600.0,
        "emitted_index": 1,
        "watermarks": [],
        "faults": None,
        "shards": [],
    }


def test_checkpoint_roundtrip_with_trailer(tmp_path):
    path = tmp_path / "stream.ckpt"
    save_checkpoint(path, _payload())
    loaded = load_checkpoint(path, _identity())
    assert loaded["records_read"] == 1000


def test_truncated_checkpoint_is_corrupt_and_names_file(tmp_path):
    path = tmp_path / "stream.ckpt"
    save_checkpoint(path, _payload())
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(CheckpointCorrupt) as excinfo:
        load_checkpoint(path, _identity())
    assert str(path) in str(excinfo.value)
    assert excinfo.value.path == path


def test_bit_flipped_checkpoint_is_corrupt(tmp_path):
    path = tmp_path / "stream.ckpt"
    save_checkpoint(path, _payload())
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 3] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorrupt, match="CRC32 mismatch"):
        load_checkpoint(path, _identity())


def test_valid_crc_but_garbage_payload_is_corrupt(tmp_path):
    path = tmp_path / "stream.ckpt"
    data = b"not a pickle at all"
    import struct

    path.write_bytes(data + struct.pack("<II", len(data), zlib.crc32(data)))
    with pytest.raises(CheckpointCorrupt):
        load_checkpoint(path, _identity())


def test_checkpoint_identity_mismatch_still_loud(tmp_path):
    path = tmp_path / "stream.ckpt"
    save_checkpoint(path, _payload())
    with pytest.raises(CheckpointError, match="different run identity"):
        load_checkpoint(
            path, checkpoint_config("DTCP1-18d", 8, 0.04, 2, None)
        )


# ---- the per-shard store ---------------------------------------------


def _shard_state(shard: int) -> dict:
    return {
        "index": shard,
        "first_seen": {(10 + shard, 80, "tcp"): 60.0},
        "flow_counts": {},
        "clients": {},
        "pending_handshake": {},
        "udp_requests": {},
        "last_seen": {},
        "records": 100 + shard,
    }


def _progress(records: int = 500) -> dict:
    return {
        "records_read": records,
        "records_delivered": records - 5,
        "now": 7200.0,
        "emitted_index": 0,
        "watermarks": [],
        "faults": None,
    }


def test_store_commit_and_restore(tmp_path):
    store = ShardCheckpointStore(tmp_path / "store")
    identity = _identity()
    for shard in range(2):
        store.save_shard(shard, 1, identity, _shard_state(shard))
    store.save_manifest(1, identity, _progress())
    assert store.generations() == [1]

    plan = store.plan_restore(identity)
    assert plan is not None
    assert plan.generation == 1
    assert plan.manifest["records_read"] == 500
    assert [r.shard for r in plan.shards] == [0, 1]
    assert all(not r.fresh for r in plan.shards)
    assert plan.shards[1].state["records"] == 101
    assert plan.shards[1].records_read == 500


def test_store_uncommitted_generation_is_invisible(tmp_path):
    """Shard files without a manifest never influence a restore."""
    store = ShardCheckpointStore(tmp_path / "store")
    identity = _identity()
    store.save_shard(0, 1, identity, _shard_state(0))
    store.save_shard(1, 1, identity, _shard_state(1))
    # Crash before the manifest: generation 1 was never committed.
    assert store.generations() == []
    assert store.plan_restore(identity) is None
    restore = store.restore_shard(0, identity, upto_generation=99)
    assert restore.fresh and restore.records_read == 0


def test_store_corrupt_shard_falls_back_a_generation(tmp_path):
    store = ShardCheckpointStore(tmp_path / "store")
    identity = _identity()
    for generation in (1, 2):
        for shard in range(2):
            store.save_shard(shard, generation, identity, _shard_state(shard))
        store.save_manifest(generation, identity,
                            _progress(records=100 * generation))
    # Flip a bit in shard 1's newest file; shard 0's stays good.
    victim = store.shard_path(1, 2)
    raw = bytearray(victim.read_bytes())
    raw[10] ^= 0x01
    victim.write_bytes(bytes(raw))

    plan = store.plan_restore(identity)
    assert plan.generation == 2
    assert plan.shards[0].records_read == 200  # newest generation
    assert plan.shards[1].records_read == 100  # fell back to generation 1
    assert not plan.shards[1].fresh


def test_store_corrupt_manifest_falls_back_whole_generation(tmp_path):
    store = ShardCheckpointStore(tmp_path / "store")
    identity = _identity()
    for generation in (1, 2):
        for shard in range(2):
            store.save_shard(shard, generation, identity, _shard_state(shard))
        store.save_manifest(generation, identity,
                            _progress(records=100 * generation))
    manifest = store.manifest_path(2)
    manifest.write_bytes(manifest.read_bytes()[:-3])
    plan = store.plan_restore(identity)
    assert plan.generation == 1
    assert all(r.records_read == 100 for r in plan.shards)


def test_store_prunes_old_generations_and_clears(tmp_path):
    store = ShardCheckpointStore(tmp_path / "store", keep_generations=2)
    identity = _identity()
    for generation in (1, 2, 3):
        store.save_shard(0, generation, identity, _shard_state(0))
        store.save_manifest(generation, identity, _progress())
    assert store.generations() == [3, 2]
    assert not store.shard_path(0, 1).exists()
    store.clear()
    assert store.generations() == []
    assert not store.root.exists()


@settings(max_examples=25, deadline=None)
@given(
    records=st.integers(min_value=0, max_value=2**48),
    delivered=st.integers(min_value=0, max_value=2**48),
    now=st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
    emitted=st.integers(min_value=0, max_value=10_000),
    generation=st.integers(min_value=1, max_value=999_999),
    faults=st.none() | st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.integers() | st.floats(allow_nan=False) | st.binary(max_size=16),
        max_size=4,
    ),
)
def test_manifest_roundtrip_property(records, delivered, now, emitted,
                                     generation, faults):
    """Per-shard checkpoint manifests round-trip exactly."""
    identity = _identity()
    payload = {
        "records_read": records,
        "records_delivered": delivered,
        "now": now,
        "emitted_index": emitted,
        "watermarks": [],
        "faults": faults,
    }
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardCheckpointStore(Path(tmp) / "store")
        store.save_manifest(generation, identity, payload)
        loaded = store.load_manifest(generation, identity)
        for key, value in payload.items():
            assert loaded[key] == value
        assert loaded["generation"] == generation
        assert loaded["config"] == identity


# ---- ingest backpressure (satellite) ----------------------------------


class _BlockedState(ShardState):
    """A shard whose folds block until released -- a wedged consumer."""

    def __init__(self):
        self.release = threading.Event()
        self.index = 0
        self.records = 0
        self.last_seen = {}

    def observe_batch(self, records):  # pragma: no cover - timing-dependent
        self.release.wait()


def test_ingest_put_raises_stall_error_instead_of_deadlocking():
    state = _BlockedState()
    ingestor = StreamIngestor(
        [state], max_queue_chunks=1, put_timeout=0.01, stall_timeout=0.1
    )
    try:
        with pytest.raises(IngestStallError) as excinfo:
            for _ in range(50):
                ingestor.dispatch([[object()]])
        assert excinfo.value.index == 0
        assert ingestor.put_timeouts >= excinfo.value.timeouts > 0
    finally:
        state.release.set()
        ingestor.close()


def test_ingest_stall_counter_reaches_telemetry():
    from repro.telemetry.metrics import MetricRegistry

    state = _BlockedState()
    ingestor = StreamIngestor(
        [state], max_queue_chunks=1, put_timeout=0.01, stall_timeout=0.05
    )
    try:
        with pytest.raises(IngestStallError):
            for _ in range(50):
                ingestor.dispatch([[object()]])
    finally:
        state.release.set()
        ingestor.close()
    reg = MetricRegistry()
    ingestor.flush_telemetry(reg)
    counter = reg.counter(
        "repro_stream_backpressure_timeouts_total",
        "Bounded-put timeouts while shard queues were full.",
    )
    assert counter.value > 0


# ---- fabric equivalence and chaos -------------------------------------


def _config(**overrides) -> StreamConfig:
    base = dict(SMALL, emit_every=24 * 3600.0)
    base.update(overrides)
    return StreamConfig(**base)


#: Trigger records must stay below the smallest per-shard record count
#: (~38k at 4 shards for the small build) or a drawn fault never fires.
HORIZON = 20_000


@pytest.fixture(scope="module")
def batch_reference(small_dtcp18):
    config = _config(shards=1)
    return batch_survey_report(config, dataset=small_dtcp18)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fabric_report_matches_batch(workers, small_dtcp18, batch_reference):
    config = _config(shards=workers)
    result = FabricSupervisor(
        config, FabricConfig(**FAST), dataset=small_dtcp18
    ).run()
    assert result.finished
    assert result.report == batch_reference


def test_fabric_crash_chaos_is_byte_identical(small_dtcp18, batch_reference):
    """Every worker crashes once mid-ingest; failover must be invisible."""
    config = _config(shards=4)
    faults = WorkerFaultPlan(seed=13, crash_rate=1.0, horizon_records=HORIZON)
    events = []
    result = FabricSupervisor(
        config, FabricConfig(worker_faults=faults, max_restarts=25, **FAST),
        dataset=small_dtcp18,
    ).run(on_event=events.append)
    assert result.report == batch_reference
    # The injected crashes account for one death per shard; on a loaded
    # machine the tight FAST miss budget can also declare a *healthy*
    # worker dead (late heartbeat), which the fabric must absorb the
    # same way -- so the floor is exact but the ceiling is not.
    assert sum(1 for line in events if line.startswith("fabric: dead")) >= 4


def test_fabric_stall_chaos_is_byte_identical(small_dtcp18, batch_reference):
    """A stalled worker is declared dead by the miss budget and replaced."""
    config = _config(shards=2)
    faults = WorkerFaultPlan(seed=5, stall_rate=1.0, horizon_records=HORIZON)
    events = []
    result = FabricSupervisor(
        config, FabricConfig(worker_faults=faults, **FAST),
        dataset=small_dtcp18,
    ).run(on_event=events.append)
    assert result.report == batch_reference
    assert any("heartbeat overdue" in line for line in events)


def test_fabric_heartbeat_drop_false_positive_is_byte_identical(
    small_dtcp18, batch_reference
):
    """Killing a *healthy* worker (dropped beats) must also be invisible."""
    config = _config(shards=2)
    # Early trigger, long suppression, and a very tight miss budget so
    # the silent-but-working phase is reliably declared dead; spurious
    # kills of the genuinely healthy shard are themselves false
    # positives the fabric must absorb, hence the roomy restart budget.
    faults = WorkerFaultPlan(seed=8, heartbeat_drop_rate=1.0,
                             heartbeat_drop_beats=500,
                             horizon_records=1_000)
    events = []
    result = FabricSupervisor(
        config,
        FabricConfig(worker_faults=faults, heartbeat_interval=0.02,
                     miss_budget=2, max_restarts=25,
                     restart_backoff=0.01, restart_backoff_max=0.05),
        dataset=small_dtcp18,
    ).run(on_event=events.append)
    assert result.report == batch_reference
    assert any(line.startswith("fabric: dead") for line in events)


def test_fabric_with_capture_faults_matches_batch(small_dtcp18):
    """Measurement faults and process chaos compose deterministically."""
    from repro.faults.plan import FaultPlan

    plan = FaultPlan(seed=5, capture_loss_rate=0.02, outage_fraction=0.02)
    config = _config(shards=4, faults=plan)
    reference = batch_survey_report(config, dataset=small_dtcp18)
    result = FabricSupervisor(
        config,
        FabricConfig(
            worker_faults=WorkerFaultPlan(seed=2, crash_rate=1.0,
                                          horizon_records=HORIZON),
            **FAST,
        ),
        dataset=small_dtcp18,
    ).run()
    assert result.report == reference


def test_fabric_periodic_manifests_and_clean_clear(small_dtcp18,
                                                   batch_reference, tmp_path):
    store_dir = tmp_path / "fabric-ckpt"
    config = _config(
        shards=2,
        checkpoint_every=48 * 3600.0,
        checkpoint_path=str(store_dir),
    )
    result = FabricSupervisor(
        config, FabricConfig(**FAST), dataset=small_dtcp18
    ).run()
    assert result.report == batch_reference
    assert result.checkpoints_written > 0
    # Clean finish: the store is cleared so it cannot hijack a later run.
    assert not store_dir.exists() or not list(store_dir.iterdir())


def test_fabric_restart_budget_degrades_structurally(small_dtcp18):
    """Crash-looping past max_restarts fails loudly, never hangs."""
    config = _config(shards=2, emit_every=None)
    faults = WorkerFaultPlan(seed=21, crash_rate=1.0, crashes_per_shard=99,
                             horizon_records=5_000)
    with pytest.raises(FabricDegradedError, match=r"degraded: shard \d+ "
                                                  r"restarted \d+ times"):
        FabricSupervisor(
            config,
            FabricConfig(max_restarts=1, worker_faults=faults, **FAST),
            dataset=small_dtcp18,
        ).run()


def test_fabric_resume_requires_checkpoint_path(small_dtcp18):
    supervisor = FabricSupervisor(
        _config(shards=2), FabricConfig(**FAST), dataset=small_dtcp18
    )
    with pytest.raises(ValueError, match="checkpoint_path"):
        supervisor.run(resume=True)
