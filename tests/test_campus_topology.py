"""Tests for repro.campus.topology -- calibrated address counts."""

import pytest

from repro.campus.topology import (
    TOTAL_ADDRESSES,
    TRANSIENT_ADDRESSES,
    build_allports_topology,
    build_topology,
)
from repro.net.addr import AddressClass, parse_ipv4


class TestCalibratedCounts:
    def test_total_matches_paper(self):
        topology = build_topology()
        assert topology.total_addresses == TOTAL_ADDRESSES == 16_130

    def test_transient_matches_paper(self):
        topology = build_topology()
        assert topology.transient_addresses == TRANSIENT_ADDRESSES == 2_296

    def test_static_is_difference(self):
        topology = build_topology()
        assert topology.static_addresses == 16_130 - 2_296

    def test_class_partition(self):
        topology = build_topology()
        by_class = {}
        for block in topology.space.blocks:
            by_class.setdefault(block.address_class, 0)
            by_class[block.address_class] += block.size
        assert by_class[AddressClass.VPN] == 254
        assert by_class[AddressClass.PPP] == 256
        assert by_class[AddressClass.WIRELESS] == 260
        assert by_class[AddressClass.DHCP] == 1526


class TestTopologyQueries:
    def test_block_lookup_by_name(self):
        topology = build_topology()
        assert topology.block("vpn").address_class is AddressClass.VPN
        with pytest.raises(KeyError):
            topology.block("no-such-block")

    def test_contains_campus_prefix(self):
        topology = build_topology()
        assert topology.contains(parse_ipv4("128.125.1.1"))
        assert not topology.contains(parse_ipv4("128.126.0.1"))
        assert not topology.contains(parse_ipv4("16.0.0.1"))

    def test_no_block_overlap(self):
        # AddressSpace construction validates; building must not raise.
        topology = build_topology(include_allports_subnet=True)
        assert topology.total_addresses == 16_130 + 256

    def test_allports_topology(self):
        topology = build_allports_topology()
        assert topology.total_addresses == 256
        assert topology.space.blocks[0].name == "lab-allports"
        # Still inside the campus prefix.
        assert topology.contains(topology.space.blocks[0].first)

    def test_addresses_all_inside_campus(self):
        topology = build_topology()
        for block in topology.space.blocks:
            assert topology.contains(block.first)
            assert topology.contains(block.last)
