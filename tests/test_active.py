"""Tests for the active probing layer."""

import pytest

from repro.active.prober import HalfOpenScanner, ScannerConfig
from repro.active.results import (
    ProbeOutcomeCounts,
    first_open_times,
    union_open_endpoints,
)
from repro.active.schedule import ScanScheduleBuilder, scan_start_times
from repro.active.udp_scan import GenericUdpProber
from repro.campus.host import ProbeOutcome
from repro.campus.population import synthesize_population
from repro.campus.profiles import semester_profile
from repro.net.addr import AddressClass
from repro.net.ports import SELECTED_TCP_PORTS, SELECTED_UDP_PORTS
from repro.simkernel.clock import Calendar, days, hours


@pytest.fixture(scope="module")
def population():
    return synthesize_population(
        semester_profile(scale=0.05), seed=31, duration=days(18)
    )


@pytest.fixture(scope="module")
def targets(population):
    space = population.topology.space
    return [
        a for a in space.addresses()
        if space.class_of(a) is not AddressClass.WIRELESS
    ]


class TestHalfOpenScanner:
    def test_scan_produces_report(self, population, targets):
        scanner = HalfOpenScanner(population)
        report = scanner.scan(targets, SELECTED_TCP_PORTS, start=hours(1),
                              duration=hours(2), scan_id=3)
        assert report.scan_id == 3
        assert report.duration == hours(2)
        assert report.counts.total == len(targets) * len(SELECTED_TCP_PORTS)
        assert report.opens

    def test_probe_times_within_sweep(self, population, targets):
        scanner = HalfOpenScanner(population)
        report = scanner.scan(targets, SELECTED_TCP_PORTS, start=hours(1),
                              duration=hours(2))
        for t, _, _ in report.opens:
            assert hours(1) <= t < hours(3)

    def test_opens_match_ground_truth(self, population, targets):
        """Every reported open endpoint must be a live, reachable,
        non-firewalled service at probe time -- no false positives."""
        scanner = HalfOpenScanner(population)
        report = scanner.scan(targets, SELECTED_TCP_PORTS, start=hours(1),
                              duration=hours(2))
        for t, address, port in report.opens:
            host = population.occupant_host(address, t)
            assert host is not None
            assert host.tcp_probe_response(port, t, internal=True) is ProbeOutcome.SYNACK

    def test_parallelism_speeds_probe_times(self, population, targets):
        one = HalfOpenScanner(population, ScannerConfig(parallelism=1)).scan(
            targets, (80,), start=0.0, duration=hours(2)
        )
        two = HalfOpenScanner(population, ScannerConfig(parallelism=2)).scan(
            targets, (80,), start=0.0, duration=hours(2)
        )
        # With two machines, the second half of the space is probed
        # starting immediately rather than an hour in.  (The *sets* may
        # differ slightly: transient hosts are up at different probe
        # instants.)
        one_times = {a: t for t, a, _ in one.opens}
        two_times = {a: t for t, a, _ in two.opens}
        shared = set(one_times) & set(two_times)
        later_half = [a for a in shared if a >= targets[len(targets) // 2]]
        if later_half:
            assert min(two_times[a] for a in later_half) < min(
                one_times[a] for a in later_half
            )

    def test_empty_targets_rejected(self, population):
        with pytest.raises(ValueError):
            HalfOpenScanner(population).scan([], (80,), 0.0, 100.0)

    def test_nonpositive_duration_rejected(self, population, targets):
        with pytest.raises(ValueError):
            HalfOpenScanner(population).scan(targets, (80,), 0.0, 0.0)

    def test_responding_addresses_superset_of_opens(self, population, targets):
        report = HalfOpenScanner(population).scan(
            targets, SELECTED_TCP_PORTS, start=0.0, duration=hours(2)
        )
        assert report.open_addresses() <= report.responding_addresses

    def test_mixed_response_detects_service_scope_firewalls(self, population, targets):
        report = HalfOpenScanner(population).scan(
            targets, SELECTED_TCP_PORTS, start=0.0, duration=hours(2)
        )
        # Firewalled (service-scope, blocks_internal) hosts are the
        # natural members of the mixed set.
        fw_hosts = [
            h for h in population.hosts.values()
            if h.firewall.blocks_internal and h.services
            and h.static_address is not None
            and h.firewall.scope.value == "service"
        ]
        if fw_hosts:
            confirmed = {h.static_address for h in fw_hosts}
            assert confirmed & report.mixed_response_addresses


class TestResultsAggregation:
    def test_union_and_first_open(self, population, targets):
        scanner = HalfOpenScanner(population)
        first = scanner.scan(targets, (80,), start=0.0, duration=hours(1), scan_id=0)
        second = scanner.scan(targets, (80,), start=hours(12), duration=hours(1), scan_id=1)
        union = union_open_endpoints([first, second])
        assert union >= first.open_endpoints()
        times = first_open_times([first, second])
        for endpoint in first.open_endpoints():
            assert times[endpoint] < hours(1)

    def test_outcome_counts(self):
        counts = ProbeOutcomeCounts()
        counts.add(ProbeOutcome.SYNACK)
        counts.add(ProbeOutcome.RST)
        counts.add(ProbeOutcome.NOTHING)
        assert (counts.synack, counts.rst, counts.nothing) == (1, 1, 1)
        assert counts.total == 3


class TestUdpProber:
    def test_scan_classification_buckets(self, population, targets):
        from repro.campus.population import attach_udp_population

        attach_udp_population(population, seed=31, scale=0.05)
        prober = GenericUdpProber(population)
        report = prober.scan(targets, SELECTED_UDP_PORTS, start=0.0, duration=hours(1))
        totals = report.totals()
        assert totals["definitely_open"] > 0
        assert totals["possibly_open"] > 0
        assert totals["definitely_closed"] > 0
        assert totals["no_response"] > 0
        # Buckets are disjoint per port.
        for port in SELECTED_UDP_PORTS:
            opens = report.definitely_open[port]
            maybe = report.possibly_open[port]
            closed = report.definitely_closed[port]
            assert not (opens & maybe) and not (opens & closed) and not (maybe & closed)

    def test_counts_row(self, population, targets):
        from repro.campus.population import attach_udp_population

        prober = GenericUdpProber(population)
        report = prober.scan(targets, (53,), start=0.0, duration=hours(1))
        row = report.counts_row(53)
        assert set(row) == {"definitely_open", "possibly_open", "definitely_closed"}


class TestSchedule:
    def test_scan_start_times_every_12h(self):
        calendar = Calendar()  # starts 10:00
        times = scan_start_times(calendar, 0.0, days(2))
        assert times == [hours(1), hours(13), hours(25), hours(37)]

    def test_builder_subsets(self):
        builder = ScanScheduleBuilder(Calendar(), 0.0, days(4))
        full = builder.full()
        day = builder.day_only()
        night = builder.night_only()
        alternating = builder.alternating()
        assert len(full) == 8
        assert len(day) == len(night) == len(alternating) == 4
        assert set(day) <= set(full)
        assert set(night) <= set(full)
        assert set(alternating) <= set(full)
        # Alternating mixes both anchor hours.
        hours_used = {
            Calendar().to_datetime(t).hour for t in alternating
        }
        assert hours_used == {11, 23}

    def test_unknown_subset(self):
        builder = ScanScheduleBuilder(Calendar(), 0.0, days(1))
        with pytest.raises(KeyError):
            builder.subset_times("hourly")

    def test_night_scan_window_spans_midnight(self):
        calendar = Calendar()
        times = scan_start_times(calendar, 0.0, days(2))
        night = times[1]
        assert calendar.to_datetime(night).hour == 23
        # The paper's 90-120 minute sweep starting at 23:00 runs past
        # midnight into the next calendar day...
        sweep_end = night + hours(1.75)
        assert (calendar.month_day_label(sweep_end)
                != calendar.month_day_label(night))
        assert calendar.to_datetime(sweep_end).hour == 0
        # ...and the schedule still anchors the next start at 11:00,
        # 12 hours later, undisturbed by the day boundary.
        assert times[2] == night + hours(12)
        assert calendar.to_datetime(times[2]).hour == 11

    def test_start_mid_window_skips_to_next_anchor(self):
        # A run beginning after 11:00 must wait for 23:00, not probe
        # retroactively.  (Calendar zero is 10:00, so 11:00 = hours(1).)
        assert scan_start_times(Calendar(), hours(2), days(1)) == [hours(13)]

    def test_timetable_ignores_sweep_overrun(self):
        # scan_start_times is a pure timetable: starts stay 12 h apart
        # even when a budget-stretched sweep overruns the period.
        # Resolving that collision is the caller's job (the online
        # PeriodicSweepPolicy pushes overrun sweeps back to run back to
        # back -- see test_probe.py); the timetable itself must never
        # silently drop occurrences.
        times = scan_start_times(Calendar(), 0.0, days(3))
        assert len(times) == 6
        for previous, current in zip(times, times[1:]):
            assert current - previous == hours(12)
