"""Tests for the trace format and anonymiser."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import parse_ipv4
from repro.net.packet import (
    PROTO_TCP,
    PacketRecord,
    TcpFlags,
    icmp_port_unreachable,
    tcp_syn,
    tcp_synack,
    udp_datagram,
)
from repro.trace.anonymize import Anonymizer, _feistel
from repro.trace.format import (
    TraceReader,
    TraceWriter,
    read_trace,
    trace_bytes,
    write_trace,
)


def sample_records():
    return [
        tcp_syn(1.0, parse_ipv4("16.0.0.1"), parse_ipv4("128.125.1.1"), 40000, 80, "commercial1"),
        tcp_synack(1.05, parse_ipv4("128.125.1.1"), parse_ipv4("16.0.0.1"), 80, 40000, "commercial2"),
        udp_datagram(2.0, parse_ipv4("128.125.2.2"), parse_ipv4("16.0.0.2"), 53, 5353, "internet2"),
        icmp_port_unreachable(3.0, parse_ipv4("128.125.2.3"), parse_ipv4("16.0.0.3"), 40001, 137),
    ]


class TestTraceFormat:
    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "capture.rprt"
        count = write_trace(path, sample_records())
        assert count == 4
        assert read_trace(path) == sample_records()

    def test_declared_count(self, tmp_path):
        path = tmp_path / "capture.rprt"
        write_trace(path, sample_records())
        with TraceReader.open(path) as reader:
            assert reader.declared_count == 4

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            TraceReader(io.BytesIO(b"XXXX" + b"\x00" * 12))

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            TraceReader(io.BytesIO(b"RP"))

    def test_truncated_record_rejected(self):
        data = trace_bytes(sample_records())
        reader = TraceReader(io.BytesIO(data[:-5]))
        with pytest.raises(ValueError):
            list(reader)

    def test_unknown_link_rejected(self):
        record = tcp_syn(0.0, 1, 2, 3, 4, "weird-link")
        writer = TraceWriter(io.BytesIO())
        with pytest.raises(ValueError):
            writer.write(record)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rprt"
        assert write_trace(path, []) == 0
        assert read_trace(path) == []

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e7, allow_nan=False),
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=65535),
                st.integers(min_value=0, max_value=65535),
                st.sampled_from([TcpFlags.SYN, TcpFlags.SYN | TcpFlags.ACK, TcpFlags.RST, TcpFlags.ACK]),
            ),
            max_size=30,
        )
    )
    def test_property_roundtrip(self, rows):
        records = [
            PacketRecord(time=t, src=s, dst=d, sport=sp, dport=dp,
                         proto=PROTO_TCP, flags=flags)
            for t, s, d, sp, dp, flags in rows
        ]
        assert list(TraceReader(io.BytesIO(trace_bytes(records)))) == records


class TestFeistel:
    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=2**31))
    def test_property_invertible(self, bits, seed):
        import random

        rng = random.Random(seed)
        value = rng.getrandbits(bits)
        encrypted = _feistel(value, bits, key=seed)
        assert 0 <= encrypted < 2**bits
        assert _feistel(encrypted, bits, key=seed, decrypt=True) == value

    def test_bijective_small_domain(self):
        images = {_feistel(v, 8, key=5) for v in range(256)}
        assert len(images) == 256


class TestAnonymizer:
    def test_campus_stays_campus(self):
        anonymizer = Anonymizer(key=42)
        address = parse_ipv4("128.125.7.9")
        masked = anonymizer.anonymize_address(address)
        assert masked >> 16 == address >> 16
        assert masked != address

    def test_campus_invertible(self):
        anonymizer = Anonymizer(key=42)
        address = parse_ipv4("128.125.200.1")
        masked = anonymizer.anonymize_address(address)
        assert anonymizer.deanonymize_campus_address(masked) == address

    def test_external_leaves_campus_prefix(self):
        anonymizer = Anonymizer(key=42)
        for i in range(500):
            masked = anonymizer.anonymize_address(parse_ipv4("16.0.0.0") + i)
            assert masked >> 16 != parse_ipv4("128.125.0.0") >> 16

    def test_campus_bijective(self):
        anonymizer = Anonymizer(key=7)
        base = parse_ipv4("128.125.0.0")
        images = {anonymizer.anonymize_address(base + i) for i in range(2000)}
        assert len(images) == 2000

    def test_deterministic(self):
        a = Anonymizer(key=9).anonymize_address(parse_ipv4("128.125.3.3"))
        b = Anonymizer(key=9).anonymize_address(parse_ipv4("128.125.3.3"))
        assert a == b

    def test_key_matters(self):
        address = parse_ipv4("128.125.3.3")
        assert (
            Anonymizer(key=1).anonymize_address(address)
            != Anonymizer(key=2).anonymize_address(address)
        )

    def test_record_ports_and_flags_untouched(self):
        anonymizer = Anonymizer(key=3)
        record = sample_records()[1]
        masked = anonymizer.anonymize(record)
        assert masked.sport == record.sport
        assert masked.dport == record.dport
        assert masked.flags == record.flags
        assert masked.time == record.time
        assert masked.link == record.link
        assert masked.src != record.src

    def test_deanonymize_external_rejected(self):
        anonymizer = Anonymizer(key=3)
        with pytest.raises(ValueError):
            anonymizer.deanonymize_campus_address(parse_ipv4("16.0.0.1"))

    def test_analysis_invariant_under_anonymization(self):
        """Direction filtering gives identical results on anonymised
        traces -- the property the paper's methodology depends on."""
        from repro.passive.monitor import PassiveServiceTable

        anonymizer = Anonymizer(key=11)
        campus_prefix = parse_ipv4("128.125.0.0") >> 16

        def is_campus(address):
            return address >> 16 == campus_prefix

        plain = PassiveServiceTable(is_campus=is_campus, tcp_ports=frozenset({80}))
        masked = PassiveServiceTable(is_campus=is_campus, tcp_ports=frozenset({80}))
        for record in sample_records():
            plain.observe(record)
            masked.observe(anonymizer.anonymize(record))
        assert len(plain.endpoints()) == len(masked.endpoints())
