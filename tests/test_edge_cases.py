"""Assorted edge-case tests across modules."""

import random

import pytest

from repro.campus.churn import SessionStyle, _bias_to_daytime, generate_sessions
from repro.core.report import render_series
from repro.simkernel.clock import days, hours, minutes
from repro.simkernel.rng import exponential_interarrivals
from repro.traffic.scans import _poisson


class TestPoissonSampler:
    def test_zero_mean(self):
        assert _poisson(random.Random(0), 0.0) == 0

    def test_mean_statistics(self):
        rng = random.Random(1)
        draws = [_poisson(rng, 12.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 11.0 < mean < 13.0

    def test_nonnegative(self):
        rng = random.Random(2)
        assert all(_poisson(rng, 0.3) >= 0 for _ in range(500))


class TestExponentialInterarrivalsEdges:
    def test_respects_start_offset(self):
        rng = random.Random(3)
        times = list(exponential_interarrivals(rng, 1.0, 500.0, 600.0))
        assert all(t > 500.0 for t in times)

    def test_empty_range(self):
        rng = random.Random(3)
        assert list(exponential_interarrivals(rng, 1.0, 10.0, 10.0)) == []


class TestDayBias:
    def test_daytime_start_unchanged(self):
        rng = random.Random(4)
        # 10:00 dataset start: t=0 is 10:00, well past 07:00.
        assert _bias_to_daytime(rng, 0.0, 10.0) == 0.0

    def test_night_start_pushed_forward(self):
        rng = random.Random(4)
        # 16 hours after a 10:00 start is 02:00.
        start = hours(16)
        biased = _bias_to_daytime(rng, start, 10.0)
        assert biased > start
        hour = (10.0 + biased / 3600.0) % 24.0
        assert 8.0 <= hour <= 12.0

    def test_minimum_session_length_enforced(self):
        rng = random.Random(5)
        style = SessionStyle(mean_session_hours=0.001, mean_gap_hours=0.01)
        sessions = generate_sessions(rng, style, days(1))
        for start, end in sessions:
            # Floor of 60 seconds, possibly clipped at dataset end.
            assert end - start >= 59.0 or end == days(1)


class TestRenderSeriesEdges:
    def test_exact_max_points_not_downsampled(self):
        points = [(float(i), float(i)) for i in range(20)]
        text = render_series("x", {"s": points}, max_points=20)
        rows = [line for line in text.splitlines() if line.startswith("| s |")]
        assert len(rows) == 20

    def test_empty_series(self):
        text = render_series("x", {"s": []})
        assert "### x" in text

    def test_multiple_series_all_present(self):
        text = render_series(
            "x", {"a": [(0.0, 1.0)], "b": [(0.0, 2.0)]}
        )
        assert "| a | 0 | 1.00 |" in text
        assert "| b | 0 | 2.00 |" in text


class TestClockEdges:
    def test_fraction_minutes(self):
        assert minutes(0.5) == 30.0

    def test_negative_durations_allowed_arithmetically(self):
        # Durations are plain floats; arithmetic helpers do not guard
        # sign (scheduling layers do).  Document via test.
        assert days(-1) == -86400.0
