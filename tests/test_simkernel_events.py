"""Tests for repro.simkernel.events."""

import pytest

from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventLoop, EventQueue


class TestEventQueue:
    def test_empty(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None, label="late")
        queue.schedule(1.0, lambda: None, label="early")
        assert queue.pop().label == "early"
        assert queue.pop().label == "late"

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None, label="first")
        queue.schedule(1.0, lambda: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_payload_passed_to_action(self):
        got = []
        event = Event(time=0.0, sequence=0, action=got.append, payload="data")
        event.fire()
        assert got == ["data"]

    def test_no_payload_calls_without_args(self):
        fired = []
        event = Event(time=0.0, sequence=0, action=lambda: fired.append(1))
        event.fire()
        assert fired == [1]


class TestEventLoop:
    def test_run_until_advances_clock(self):
        loop = EventLoop()
        loop.run_until(10.0)
        assert loop.clock.now == 10.0

    def test_executes_in_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.run_until(5.0)
        assert order == ["a", "b"]

    def test_events_after_deadline_stay_queued(self):
        loop = EventLoop()
        fired = []
        loop.schedule(7.0, lambda: fired.append(1))
        count = loop.run_until(5.0)
        assert count == 0
        assert not fired
        loop.run_until(10.0)
        assert fired == [1]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(ValueError):
            loop.schedule(5.0, lambda: None)

    def test_actions_may_schedule_more(self):
        loop = EventLoop()
        order = []

        def chain():
            order.append("first")
            loop.schedule_after(1.0, lambda: order.append("second"))

        loop.schedule(1.0, chain)
        loop.run_until(10.0)
        assert order == ["first", "second"]

    def test_run_all_executes_everything(self):
        loop = EventLoop()
        fired = []
        for t in (3.0, 1.0, 2.0):
            loop.schedule(t, fired.append, payload=t)
        assert loop.run_all() == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_safety_limit(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule_after(1.0, reschedule)

        loop.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_all(safety_limit=100)

    def test_events_fired_counter(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.run_until(10.0)
        assert loop.events_fired == 2
