"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("DTCP1-18d", "DTCPbreak", "DUDP", "DTCPall"):
            assert name in out


class TestSurveyCommand:
    def test_tcp_survey(self, capsys):
        assert main(["survey", "DTCP1-18d", "--scale", "0.03", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Passive AND Active" in out
        assert "scans" in out

    def test_udp_survey(self, capsys):
        assert main(["survey", "DUDP", "--scale", "0.05", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Total servers found" in out

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["survey", "DTCP-bogus"])


class TestRecordAndStats:
    def test_record_then_stats(self, tmp_path, capsys):
        trace = tmp_path / "t.rprt"
        assert main([
            "record", "DTCP1-18d", str(trace),
            "--scale", "0.03", "--seed", "4", "--days", "1",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "wrote" in recorded
        assert trace.exists() and trace.stat().st_size > 16

        assert main(["trace-stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "protocol tcp" in out
        assert "tcp syn" in out
        assert "Top campus responders" in out

    def test_record_anonymized(self, tmp_path, capsys):
        trace = tmp_path / "anon.rprt"
        assert main([
            "record", "DTCP1-18d", str(trace),
            "--scale", "0.03", "--seed", "4", "--days", "0.5",
            "--anonymize-key", "42",
        ]) == 0
        out = capsys.readouterr().out
        assert "anonymised" in out
        # Stats still work on the anonymised trace (campus preserved).
        assert main(["trace-stats", str(trace)]) == 0
        stats = capsys.readouterr().out
        assert "protocol tcp" in stats


class TestCacheCommand:
    def test_lists_entries(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        # Populate the cache by running a survey (first replay tees).
        main(["survey", "DTCPall", "--scale", "1.0", "--seed", "3"])
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out
        assert "DTCPall-" in out
        assert "MB" in out

    def test_clear(self, monkeypatch, tmp_path, capsys):
        from repro.trace.cache import default_trace_cache

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        main(["survey", "DTCPall", "--scale", "1.0", "--seed", "3"])
        capsys.readouterr()
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert default_trace_cache().entries() == []

    def test_disabled(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert main(["cache"]) == 0
        assert "disabled" in capsys.readouterr().out


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
