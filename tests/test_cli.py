"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("DTCP1-18d", "DTCPbreak", "DUDP", "DTCPall"):
            assert name in out


class TestSurveyCommand:
    def test_tcp_survey(self, capsys):
        assert main(["survey", "DTCP1-18d", "--scale", "0.03", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Passive AND Active" in out
        assert "scans" in out

    def test_udp_survey(self, capsys):
        assert main(["survey", "DUDP", "--scale", "0.05", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Total servers found" in out

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["survey", "DTCP-bogus"])


class TestRecordAndStats:
    def test_record_then_stats(self, tmp_path, capsys):
        trace = tmp_path / "t.rprt"
        assert main([
            "record", "DTCP1-18d", str(trace),
            "--scale", "0.03", "--seed", "4", "--days", "1",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "wrote" in recorded
        assert trace.exists() and trace.stat().st_size > 16

        assert main(["trace-stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "protocol tcp" in out
        assert "tcp syn" in out
        assert "Top campus responders" in out

    def test_record_anonymized(self, tmp_path, capsys):
        trace = tmp_path / "anon.rprt"
        assert main([
            "record", "DTCP1-18d", str(trace),
            "--scale", "0.03", "--seed", "4", "--days", "0.5",
            "--anonymize-key", "42",
        ]) == 0
        out = capsys.readouterr().out
        assert "anonymised" in out
        # Stats still work on the anonymised trace (campus preserved).
        assert main(["trace-stats", str(trace)]) == 0
        stats = capsys.readouterr().out
        assert "protocol tcp" in stats


class TestCacheCommand:
    def test_lists_entries(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        # Populate the cache by running a survey (first replay tees).
        main(["survey", "DTCPall", "--scale", "1.0", "--seed", "3"])
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out
        assert "DTCPall-" in out
        assert "MB" in out

    def test_clear(self, monkeypatch, tmp_path, capsys):
        from repro.trace.cache import default_trace_cache

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        main(["survey", "DTCPall", "--scale", "1.0", "--seed", "3"])
        capsys.readouterr()
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert default_trace_cache().entries() == []

    def test_disabled(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert main(["cache"]) == 0
        assert "disabled" in capsys.readouterr().out


class TestStreamCommand:
    ARGS = ["DTCP1-18d", "--scale", "0.03", "--seed", "4"]

    def test_stream_report_matches_survey(self, capsys):
        assert main(["survey", *self.ARGS]) == 0
        survey_out = capsys.readouterr().out
        assert main(["stream", *self.ARGS, "--shards", "2"]) == 0
        stream_out = capsys.readouterr().out
        assert stream_out == survey_out

    def test_stream_emits_watermarks_and_writes_out(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main([
            "stream", *self.ARGS, "--shards", "2",
            "--emit-every", "96", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert printed.count("watermark t=") >= 2
        assert "Passive AND Active" in printed
        report = out.read_text(encoding="utf-8")
        assert report.rstrip("\n") in printed

    def test_stream_telemetry_export(self, tmp_path, capsys):
        from repro.telemetry import NullRegistry, set_registry

        tel = tmp_path / "tel"
        try:
            assert main([
                "stream", *self.ARGS, "--shards", "2",
                "--outage-fraction", "0.02", "--fault-seed", "5",
                "--telemetry", str(tel),
            ]) == 0
        finally:
            set_registry(NullRegistry())  # --telemetry enables globally
        capsys.readouterr()
        assert (tel / "manifest.json").exists()
        assert main([
            "stats", str(tel),
            "--require", "repro_stream_records_total",
            "repro_stream_watermarks_total",
        ]) == 0
        stats_out = capsys.readouterr().out
        assert "repro_stream_records_total" in stats_out


class TestStatsLinks:
    @staticmethod
    def fake_export(directory, link_counts, drop_counts=None):
        from repro.telemetry import MetricRegistry, write_exports

        reg = MetricRegistry()
        for link, count in link_counts.items():
            reg.counter(
                "repro_passive_link_records_total",
                "Records by monitored link.", link=link,
            ).inc(count)
        reg.counter(
            "repro_passive_protocol_records_total",
            "Records by protocol.", proto="tcp",
        ).inc(sum(link_counts.values()))
        for cause, count in (drop_counts or {}).items():
            reg.counter(
                "repro_passive_dropped_total",
                "Records dropped by the capture fault filter.", cause=cause,
            ).inc(count)
        write_exports(directory, reg)

    def test_aggregates_across_runs(self, tmp_path, capsys):
        self.fake_export(tmp_path / "run1", {"commercial1": 600, "internet2": 100})
        self.fake_export(tmp_path / "run2", {"commercial1": 200, "commercial2": 100},
                         drop_counts={"loss": 50})
        assert main(["stats", str(tmp_path), "--links"]) == 0
        out = capsys.readouterr().out
        assert "Link mix: 2 run(s), 1,000 records" in out
        assert "commercial1" in out and "(80%)" in out
        assert "Protocol mix" in out
        assert "Capture drops" in out and "loss" in out

    def test_single_export_directory(self, tmp_path, capsys):
        self.fake_export(tmp_path, {"commercial1": 10})
        assert main(["stats", str(tmp_path), "--links"]) == 0
        assert "Link mix: 1 run(s)" in capsys.readouterr().out

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope"), "--links"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_no_link_metrics_fails(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["stats", str(tmp_path), "--links"]) == 1
        assert "no per-link telemetry" in capsys.readouterr().err


class TestStatsRequire:
    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "tel"
        empty.mkdir()
        assert main(["stats", str(empty), "--require"]) == 1
        err = capsys.readouterr().err
        assert "exists but contains no exports" in err

    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope"), "--require"]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCheckpointPruneValidation:
    def test_keep_zero_is_rejected_clearly(self, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        assert main([
            "checkpoint", "prune", str(store), "--keep", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert "--keep must be >= 1" in err
        assert "Traceback" not in err

    def test_negative_keep_is_rejected(self, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        assert main([
            "checkpoint", "prune", str(store), "--keep", "-3",
        ]) == 2
        assert "--keep must be >= 1" in capsys.readouterr().err


class TestStatsPerProcess:
    def test_export_without_spans_prints_empty_table(self, tmp_path, capsys):
        from repro.telemetry import MetricRegistry, write_exports

        reg = MetricRegistry()
        reg.counter("repro_stream_records_total", "Records.").inc(3)
        write_exports(tmp_path, reg)
        assert main(["stats", str(tmp_path), "--per-process"]) == 0
        out = capsys.readouterr().out
        assert "Spans by process" in out  # empty table, not silence


class TestOnlineProbingCLI:
    def test_stream_with_probe_policy(self, capsys):
        assert main([
            "stream", "DTCP1-18d", "--scale", "0.02", "--seed", "4",
            "--shards", "2", "--probe-policy", "periodic",
            "--probe-rate", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Passive AND Active" in out

    def test_allports_dataset_requires_probe_ports(self):
        with pytest.raises(ValueError, match="probe-ports"):
            main([
                "stream", "DTCPall", "--scale", "1.0", "--seed", "3",
                "--probe-policy", "heartbeat",
            ])

    def test_online_probing_experiment_runs(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "online_probing", "--scale", "0.02", "--days", "1",
            "--rates", "0.2", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "Online probing: DTCP1-18d" in printed
        assert "heartbeat" in printed and "periodic" in printed
        assert out.read_text(encoding="utf-8").rstrip("\n") in printed

    def test_online_probing_rejects_bad_rates(self):
        from repro.experiments.online_probing import run_online_probing

        with pytest.raises(ValueError, match="positive"):
            run_online_probing(rates=(0.0,))
        with pytest.raises(ValueError, match="at least one"):
            run_online_probing(rates=())
